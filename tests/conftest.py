"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.bdd.manager import Manager
from repro.bdd.truthtable import bdd_from_leaves


@pytest.fixture
def manager() -> Manager:
    """A fresh manager with eight anonymous variables."""
    return Manager(["x%d" % index for index in range(1, 9)])


def leaves_strategy(num_vars: int):
    """Truth tables over ``num_vars`` variables as boolean lists."""
    return st.lists(
        st.booleans(), min_size=1 << num_vars, max_size=1 << num_vars
    )


def instance_strategy(num_vars: int, nonzero_care: bool = False):
    """Random ``[f, c]`` instances as pairs of leaf lists."""
    care = leaves_strategy(num_vars)
    if nonzero_care:
        care = care.filter(lambda leaves: any(leaves))
    return st.tuples(leaves_strategy(num_vars), care)


def build_instance(manager: Manager, f_leaves, c_leaves):
    """Materialize leaf lists into ``(f, c)`` refs."""
    return (
        bdd_from_leaves(manager, f_leaves),
        bdd_from_leaves(manager, c_leaves),
    )
