"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

import repro.bdd.manager as manager_module
from repro.bdd.truthtable import bdd_from_leaves


def pytest_addoption(parser):
    parser.addoption(
        "--repro-check",
        action="store_true",
        default=False,
        help=(
            "swap repro.analysis.CheckedManager in for Manager so every "
            "BDD operation re-validates structural invariants"
        ),
    )


def pytest_configure(config):
    if config.getoption("--repro-check"):
        from repro.analysis.checked import install_checked_manager

        install_checked_manager()
    # REPRO_SANITIZE=1 runs the whole suite under the RefSanitizer
    # (cross-manager/stale-generation detection).  Installed after
    # --repro-check on purpose: when both are requested the sanitizer
    # wins the Manager binding (each mode has its own CI lane).
    from repro.analysis.sanitize import sanitizing_enabled

    if sanitizing_enabled():
        from repro.analysis.sanitize import install_sanitized_manager

        install_sanitized_manager()


@pytest.fixture
def manager() -> "manager_module.Manager":
    """A fresh manager with eight anonymous variables.

    Constructed through the module attribute so that ``--repro-check``
    (which rebinds it to ``CheckedManager``) is honored.
    """
    return manager_module.Manager(["x%d" % index for index in range(1, 9)])


def leaves_strategy(num_vars: int):
    """Truth tables over ``num_vars`` variables as boolean lists."""
    return st.lists(
        st.booleans(), min_size=1 << num_vars, max_size=1 << num_vars
    )


def instance_strategy(num_vars: int, nonzero_care: bool = False):
    """Random ``[f, c]`` instances as pairs of leaf lists."""
    care = leaves_strategy(num_vars)
    if nonzero_care:
        care = care.filter(lambda leaves: any(leaves))
    return st.tuples(leaves_strategy(num_vars), care)


def build_instance(manager, f_leaves, c_leaves):
    """Materialize leaf lists into ``(f, c)`` refs."""
    return (
        bdd_from_leaves(manager, f_leaves),
        bdd_from_leaves(manager, c_leaves),
    )
