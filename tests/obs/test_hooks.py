"""Tests for composing step-hook dispatch."""

import pytest

from repro.bdd.manager import EVENT_ITE, Manager
from repro.obs.hooks import (
    StepHookDispatcher,
    attach_hook,
    attached_hooks,
    detach_hook,
)


class Recorder:
    def __init__(self, log, tag):
        self.log = log
        self.tag = tag

    def __call__(self, event):
        self.log.append((self.tag, event))


class TestDispatcher:
    def test_calls_in_attach_order(self):
        log = []
        dispatcher = StepHookDispatcher(
            [Recorder(log, "a"), Recorder(log, "b")]
        )
        dispatcher("node")
        assert log == [("a", "node"), ("b", "node")]

    def test_duplicate_add_raises(self):
        hook = Recorder([], "a")
        dispatcher = StepHookDispatcher([hook])
        with pytest.raises(ValueError):
            dispatcher.add(hook)


class TestAttachDetach:
    def test_single_hook_installed_raw(self):
        """One hook stays directly in the slot: no dispatch overhead."""
        manager = Manager()
        hook = Recorder([], "a")
        attach_hook(manager, hook)
        assert manager.step_hook is hook
        detach_hook(manager, hook)
        assert manager.step_hook is None

    def test_second_hook_upgrades_to_dispatcher(self):
        manager = Manager()
        first = Recorder([], "a")
        second = Recorder([], "b")
        attach_hook(manager, first)
        attach_hook(manager, second)
        assert isinstance(manager.step_hook, StepHookDispatcher)
        assert attached_hooks(manager) == [first, second]
        detach_hook(manager, second)
        # Collapses back to the raw hook.
        assert manager.step_hook is first

    def test_same_hook_twice_raises(self):
        manager = Manager()
        hook = Recorder([], "a")
        attach_hook(manager, hook)
        with pytest.raises(ValueError):
            attach_hook(manager, hook)

    def test_three_hooks_ordered_delivery(self):
        """Tracer + governor + auditor style stacking, in order."""
        manager = Manager()
        log = []
        hooks = [Recorder(log, tag) for tag in ("tracer", "gov", "audit")]
        for hook in hooks:
            attach_hook(manager, hook)
        x = manager.new_var("x")
        y = manager.new_var("y")
        log.clear()
        manager.and_(x, y)
        ite_events = [entry for entry in log if entry[1] == EVENT_ITE]
        assert ite_events
        # Every ITE step reaches all three hooks, in attach order.
        tags = [entry[0] for entry in log[:3]]
        assert tags == ["tracer", "gov", "audit"]
        for hook in hooks:
            detach_hook(manager, hook)
        assert manager.step_hook is None


class TestRealComposition:
    def test_governor_composes_with_checked_manager(self):
        """The robust governor and the CheckedManager audit coexist."""
        from repro.analysis.checked import CheckedManager
        from repro.robust.governor import Budget, governed

        manager = CheckedManager(check=True)
        x = manager.new_var("x")
        y = manager.new_var("y")
        audited_before = manager.node_audit.nodes_audited
        with governed(manager, Budget(max_steps=10_000)) as governor:
            manager.and_(x, manager.or_(y, x ^ 1))
        assert governor.ite_steps > 0
        assert manager.node_audit.nodes_audited >= audited_before
        # The audit hook is still installed after the governed block.
        assert manager.node_audit in attached_hooks(manager)

    def test_governor_composes_with_tracer_hook(self):
        from repro.robust.governor import Budget, governed

        manager = Manager()
        events = []
        attach_hook(manager, lambda event: events.append(event))
        with governed(manager, Budget(max_steps=10_000)) as governor:
            x = manager.new_var("x")
            y = manager.new_var("y")
            manager.and_(x, y)
        assert governor.ite_steps > 0
        assert EVENT_ITE in events
