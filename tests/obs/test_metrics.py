"""Tests for the metrics registry and the Manager integration."""

import pytest

from repro.bdd.manager import Manager
from repro.obs import metrics
from repro.obs.metrics import (
    MetricsRegistry,
    diff_statistics,
    merge_counts,
)


class TestRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0

    def test_gauges(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 3.0)
        registry.set_gauge("g", 1.0)
        assert registry.gauge("g") == 1.0
        registry.max_gauge("w", 2.0)
        registry.max_gauge("w", 1.0)
        assert registry.gauge("w") == 2.0
        assert registry.gauge("missing") is None

    def test_histograms(self):
        registry = MetricsRegistry()
        for value in (3, 1, 2):
            registry.observe("h", value)
        summary = registry.histogram("h")
        assert summary == {"count": 3, "total": 6, "min": 1, "max": 3}
        assert registry.histogram("missing") is None

    def test_snapshot_roundtrip(self):
        import json

        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 7)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        other = MetricsRegistry()
        other.inc("c", 1)
        other.merge_snapshot(snapshot)
        assert other.counter("c") == 3
        assert other.gauge("g") == 1.5
        assert other.histogram("h")["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.reset()
        assert registry.counter("c") == 0


class TestActivation:
    def test_disabled_by_default(self):
        assert metrics.active() is None
        assert not metrics.enabled()

    def test_collecting_scopes_and_restores(self):
        with metrics.collecting() as registry:
            assert metrics.active() is registry
            with metrics.collecting() as inner:
                assert metrics.active() is inner
            assert metrics.active() is registry
        assert metrics.active() is None

    def test_enable_disable(self):
        registry = metrics.enable()
        try:
            assert metrics.active() is registry
            assert metrics.enabled()
        finally:
            assert metrics.disable() is registry
        assert metrics.active() is None


class TestDiffStatistics:
    def test_cumulative_keys_differenced(self):
        before = {"ite_calls": 10, "ite_cache_hits": 4, "num_nodes": 7}
        after = {"ite_calls": 25, "ite_cache_hits": 9, "num_nodes": 11}
        delta = diff_statistics(before, after)
        assert delta["ite_calls"] == 15
        assert delta["ite_cache_hits"] == 5
        # Point-in-time values report the after state, not a delta.
        assert delta["num_nodes"] == 11

    def test_suffix_keys_differenced(self):
        before = {"cache_constrain_hits": 3, "cache_constrain_misses": 1}
        after = {"cache_constrain_hits": 8, "cache_constrain_misses": 2}
        delta = diff_statistics(before, after)
        assert delta["cache_constrain_hits"] == 5
        assert delta["cache_constrain_misses"] == 1

    def test_backwards_counter_clamps_to_after(self):
        # A cache flush between the snapshots resets per-cache counters;
        # the delta then is just "what happened since the reset".
        before = {"cache_constrain_hits": 50}
        after = {"cache_constrain_hits": 7}
        assert diff_statistics(before, after)["cache_constrain_hits"] == 7

    def test_new_keys_kept(self):
        delta = diff_statistics({}, {"ite_calls": 3, "num_vars": 2})
        assert delta == {"ite_calls": 3, "num_vars": 2}


class TestMergeCounts:
    def test_cumulative_sum_pointwise_max(self):
        total = {}
        merge_counts(total, {"ite_calls": 5, "peak_nodes": 10})
        merge_counts(total, {"ite_calls": 7, "peak_nodes": 4})
        assert total["ite_calls"] == 12
        assert total["peak_nodes"] == 10


class TestManagerCounters:
    def test_statistics_has_cumulative_keys(self):
        manager = Manager()
        x = manager.new_var("x")
        y = manager.new_var("y")
        manager.and_(x, y)
        stats = manager.statistics()
        assert stats["ite_calls"] > 0
        assert stats["nodes_created"] > 0
        assert stats["peak_nodes"] >= stats["num_nodes"]
        assert stats["ite_cache_hits"] + stats["ite_cache_misses"] > 0

    def test_original_keys_still_present(self):
        manager = Manager()
        stats = manager.statistics()
        for key in ("num_nodes", "num_vars", "ite_cache", "unique_table"):
            assert key in stats

    def test_cumulative_keys_survive_cache_flush(self):
        manager = Manager()
        x = manager.new_var("x")
        y = manager.new_var("y")
        manager.and_(x, y)
        before = manager.statistics()
        manager.clear_caches()
        after = manager.statistics()
        assert after["ite_calls"] == before["ite_calls"]
        assert after["nodes_created"] == before["nodes_created"]

    def test_attach_detach_publishes_deltas(self):
        manager = Manager()
        x = manager.new_var("x")
        y = manager.new_var("y")
        registry = MetricsRegistry()
        manager.attach_metrics(registry)
        manager.or_(x, y)
        manager.detach_metrics()
        assert registry.counter("manager.ite_calls") > 0
        assert registry.gauge("manager.peak_nodes") >= 1

    def test_attach_twice_raises(self):
        manager = Manager()
        manager.attach_metrics(MetricsRegistry())
        with pytest.raises(ValueError):
            manager.attach_metrics(MetricsRegistry())
        manager.detach_metrics()

    def test_named_caches_count_while_attached(self):
        manager = Manager()
        x = manager.new_var("x")
        y = manager.new_var("y")
        f = manager.and_(x, y)
        manager.attach_metrics(MetricsRegistry())
        manager.cofactor(f, 0, True)
        manager.cofactor(f, 0, True)
        stats = manager.statistics()
        cache_keys = [
            key for key in stats
            if key.startswith("cache_") and key.endswith("_hits")
        ]
        assert cache_keys
        manager.detach_metrics()
        # Detached: the counting wrappers are gone again.
        stats = manager.statistics()
        assert not any(
            key.startswith("cache_") and key.endswith("_hits")
            for key in stats
        )

    def test_caches_created_before_attach_count_and_stay_live(self):
        # Regression: a cache handle obtained *before* attach_metrics
        # must be the same live object afterwards — an upgrade that
        # swaps the dict leaves stale handles whose writes are lost.
        manager = Manager()
        x = manager.new_var("x")
        y = manager.new_var("y")
        f = manager.and_(x, y)
        early = manager.cache("early")
        early[("probe",)] = 42
        manager.attach_metrics(MetricsRegistry())
        assert manager.cache("early") is early  # identity survived
        assert early[("probe",)] == 42  # contents survived
        # Writes through the pre-attach handle keep hitting the cache
        # the manager consults.
        early[("added-after",)] = 7
        assert manager.cache("early").get(("added-after",)) == 7
        # And lookups through it are counted.
        early.get(("probe",))
        early.get(("never",))
        stats = manager.statistics()
        assert stats["cache_early_hits"] >= 1
        assert stats["cache_early_misses"] >= 1
        manager.detach_metrics()
        assert manager.cache("early") is early

    def test_gc_counters_are_cumulative(self):
        from repro.obs.metrics import diff_statistics

        manager = Manager()
        x = manager.new_var("x")
        y = manager.new_var("y")
        manager.and_(x, y)
        before = manager.statistics()
        manager.xor(x, y)
        manager.gc((manager.and_(x, y),))
        delta = diff_statistics(before, manager.statistics())
        assert delta["gc_runs"] == 1
        assert delta["nodes_reclaimed"] >= 1
        assert "live_nodes" in manager.statistics()
