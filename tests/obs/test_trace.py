"""Tests for the Chrome trace-event tracer."""

import json

import pytest

from repro.obs import trace
from repro.obs.trace import Tracer, tracing, validate_events


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", detail=3):
            pass
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"]["detail"] == 3
        assert event["args"]["depth"] == 0

    def test_nested_spans_record_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {event["name"]: event for event in tracer.events}
        assert by_name["outer"]["args"]["depth"] == 0
        assert by_name["inner"]["args"]["depth"] == 1
        validate_events(tracer.events)

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("marker", note="x")
        assert tracer.events[0]["ph"] == "i"

    def test_write_is_valid_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.json"
        count = tracer.write(str(path))
        assert count == 2
        events = json.loads(path.read_text())
        assert len(events) == 2
        validate_events(events)


class TestModuleLevel:
    def test_span_is_null_when_inactive(self):
        assert trace.active() is None
        with trace.span("ignored"):
            pass  # no tracer: must be a no-op, not an error

    def test_activate_deactivate(self):
        tracer = trace.activate()
        try:
            assert trace.active() is tracer
            with trace.span("seen"):
                pass
        finally:
            assert trace.deactivate() is tracer
        assert trace.active() is None
        assert tracer.events[0]["name"] == "seen"

    def test_tracing_writes_file(self, tmp_path):
        path = tmp_path / "out.json"
        with tracing(str(path)):
            with trace.span("step"):
                pass
        events = json.loads(path.read_text())
        assert [event["name"] for event in events] == ["step"]

    def test_tracing_writes_on_exception(self, tmp_path):
        path = tmp_path / "out.json"
        with pytest.raises(RuntimeError):
            with tracing(str(path)):
                with trace.span("doomed"):
                    raise RuntimeError("boom")
        events = json.loads(path.read_text())
        assert events and events[0]["name"] == "doomed"


class TestValidation:
    def test_missing_field_rejected(self):
        with pytest.raises(ValueError):
            validate_events([{"name": "x", "ph": "X"}])

    def test_orphan_depth_rejected(self):
        # A depth-1 span with no enclosing depth-0 span is malformed.
        bad = [
            {
                "name": "floating",
                "ph": "X",
                "ts": 100,
                "dur": 5,
                "pid": 1,
                "tid": 1,
                "args": {"depth": 1},
            }
        ]
        with pytest.raises(ValueError):
            validate_events(bad)


class TestCoreSpans:
    def test_minimization_emits_nested_spans(self, tmp_path):
        """A sched run covers schedule, window, sibling and level spans."""
        from repro.bdd.manager import Manager
        from repro.bdd.parser import parse_expression
        from repro.core.registry import minimize

        path = tmp_path / "sched.json"
        with tracing(str(path)):
            manager = Manager()
            f = parse_expression(
                manager, "(a & b) | (c & d) | (e & ~a) | (b & ~d & g)"
            )
            c = parse_expression(manager, "(a | b | c) & (d | e | g)")
            minimize(manager, f, c, method="sched")
        events = json.loads(path.read_text())
        validate_events(events)
        names = {event["name"] for event in events}
        assert "schedule.minimize" in names
        assert "schedule.window" in names
        assert "sibling.pass" in names
        assert "levels.minimize_at_level" in names
        # The heuristic wrapper span appears because tracing is active.
        assert "heuristic.sched" in names
