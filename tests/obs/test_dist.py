"""Tests for cross-process distributed tracing and phase accounting."""

from __future__ import annotations

import asyncio
import json
import multiprocessing

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.dist import (
    SERVE_COUNTER_KEYS,
    TRACE_DETAIL_EVERY,
    WORKER_DEPTH_SHIFT,
    WORKER_PHASES,
    PhaseAccumulator,
    PhaseClock,
    RequestSpanTracker,
    TraceContext,
    TraceMerger,
    build_parent_group,
    collapsed_stacks,
    ensure_serve_counters,
    events_json,
    load_trace,
    phase_breakdown,
    render_phase_table,
    request_trace_id,
    synthesize_worker_spans,
)
from repro.obs.trace import Tracer, validate_events

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pooled tracing tests require the fork start method",
)


class TestTraceContext:
    def test_wire_round_trip(self):
        context = TraceContext(
            "req-000007", 7, "pool.dispatch", sent_at_us=123.456,
            detail=False,
        )
        restored = TraceContext.from_wire(context.to_wire())
        assert restored.trace_id == "req-000007"
        assert restored.seq == 7
        assert restored.parent_span == "pool.dispatch"
        assert restored.sent_at_us == 123.456
        assert restored.detail is False

    def test_detail_defaults_true_for_old_envelopes(self):
        # Envelopes from before the sampling flag existed must decode
        # as fully detailed, not silently sampled out.
        restored = TraceContext.from_wire(
            {"trace_id": "req-000001", "seq": 1, "parent_span": "p"}
        )
        assert restored.detail is True
        assert restored.sent_at_us == 0.0

    def test_trace_id_is_deterministic(self):
        assert request_trace_id(42) == "req-000042"
        assert request_trace_id(42) == request_trace_id(42)


class TestPhaseClock:
    def test_accumulates_durations_without_tracer(self):
        clock = PhaseClock()
        with clock.phase("worker.decode"):
            pass
        with clock.phase("worker.decode"):
            pass
        assert clock.durations["worker.decode"] >= 0
        assert set(clock.durations) == {"worker.decode"}

    def test_records_spans_on_explicit_tracer(self):
        # The clock takes its tracer explicitly: workers record phase
        # spans on the request-private bundle tracer even when the
        # module-global tracer is inactive.
        assert obs_trace.active() is None
        tracer = Tracer()
        clock = PhaseClock(tracer=tracer)
        with clock.phase("worker.compute", seq=3):
            pass
        assert [e["name"] for e in tracer.events] == ["worker.compute"]
        assert tracer.events[0]["args"]["seq"] == 3
        assert clock.durations["worker.compute"] >= 0


class TestPhaseAccumulator:
    def test_nearest_rank_percentiles_are_exact(self):
        acc = PhaseAccumulator()
        for value in range(100, 0, -1):  # 1..100, unsorted on purpose
            acc.observe("phase", float(value))
        summary = acc.summary()["phase"]
        assert summary["count"] == 100
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0
        assert summary["max"] == 100.0

    def test_merge_and_reset(self):
        acc = PhaseAccumulator()
        acc.merge({"a": 1.0, "b": 2.0})
        assert set(acc.summary()) == {"a", "b"}
        acc.reset()
        assert acc.summary() == {}


class TestEnsureServeCounters:
    def test_zero_fills_complete_key_set(self):
        registry = obs_metrics.MetricsRegistry()
        ensure_serve_counters(registry)
        counters = registry.snapshot()["counters"]
        assert set(SERVE_COUNTER_KEYS) <= set(counters)
        assert all(counters[key] == 0 for key in SERVE_COUNTER_KEYS)

    def test_does_not_clobber_recorded_counts(self):
        registry = obs_metrics.MetricsRegistry()
        registry.inc("gateway.hedges", 5)
        ensure_serve_counters(registry)
        assert registry.counter("gateway.hedges") == 5


def _bundle(seq, pid, compute_us):
    """A fake worker span bundle on the worker's private timeline."""
    return [
        {
            "name": "worker.request",
            "ph": "X",
            "ts": 0.0,
            "dur": compute_us + 20.0,
            "pid": pid,
            "tid": obs_trace.TRACE_TID,
            "cat": "repro",
            "args": {"depth": 0, "seq": seq},
        },
        {
            "name": "worker.compute",
            "ph": "X",
            "ts": 10.0,
            "dur": compute_us,
            "pid": pid,
            "tid": obs_trace.TRACE_TID,
            "cat": "repro",
            "args": {"depth": 1, "seq": seq},
        },
    ]


def _parent_group(seq, start_us):
    return [
        {
            "name": "pool.request",
            "ph": "X",
            "ts": start_us,
            "dur": 500.0,
            "pid": 1,
            "tid": obs_trace.TRACE_TID,
            "cat": "repro",
            "args": {"depth": 0, "seq": seq, "trace_id": request_trace_id(seq)},
        }
    ]


class TestTraceMerger:
    def test_out_of_order_completion_is_byte_identical(self):
        """Satellite: completion order must not leak into the merge."""

        def build(arrival_order):
            merger = TraceMerger()
            merger.register_process(1, "pool")
            groups = {}
            for seq in (0, 1, 2):
                context = TraceContext(
                    request_trace_id(seq),
                    seq,
                    "pool.dispatch",
                    sent_at_us=100.0 * seq,
                )
                groups[seq] = (
                    _parent_group(seq, 100.0 * seq),
                    context,
                    _bundle(seq, pid=200 + seq, compute_us=50.0),
                )
            for seq in arrival_order:
                parent, context, bundle = groups[seq]
                merger.add_group(seq, parent, context=context, bundle=bundle)
            return events_json(merger.merged_events())

        assert build([0, 1, 2]) == build([2, 0, 1]) == build([1, 2, 0])

    def test_bundle_rebased_onto_parent_timeline(self):
        merger = TraceMerger()
        context = TraceContext(
            "req-000004", 4, "pool.dispatch", sent_at_us=1000.0
        )
        merger.add_group(
            4,
            _parent_group(4, 1000.0),
            context=context,
            bundle=_bundle(4, pid=777, compute_us=50.0),
        )
        events = merger.merged_events()
        by_name = {e["name"]: e for e in events if e.get("ph") == "X"}
        worker = by_name["worker.request"]
        assert worker["ts"] == 1000.0  # 0.0 + sent_at_us
        assert worker["args"]["depth"] == WORKER_DEPTH_SHIFT
        assert worker["args"]["trace_id"] == "req-000004"
        compute = by_name["worker.compute"]
        assert compute["ts"] == 1010.0
        assert compute["args"]["depth"] == WORKER_DEPTH_SHIFT + 1
        # The worker's pid got its own named Perfetto track.
        tracks = [
            e for e in events
            if e.get("ph") == "M" and e["args"]["name"] == "worker-777"
        ]
        assert len(tracks) == 1

    def test_flush_emits_into_tracer_and_clears(self):
        merger = TraceMerger()
        merger.add_group(0, _parent_group(0, 0.0))
        assert merger.pending() == 1
        tracer = Tracer()
        assert merger.flush(tracer) == 1
        assert merger.pending() == 0
        assert tracer.events[0]["name"] == "pool.request"
        # A second flush has nothing left.
        assert merger.flush(tracer) == 0

    def test_flush_without_tracer_discards(self):
        merger = TraceMerger()
        merger.add_group(0, _parent_group(0, 0.0))
        assert merger.flush(None) == 0
        assert merger.pending() == 0


class TestSynthesizeWorkerSpans:
    PHASES = {
        "worker.request": 0.001,
        "worker.decode": 0.0002,
        "worker.compute": 0.0006,
        "worker.encode": 0.0001,
    }

    def test_shape_and_flags(self):
        context = TraceContext(
            "req-000003", 3, "pool.dispatch", sent_at_us=500.0,
            detail=False,
        )
        events = synthesize_worker_spans(self.PHASES, 555, context)
        assert events[0]["name"] == "worker.request"
        assert events[0]["ts"] == 500.0
        assert events[0]["dur"] == 1000.0
        assert events[0]["args"]["parent"] == "pool.dispatch"
        names = [e["name"] for e in events[1:]]
        assert names == ["worker.decode", "worker.compute", "worker.encode"]
        for event in events:
            assert event["args"]["synthesized"] is True
            assert event["args"]["seq"] == 3
            assert event["pid"] == 555

    def test_children_never_escape_the_request(self):
        # Phase durations that (through rounding) exceed the request
        # wall must be clamped inside it.
        phases = {"worker.request": 0.001}
        phases.update({name: 0.0004 for name in WORKER_PHASES})
        context = TraceContext("req-000000", 0, "pool.dispatch")
        events = synthesize_worker_spans(phases, 1, context)
        total = events[0]["dur"]
        for child in events[1:]:
            assert child["ts"] + child["dur"] <= events[0]["ts"] + total

    def test_nests_under_a_real_parent_group(self):
        tracer = Tracer()
        context = TraceContext(
            "req-000000", 0, "pool.dispatch", sent_at_us=0.0
        )
        parent = build_parent_group(
            tracer, context, "osm_bt", "ok",
            t_entry=0.0, t_checkout=0.1, t_send=0.1, t_done=10.0,
        )
        # Rebase synthesized spans inside the dispatch window.
        context.sent_at_us = parent[0]["ts"] + 200.0
        events = parent + synthesize_worker_spans(
            {"worker.request": 0.0001}, 99, context
        )
        validate_events(events)


class TestRequestSpanTracker:
    def test_shed_closes_root_span_with_reason(self):
        tracer = obs_trace.activate()
        try:
            tracker = RequestSpanTracker()
            handle = tracker.open(seq=0, method="osm_bt")
            assert tracker.open_count == 1
            assert tracker.close(
                handle, status="shed", shed_reason="overload"
            )
        finally:
            obs_trace.deactivate()
        assert tracker.open_count == 0
        assert tracker.closed == 1
        event = tracer.events[0]
        assert event["name"] == "gateway.request"
        assert event["args"]["shed_reason"] == "overload"
        assert event["args"]["status"] == "shed"
        assert event["tid"] == obs_trace.TRACE_TID + 1

    def test_close_is_idempotent(self):
        tracer = obs_trace.activate()
        try:
            tracker = RequestSpanTracker()
            handle = tracker.open(seq=1)
            assert tracker.close(handle, status="ok")
            assert not tracker.close(handle, status="ok")
        finally:
            obs_trace.deactivate()
        assert tracker.closed == 1
        assert len(tracer.events) == 1

    def test_works_without_a_tracer(self):
        assert obs_trace.active() is None
        tracker = RequestSpanTracker()
        handle = tracker.open(seq=2)
        assert tracker.close(handle, status="shed", shed_reason="overload")
        assert tracker.open_count == 0


def _merged_fixture():
    """A two-request merged trace with exact, hand-checkable numbers."""
    events = []
    for seq, base in ((0, 0.0), (1, 2000.0)):
        trace_id = request_trace_id(seq)
        args = {"seq": seq, "trace_id": trace_id}
        events.extend(
            [
                {
                    "name": "pool.request", "ph": "X", "ts": base,
                    "dur": 1000.0, "pid": 1, "tid": 1, "cat": "repro",
                    "args": dict(args, depth=0),
                },
                {
                    "name": "pool.queue", "ph": "X", "ts": base,
                    "dur": 100.0, "pid": 1, "tid": 1, "cat": "repro",
                    "args": dict(args, depth=1),
                },
                {
                    "name": "pool.dispatch", "ph": "X", "ts": base + 100.0,
                    "dur": 880.0, "pid": 1, "tid": 1, "cat": "repro",
                    "args": dict(args, depth=1),
                },
                {
                    "name": "worker.request", "ph": "X", "ts": base + 150.0,
                    "dur": 700.0, "pid": 2, "tid": 1, "cat": "repro",
                    "args": dict(args, depth=2),
                },
                {
                    "name": "worker.compute", "ph": "X", "ts": base + 200.0,
                    "dur": 600.0, "pid": 2, "tid": 1, "cat": "repro",
                    "args": dict(args, depth=3),
                },
            ]
        )
    return events


class TestPhaseBreakdown:
    def test_rows_sum_exactly_to_wall(self):
        breakdown = phase_breakdown(_merged_fixture())
        assert breakdown["requests"] == 2
        assert breakdown["wall_us"] == 2000.0
        for row in breakdown["per_request"]:
            assert sum(row["phases"].values()) == pytest.approx(
                row["wall_us"], rel=1e-9
            )
        phases = breakdown["phases"]
        # Residuals carry the uninstrumented remainder explicitly.
        assert phases["pool.queue"]["us"] == 200.0
        assert phases["ipc"]["us"] == 360.0          # dispatch - worker wall
        assert phases["worker.compute"]["us"] == 1200.0
        assert phases["worker.other"]["us"] == 200.0  # worker - compute
        assert phases["pool.other"]["us"] == 40.0     # wall - queue - dispatch
        assert sum(e["share"] for e in phases.values()) == pytest.approx(1.0)

    def test_render_table_and_collapsed_stacks(self):
        events = _merged_fixture()
        table = render_phase_table(phase_breakdown(events))
        assert "worker.compute" in table
        assert table.strip().endswith("100.0%")
        stacks = collapsed_stacks(events)
        by_stack = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in stacks
        )
        key = "pool.request;pool.dispatch;worker.request;worker.compute"
        assert by_stack[key] == 1200

    def test_load_trace_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "an array"}')
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestPerfReportCLI:
    def test_report_renders_and_writes_collapsed(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "merged.json"
        trace_path.write_text(json.dumps(_merged_fixture()))
        collapsed = tmp_path / "stacks.txt"
        assert main(
            ["perf-report", str(trace_path), "--collapsed", str(collapsed)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 request(s)" in out
        assert collapsed.read_text().strip()

    def test_unreadable_trace_exits_2(self, tmp_path):
        from repro.cli import main

        assert main(["perf-report", str(tmp_path / "missing.json")]) == 2

    def test_trace_without_pool_spans_exits_1(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "empty.json"
        path.write_text("[]")
        assert main(["perf-report", str(path)]) == 1


def _instance():
    from repro.bdd.manager import Manager

    manager = Manager(["a", "b", "c", "d"])
    a, b, c, d = (manager.var(level) for level in range(4))
    f = manager.or_(manager.and_(a, b), manager.and_(c, d))
    care = manager.or_(a, b)
    return manager, f, care


@needs_fork
class TestPooledEndToEnd:
    def test_merged_trace_spans_the_process_boundary(self, tmp_path):
        from repro.obs.dist import GLOBAL_PHASES
        from repro.serve.pool import MinimizationPool

        GLOBAL_PHASES.reset()
        path = tmp_path / "merged.json"
        manager, f, c = _instance()
        # Enough requests to exercise both the always-detailed seq 0
        # and the synthesized (sampled-out) majority.
        batch = [("osm_bt", f, c)] * (TRACE_DETAIL_EVERY + 3)
        with obs_trace.tracing(str(path)):
            with MinimizationPool(workers=2) as pool:
                # batch=False: one dispatch (and one trace seq) per
                # cell — the per-request trace shape this test pins.
                replies = pool.run_batch(manager, batch, batch=False)
        assert all(reply.ok for reply in replies)

        events = load_trace(str(path))
        validate_events(events)

        # One Perfetto track per process: the pool and both workers.
        tracks = {
            e["pid"] for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert len(tracks) >= 3

        spans = [e for e in events if e.get("ph") == "X"]
        by_seq = {}
        for event in spans:
            seq = event["args"].get("seq")
            if seq is not None:
                by_seq.setdefault(seq, {})[event["name"]] = event
        assert len(by_seq) == len(batch)

        pool_pids = {e["pid"] for e in spans if e["name"] == "pool.request"}
        for seq, named in by_seq.items():
            request = named["pool.request"]
            worker = named["worker.request"]
            # Cross-process parenting: the worker span lives on another
            # process's track but sits inside this request's window.
            assert worker["pid"] not in pool_pids
            assert worker["args"]["parent"] == "pool.dispatch"
            assert worker["ts"] >= request["ts"] - 0.01
            assert (
                worker["ts"] + worker["dur"]
                <= request["ts"] + request["dur"] + 0.01
            )

        # Detail sampling: seq 0 ships the real bundle, the rest are
        # synthesized from phase durations.
        assert "synthesized" not in by_seq[0]["worker.request"]["args"]
        assert by_seq[1]["worker.request"]["args"]["synthesized"] is True

        # Acceptance: per-request phase rows sum to the request wall.
        breakdown = phase_breakdown(events)
        assert breakdown["requests"] == len(batch)
        for row in breakdown["per_request"]:
            assert sum(row["phases"].values()) == pytest.approx(
                row["wall_us"], rel=0.05
            )

        # The always-on accumulator saw every request's phases.
        summary = GLOBAL_PHASES.summary()
        assert summary["worker.compute"]["count"] == len(batch)
        assert summary["pool.dispatch"]["count"] == len(batch)

    def test_batched_trace_groups_cells_per_batch(self, tmp_path):
        from repro.obs.dist import GLOBAL_PHASES
        from repro.serve.pool import MinimizationPool

        GLOBAL_PHASES.reset()
        path = tmp_path / "batched.json"
        manager, f, c = _instance()
        cells = [("osm_bt", f, c)] * 12
        with obs_trace.tracing(str(path)):
            with MinimizationPool(workers=2) as pool:
                replies = pool.run_batch(manager, cells)
        assert all(reply.ok for reply in replies)

        events = load_trace(str(path))
        validate_events(events)
        spans = [e for e in events if e.get("ph") == "X"]
        by_seq = {}
        for event in spans:
            seq = event["args"].get("seq")
            if seq is not None:
                by_seq.setdefault(seq, {}).setdefault(
                    event["name"], []
                ).append(event)
        # 12 cells across 2 workers -> 2 batch dispatches, not 12.
        assert len(by_seq) == 2
        for named in by_seq.values():
            request = named["pool.request"][0]
            assert request["args"]["method"] == "batch[6]"
            worker = named["worker.request"][0]
            assert worker["args"]["parent"] == "pool.dispatch"
            assert worker["ts"] >= request["ts"] - 0.01
            assert (
                worker["ts"] + worker["dur"]
                <= request["ts"] + request["dur"] + 0.01
            )
        # The detail-sampled batch (seq 0) records one compute span
        # per cell inside its single worker.request span.
        assert len(by_seq[0]["worker.compute"]) == 6
        # The ledger accumulates one entry per *batch*; the old
        # ``pool.ipc`` residual is gone — ``pool.dispatch`` itself now
        # carries the pool-side overhead (round trip minus the
        # worker-reported wall), making the ledger non-overlapping.
        summary = GLOBAL_PHASES.summary()
        assert summary["worker.compute"]["count"] == 2
        assert summary["pool.dispatch"]["count"] == 2
        assert "pool.ipc" not in summary
        request_wall = summary["worker.request"]["total"]
        non_overlapping = (
            summary["pool.queue"]["total"]
            + summary["pool.dispatch"]["total"]
            + request_wall
        )
        assert summary["pool.dispatch"]["total"] >= 0.0
        assert non_overlapping > request_wall


@needs_fork
class TestGatewayShedSpans:
    def test_overload_shed_closes_root_span(self):
        from repro.bdd.wire import serialize_instance
        from repro.serve.gateway import MinimizationGateway, OverloadedError
        from repro.serve.pool import MinimizationPool

        manager, f, c = _instance()
        payload = serialize_instance(manager, f, c)

        async def drill():
            with MinimizationPool(workers=1) as pool:
                gateway = MinimizationGateway(pool, queue_limit=2)
                await gateway.start()
                gateway.pause_dispatch()
                pending = [
                    asyncio.ensure_future(gateway.submit(payload, "f_orig"))
                    for _ in range(2)
                ]
                await asyncio.sleep(0)
                with pytest.raises(OverloadedError):
                    await gateway.submit(payload, "f_orig")
                gateway.resume_dispatch()
                await asyncio.gather(*pending)
                await gateway.close()
                return gateway

        tracer = obs_trace.activate()
        try:
            gateway = asyncio.run(drill())
        finally:
            obs_trace.deactivate()

        # Every admitted request's root span was closed exactly once.
        assert gateway.spans.open_count == 0
        roots = [
            e for e in tracer.events if e["name"] == "gateway.request"
        ]
        assert len(roots) == gateway.spans.closed
        shed = [
            e for e in roots if e["args"].get("shed_reason") == "overload"
        ]
        assert len(shed) == 1
        assert shed[0]["args"]["status"] == "shed"

    def test_expired_shed_closes_root_span(self):
        from repro.bdd.wire import serialize_instance
        from repro.serve.gateway import DeadlineExpired, MinimizationGateway
        from repro.serve.pool import MinimizationPool

        manager, f, c = _instance()
        payload = serialize_instance(manager, f, c)

        class FakeClock:
            now = 100.0

            def __call__(self):
                return self.now

        clock = FakeClock()

        async def drill():
            with MinimizationPool(workers=1) as pool:
                gateway = MinimizationGateway(pool, clock=clock)
                await gateway.start()
                gateway.pause_dispatch()
                future = asyncio.ensure_future(
                    gateway.submit(payload, "osm_bt", deadline=1.0)
                )
                await asyncio.sleep(0)
                clock.now += 1.5
                gateway.resume_dispatch()
                with pytest.raises(DeadlineExpired):
                    await future
                await gateway.close()
                return gateway

        tracer = obs_trace.activate()
        try:
            gateway = asyncio.run(drill())
        finally:
            obs_trace.deactivate()

        assert gateway.spans.open_count == 0
        shed = [
            e for e in tracer.events
            if e["name"] == "gateway.request"
            and e["args"].get("shed_reason") == "deadline_expired"
        ]
        assert len(shed) == 1


@needs_fork
class TestMetricsParallelKeySet:
    def test_merged_view_exports_complete_serve_key_set(self, capsys):
        """Satellite: every gateway.*/verify.* counter is surfaced."""
        from repro.cli import main

        assert main(
            ["metrics", "tlc", "--max-iterations", "1", "--parallel", "1"]
        ) == 0
        out = capsys.readouterr().out
        for key in SERVE_COUNTER_KEYS:
            assert key in out, "missing counter %s in metrics output" % key
        # Phase percentiles from the pooled lane ride along.
        assert "phase percentiles" in out
        assert "worker.compute" in out
