"""Tests for the benchmark history ledger (record/compare/gate)."""

from __future__ import annotations

import json

import pytest

from repro.obs import hist
from repro.obs.hist import (
    HIGHER,
    LOWER,
    LedgerError,
    bench_name,
    compare,
    discover_records,
    extract,
    latest_baselines,
    load_ledger,
    record,
)


def _sweep_record(speedup=1.2, pooled=2.0, serial=2.4, compute_p99=0.01):
    return {
        "speedup": speedup,
        "pooled_seconds": pooled,
        "serial_seconds": serial,
        "serve_stats": {
            "phases": {
                "worker.compute": {"count": 10, "p99": compute_p99}
            }
        },
    }


def _write(directory, name, payload):
    path = directory / ("BENCH_%s.json" % name)
    path.write_text(json.dumps(payload))
    return path


class TestDiscovery:
    def test_bench_name_parsing(self):
        assert bench_name("BENCH_parallel_sweep.json") == "parallel_sweep"
        assert bench_name("BENCH_history.jsonl") is None
        assert bench_name("notes.json") is None

    def test_discover_is_sorted(self, tmp_path):
        _write(tmp_path, "zeta", {"x": 1})
        _write(tmp_path, "alpha", {"x": 2})
        names = [name for name, _ in discover_records(str(tmp_path))]
        assert names == ["alpha", "zeta"]


class TestExtractors:
    def test_parallel_sweep_directions(self, tmp_path):
        path = _write(tmp_path, "parallel_sweep", _sweep_record())
        metrics = extract("parallel_sweep", str(path))
        assert metrics["speedup"] == (1.2, HIGHER)
        assert metrics["pooled_seconds"] == (2.0, LOWER)
        assert metrics["compute_p99_seconds"] == (0.01, LOWER)

    def test_unknown_record_falls_back_to_generic_ungated(self, tmp_path):
        path = _write(
            tmp_path, "custom", {"rate": 3.5, "label": "x", "flag": True}
        )
        metrics = extract("custom", str(path))
        # Numerics only, bools excluded, no direction => never gated.
        assert metrics == {"rate": (3.5, None)}

    def test_malformed_record_raises_ledger_error(self, tmp_path):
        path = _write(tmp_path, "parallel_sweep", {"speedup": 1.0})
        with pytest.raises(LedgerError):
            extract("parallel_sweep", str(path))
        bad = tmp_path / "BENCH_broken.json"
        bad.write_text("{not json")
        with pytest.raises(LedgerError):
            extract("broken", str(bad))


class TestRecordAndLoad:
    def test_round_trip(self, tmp_path):
        _write(tmp_path, "parallel_sweep", _sweep_record())
        entries = record(str(tmp_path), recorded_at="2026-08-08T00:00:00Z")
        assert len(entries) == 1
        loaded = load_ledger(str(tmp_path / hist.LEDGER_NAME))
        assert loaded == entries
        entry = loaded[0]
        assert entry["schema"] == hist.SCHEMA_VERSION
        assert entry["bench"] == "parallel_sweep"
        assert entry["recorded_at"] == "2026-08-08T00:00:00Z"
        assert entry["metrics"]["speedup"] == {
            "value": 1.2,
            "direction": HIGHER,
        }

    def test_latest_entry_wins_as_baseline(self, tmp_path):
        _write(tmp_path, "parallel_sweep", _sweep_record(speedup=1.0))
        record(str(tmp_path), recorded_at="t1")
        _write(tmp_path, "parallel_sweep", _sweep_record(speedup=2.0))
        record(str(tmp_path), recorded_at="t2")
        entries = load_ledger(str(tmp_path / hist.LEDGER_NAME))
        assert len(entries) == 2
        baseline = latest_baselines(entries)["parallel_sweep"]
        assert baseline["metrics"]["speedup"]["value"] == 2.0

    def test_missing_ledger_loads_empty(self, tmp_path):
        assert load_ledger(str(tmp_path / "absent.jsonl")) == []

    def test_malformed_ledger_lines_raise(self, tmp_path):
        ledger = tmp_path / hist.LEDGER_NAME
        ledger.write_text("{not json\n")
        with pytest.raises(LedgerError):
            load_ledger(str(ledger))
        ledger.write_text('{"no_bench_key": 1}\n')
        with pytest.raises(LedgerError):
            load_ledger(str(ledger))
        ledger.write_text(
            json.dumps({"bench": "x", "schema": 999, "metrics": {}}) + "\n"
        )
        with pytest.raises(LedgerError):
            load_ledger(str(ledger))


class TestCompare:
    def test_green_within_tolerance(self, tmp_path):
        _write(tmp_path, "parallel_sweep", _sweep_record(speedup=1.0))
        record(str(tmp_path), recorded_at="t1")
        _write(tmp_path, "parallel_sweep", _sweep_record(speedup=0.9))
        outcome = compare(str(tmp_path), tolerance=0.30)
        assert outcome["ok"]
        assert outcome["checked"] >= 4
        assert outcome["regressions"] == []

    def test_direction_aware_regression(self, tmp_path):
        _write(tmp_path, "parallel_sweep", _sweep_record())
        record(str(tmp_path), recorded_at="t1")
        # speedup (higher-is-better) halves: a regression.
        _write(tmp_path, "parallel_sweep", _sweep_record(speedup=0.6))
        outcome = compare(str(tmp_path), tolerance=0.30)
        assert not outcome["ok"]
        assert [r["metric"] for r in outcome["regressions"]] == ["speedup"]
        regression = outcome["regressions"][0]
        assert regression["direction"] == HIGHER
        assert regression["relative_change"] == pytest.approx(-0.5)

    def test_improvement_in_good_direction_never_flags(self, tmp_path):
        _write(tmp_path, "parallel_sweep", _sweep_record(pooled=2.0))
        record(str(tmp_path), recorded_at="t1")
        # pooled_seconds (lower-is-better) drops 10x: an improvement.
        _write(tmp_path, "parallel_sweep", _sweep_record(pooled=0.2))
        assert compare(str(tmp_path), tolerance=0.30)["ok"]

    def test_no_baseline_is_skipped_not_failed(self, tmp_path):
        _write(tmp_path, "parallel_sweep", _sweep_record())
        outcome = compare(str(tmp_path))
        assert outcome["ok"]
        assert outcome["skipped"] == [
            {"bench": "parallel_sweep", "reason": "no baseline"}
        ]

    def test_ungated_metric_never_regresses(self, tmp_path):
        _write(tmp_path, "obs_overhead", {"aggregate_overhead_pct": 0.1})
        record(str(tmp_path), recorded_at="t1")
        _write(tmp_path, "obs_overhead", {"aggregate_overhead_pct": 99.0})
        outcome = compare(str(tmp_path))
        assert outcome["ok"]
        assert outcome["checked"] == 0


class TestBenchCLI:
    def test_record_then_compare_round_trips_green(self, tmp_path, capsys):
        from repro.cli import main

        _write(tmp_path, "parallel_sweep", _sweep_record())
        assert main(["bench", "--record", "--dir", str(tmp_path)]) == 0
        assert main(["bench", "--compare", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_regression_exits_1(self, tmp_path):
        from repro.cli import main

        _write(tmp_path, "parallel_sweep", _sweep_record(speedup=2.0))
        assert main(["bench", "--record", "--dir", str(tmp_path)]) == 0
        _write(tmp_path, "parallel_sweep", _sweep_record(speedup=0.5))
        assert main(["bench", "--compare", "--dir", str(tmp_path)]) == 1

    def test_malformed_ledger_exits_2(self, tmp_path):
        from repro.cli import main

        _write(tmp_path, "parallel_sweep", _sweep_record())
        (tmp_path / hist.LEDGER_NAME).write_text("{broken\n")
        assert main(["bench", "--compare", "--dir", str(tmp_path)]) == 2

    def test_no_action_exits_2(self, tmp_path):
        from repro.cli import main

        assert main(["bench", "--dir", str(tmp_path)]) == 2

    def test_list_prints_entries(self, tmp_path, capsys):
        from repro.cli import main

        _write(tmp_path, "parallel_sweep", _sweep_record())
        assert main(["bench", "--record", "--dir", str(tmp_path)]) == 0
        assert main(["bench", "--list", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "parallel_sweep" in out
        assert "1 ledger entry" in out

    def test_committed_history_compares_green(self):
        """The in-repo ledger must gate the in-repo records green."""
        import os

        repo_root = os.path.join(os.path.dirname(__file__), "..", "..")
        directory = os.path.join(repo_root, "benchmarks")
        ledger = os.path.join(directory, hist.LEDGER_NAME)
        assert os.path.exists(ledger)
        outcome = compare(directory)
        assert outcome["ok"], outcome["regressions"]
        assert outcome["checked"] >= 9
