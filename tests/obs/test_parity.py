"""Observability must never change results: on/off parity checks."""

from repro.bdd.manager import Manager
from repro.bdd.parser import parse_expression
from repro.bdd.wire import serialize
from repro.core.registry import HEURISTICS, get_heuristic
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

EXPRESSIONS = [
    ("(a & b) | (~a & c)", "a | b"),
    ("(a & b) | (c & d) | (e & ~a)", "(a | b | c) & (d | e)"),
    ("a ^ b ^ c", "a | ~b"),
]

METHODS = ("constrain", "restrict", "osm_bt", "tsm_cp", "opt_lv", "sched")


def _run(method: str, observed: bool):
    """Minimize every instance; return the wire bytes of (f, c, g)."""
    blobs = []
    for f_text, c_text in EXPRESSIONS:
        manager = Manager()
        f = parse_expression(manager, f_text)
        c = parse_expression(manager, c_text)
        if observed:
            registry = obs_metrics.enable(obs_metrics.MetricsRegistry())
            tracer = obs_trace.activate()
            manager.attach_metrics(registry)
            try:
                cover = HEURISTICS[method](manager, f, c)
            finally:
                manager.detach_metrics()
                obs_trace.deactivate()
                obs_metrics.disable()
            assert tracer.events or registry.snapshot()
        else:
            cover = HEURISTICS[method](manager, f, c)
        blobs.append(serialize(manager, [f, c, cover]))
    return blobs


class TestParity:
    def test_results_identical_with_observability_on(self):
        for method in METHODS:
            assert _run(method, observed=False) == _run(
                method, observed=True
            ), "observability changed the result of %s" % method

    def test_dispatch_identity_preserved_when_off(self):
        """With obs off, dispatch returns the raw registry callable."""
        assert obs_metrics.active() is None
        assert obs_trace.active() is None
        assert get_heuristic("constrain") is HEURISTICS["constrain"]

    def test_dispatch_wrapped_when_on(self):
        with obs_metrics.collecting():
            wrapped = get_heuristic("constrain")
        assert wrapped is not HEURISTICS["constrain"]
        assert wrapped.__wrapped__ is HEURISTICS["constrain"]
