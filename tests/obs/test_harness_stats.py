"""Per-cell statistics snapshots in the experiment harness."""

from repro.core.registry import PAPER_HEURISTICS
from repro.experiments.calls import collect_suite_calls
from repro.experiments.harness import CallResult, run_heuristics
from repro.experiments.summary import aggregate_stats
from repro.robust.checkpoint import (
    Checkpoint,
    record_to_result,
    result_to_record,
)
from repro.robust.governor import Budget


def _sweep(**kwargs):
    calls = collect_suite_calls(["tlc"])
    return run_heuristics(
        calls,
        heuristics=("constrain", "osm_bt"),
        compute_lower_bound=False,
        **kwargs,
    )


class TestSerialStats:
    def test_every_cell_has_a_snapshot(self):
        results = _sweep()
        assert results.results
        for result in results.results:
            assert set(result.stats) == {"constrain", "osm_bt"}
            for snapshot in result.stats.values():
                assert snapshot["ite_calls"] >= 0
                assert "peak_nodes" in snapshot

    def test_osm_bt_snapshot_counts_ite_work(self):
        results = _sweep()
        total = sum(
            result.stats["osm_bt"]["ite_calls"]
            for result in results.results
        )
        assert total > 0

    def test_failed_cells_still_carry_snapshots(self):
        # A one-step budget trips every non-trivial heuristic; the cell
        # fails but its snapshot must still say what it burned.
        results = _sweep(budget=Budget(max_steps=1))
        failed = [
            result
            for result in results.results
            if "osm_bt" in result.failures
        ]
        assert failed, "expected the 1-step budget to fail some cells"
        for result in failed:
            assert result.sizes["osm_bt"] is None
            assert "osm_bt" in result.stats

    def test_aggregate_stats_sums_cumulative_keys(self):
        results = _sweep()
        totals = aggregate_stats(results)
        per_cell = sum(
            result.stats["osm_bt"]["ite_calls"]
            for result in results.results
        )
        assert totals["osm_bt"]["ite_calls"] == per_cell


class TestPooledStats:
    def test_pooled_cells_ship_worker_snapshots(self):
        results = _sweep(parallel=2)
        measured = [
            result
            for result in results.results
            if result.sizes.get("osm_bt") is not None
        ]
        assert measured
        for result in measured:
            snapshot = result.stats.get("osm_bt")
            assert snapshot is not None
            # Worker managers are warm (persist across cells), so each
            # snapshot is a per-cell delta — still positive for real
            # ITE work.
            assert snapshot["ite_calls"] > 0


class TestCheckpointStats:
    def test_roundtrip_preserves_stats(self, tmp_path):
        result = CallResult(
            benchmark="tlc",
            iteration=0,
            f_size=10,
            onset_fraction=0.5,
            sizes={"constrain": 7},
            runtimes={"constrain": 0.01},
            min_size=7,
            stats={"constrain": {"ite_calls": 42, "peak_nodes": 99}},
        )
        loaded = record_to_result(result_to_record(result))
        assert loaded.stats == result.stats

    def test_legacy_record_without_stats_loads(self):
        record = result_to_record(
            CallResult(
                benchmark="tlc",
                iteration=0,
                f_size=10,
                onset_fraction=0.5,
                sizes={"constrain": 7},
                runtimes={"constrain": 0.01},
                min_size=7,
            )
        )
        del record["stats"]
        loaded = record_to_result(record)
        assert loaded.stats == {}

    def test_resume_replays_stats_from_journal(self, tmp_path):
        journal = Checkpoint(tmp_path / "sweep.jsonl")
        first = _sweep(checkpoint=journal)
        resumed = _sweep(checkpoint=journal, resume=True)
        assert resumed.resumed_calls == len(first.results)
        for fresh, replayed in zip(first.results, resumed.results):
            assert replayed.stats == fresh.stats
