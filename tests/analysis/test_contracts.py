"""Contract auditor: passes honest heuristics, catches mutants."""

import pytest

from repro.analysis.contracts import (
    CONTRACTS,
    Contract,
    audit_instances,
    audit_pair_step,
    audit_result,
    audit_suite,
    audited_heuristic,
    contract_for,
)
from repro.analysis.errors import ContractError
from repro.bdd.manager import ONE, ZERO
from repro.core.registry import HEURISTICS, get_heuristic


def _instances(manager):
    """Small (f, c) instances spanning cube and non-cube care sets."""
    x1, x2, x3, x4 = (manager.var("x%d" % i) for i in range(1, 5))
    return [
        (manager.and_(x1, x2), x3),  # cube care
        (manager.xor(x1, x2), manager.and_(x1, x3)),  # cube care
        (manager.or_(manager.and_(x1, x2), x3), manager.xor(x2, x4)),
        (manager.xor(manager.xor(x1, x2), x3), manager.or_(x1, x4)),
        (x1, ONE),  # full care: g must equal f semantically
        (manager.and_many([x1, x2, x3]), ZERO),  # no care at all
    ]


def test_every_registered_heuristic_has_a_contract():
    assert set(CONTRACTS) == set(HEURISTICS)


def test_contract_for_unknown_name_is_cover_only():
    contract = contract_for("definitely_not_registered")
    assert contract.cover
    assert not (contract.no_new_vars or contract.never_grow or contract.cube_optimal)


def test_all_heuristics_pass_on_instances(manager):
    report = audit_instances(manager, _instances(manager))
    assert report.ok, report.failures
    assert report.instances == 6
    assert report.checks == 6 * len(HEURISTICS)


class TestMutants:
    """Deliberately broken heuristics the auditor must catch."""

    def test_non_cover_is_caught(self, manager):
        def mutant(mgr, f, c):
            return mgr.xor(f, c)  # flips f exactly on the care set

        wrapped = audited_heuristic("mutant_xor", mutant)
        f = manager.var("x1")
        c = manager.var("x2")
        with pytest.raises(ContractError, match="cover"):
            wrapped(manager, f, c)

    def test_new_variable_is_caught(self, manager):
        # ite(x8, f.c, f + !c) is a genuine cover but drags x8 in.
        def mutant(mgr, f, c):
            onset = mgr.and_(f, c)
            upper = mgr.or_(f, mgr.not_(c))
            return mgr.ite(mgr.var("x8"), onset, upper)

        wrapped = audited_heuristic(
            "mutant_nv", mutant, contract=Contract(no_new_vars=True)
        )
        f = manager.var("x1")
        c = manager.var("x2")
        with pytest.raises(ContractError, match="no-new-vars"):
            wrapped(manager, f, c)

    def test_growth_is_caught(self, manager):
        def mutant(mgr, f, c):
            onset = mgr.and_(f, c)
            upper = mgr.or_(f, mgr.not_(c))
            return mgr.ite(mgr.var("x8"), onset, upper)

        wrapped = audited_heuristic(
            "mutant_grow", mutant, contract=Contract(never_grow=True)
        )
        f = manager.var("x1")
        c = manager.var("x2")
        with pytest.raises(ContractError, match="never-grow"):
            wrapped(manager, f, c)

    def test_cube_suboptimality_is_caught(self, manager):
        # Returning f verbatim is a cover, but on cube care sets the
        # Table-2 matchers promise the Theorem-7 minimum.
        def mutant(mgr, f, c):
            return f

        wrapped = audited_heuristic(
            "mutant_lazy", mutant, contract=Contract(cube_optimal=True)
        )
        f = manager.xor(manager.var("x1"), manager.var("x2"))
        c = manager.var("x1")
        with pytest.raises(ContractError, match="cube-optimality"):
            wrapped(manager, f, c)

    def test_below_theorem7_bound_is_caught(self, manager):
        # |g| below |constrain(f, c)| proves g is no cover; check the
        # bound in isolation by switching the cover check off.
        def mutant(mgr, f, c):
            return ONE

        wrapped = audited_heuristic(
            "mutant_one", mutant, contract=Contract(cover=False)
        )
        f = manager.and_(manager.var("x1"), manager.var("x2"))
        c = manager.var("x1")
        with pytest.raises(ContractError, match="theorem-7-lower-bound"):
            wrapped(manager, f, c)

    def test_audit_instances_reports_mutant(self, manager, monkeypatch):
        def mutant(mgr, f, c):
            return mgr.not_(f)

        monkeypatch.setitem(HEURISTICS, "mutant_not", mutant)
        report = audit_instances(
            manager, _instances(manager), names=["mutant_not", "constrain"]
        )
        assert not report.ok
        assert all("mutant_not" in failure for failure in report.failures)


class TestPairStep:
    def test_identity_step_is_safe(self, manager):
        f = manager.xor(manager.var("x1"), manager.var("x2"))
        c = manager.var("x3")
        audit_pair_step(manager, (f, c), (f, c), "identity")

    def test_care_set_shrink_is_unsafe(self, manager):
        # Dropping care minterms lets later passes commit wrong values.
        f = manager.xor(manager.var("x1"), manager.var("x2"))
        c = manager.var("x3")
        with pytest.raises(ContractError, match="i-cover"):
            audit_pair_step(manager, (f, c), (f, ZERO), "drop care")


class TestRegistryIntegration:
    def test_audited_wrapper_dispatched_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        heuristic = get_heuristic("constrain")
        assert heuristic.__name__ == "audited_constrain"
        monkeypatch.delenv("REPRO_CHECK")
        plain = get_heuristic("constrain")
        assert getattr(plain, "__name__", None) != "audited_constrain"
        assert plain is HEURISTICS["constrain"]

    def test_explicit_audited_flag(self, manager):
        heuristic = get_heuristic("osm_bt", audited=True)
        f = manager.xor(manager.var("x1"), manager.var("x2"))
        c = manager.var("x1")
        g = heuristic(manager, f, c)
        audit_result(manager, "osm_bt", f, c, g)


def test_unknown_heuristic_name_fails_fast(manager):
    with pytest.raises(KeyError, match="unknown heuristic"):
        audit_instances(manager, [], names=["bogus"])
    with pytest.raises(KeyError, match="unknown heuristic"):
        audit_suite(benchmarks=["tlc"], names=["bogus"])


def test_audit_suite_smoke():
    report = audit_suite(benchmarks=["tlc"], max_calls_per_benchmark=3)
    assert report.ok, report.failures
    assert report.instances == 3
    assert report.checks == 3 * len(HEURISTICS)
