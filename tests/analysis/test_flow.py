"""Flow rules F1-F4: each fixture fires, each near-miss stays silent."""

from pathlib import Path

import pytest

from repro.analysis.flow import (
    FLOW_RULES,
    analyze_paths,
    analyze_source,
    deterministic,
)
from repro.analysis.lint import default_lint_paths

FLOW_FIXTURES = Path(__file__).parent / "fixtures" / "flow"

#: fixture file -> (expected rule, expected violation count)
BAD_FLOW_FIXTURES = {
    "bad_f1.py": ("F1", 1),
    "bad_f2.py": ("F2", 1),
    "bad_f3.py": ("F3", 1),
    "bad_f4.py": ("F4", 2),
}


@pytest.mark.parametrize("filename", sorted(BAD_FLOW_FIXTURES))
def test_bad_fixture_is_flagged(filename):
    rule, count = BAD_FLOW_FIXTURES[filename]
    source = (FLOW_FIXTURES / filename).read_text()
    violations = analyze_source(source, filename)
    assert violations, "expected %s violations in %s" % (rule, filename)
    assert {violation.rule for violation in violations} == {rule}
    assert len(violations) == count


@pytest.mark.parametrize("filename", ["ok_f1.py", "ok_f2.py", "ok_f3.py", "ok_f4.py"])
def test_near_miss_is_silent(filename):
    source = (FLOW_FIXTURES / filename).read_text()
    assert analyze_source(source, filename) == []


def test_every_flow_rule_has_a_fixture():
    covered = {BAD_FLOW_FIXTURES[name][0] for name in BAD_FLOW_FIXTURES}
    assert covered == set(FLOW_RULES)


def test_deterministic_marker_is_a_noop():
    @deterministic
    def emit(x):
        return x + 1

    assert emit(1) == 2
    assert emit.__repro_deterministic__ is True


def test_f1_deserialize_binds_a_manager():
    source = (
        "def rebuild(blob, g):\n"
        "    manager, roots = deserialize(blob)\n"
        "    f = roots[0]\n"
        "    return manager.size(manager.not_(f))\n"
    )
    assert analyze_source(source) == []


def test_f2_non_compacting_gc_is_exempt():
    source = (
        "def sweep(manager, f, c):\n"
        "    cover = manager.and_(f, c)\n"
        "    manager.gc((cover,))\n"
        "    return manager.size(cover)\n"
    )
    assert analyze_source(source) == []


def test_f2_reassignment_clears_staleness():
    source = (
        "def rebuild(manager, f, c):\n"
        "    cover = manager.and_(f, c)\n"
        "    remap = manager.gc((), compact=True)\n"
        "    cover = manager.and_(f, c)\n"
        "    return manager.size(cover)\n"
    )
    violations = analyze_source(source)
    # f and c are parameters with no tracked origin, so only the
    # local mint is invalidated; rebinding it clears the staleness.
    assert violations == []


def test_f4_wall_clock_flagged():
    source = (
        "import time\n"
        "from repro.analysis.flow import deterministic\n"
        "@deterministic\n"
        "def stamp(record):\n"
        "    return (record, time.time())\n"
    )
    violations = analyze_source(source)
    assert [violation.rule for violation in violations] == ["F4"]
    assert "time.time" in violations[0].message


def test_f4_unmarked_function_not_checked():
    source = (
        "import time\n"
        "def stamp(record):\n"
        "    return (record, time.time())\n"
    )
    assert analyze_source(source) == []


def test_f4_seeded_random_instance_is_exempt():
    source = (
        "import random\n"
        "from repro.analysis.flow import deterministic\n"
        "@deterministic\n"
        "def scenario(seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.random()\n"
    )
    assert analyze_source(source) == []


def test_suppression_comment_applies_to_flow_rules():
    flagged = (
        "def ship(manager, conn, f):\n"
        "    cover = manager.not_(f)\n"
        "    conn.send(cover)\n"
    )
    assert len(analyze_source(flagged)) == 1
    suppressed = (
        "def ship(manager, conn, f):\n"
        "    cover = manager.not_(f)\n"
        "    conn.send(cover)  # repro-lint: skip=F3\n"
    )
    assert analyze_source(suppressed) == []


def test_repro_package_is_flow_clean():
    violations = analyze_paths(default_lint_paths())
    assert violations == [], "\n".join(v.render() for v in violations)
