"""Fixture: idiomatic library code no lint rule may flag."""

ONE = 0
ZERO = 1


def correct_constant_tests(manager, f, c):
    g = manager.and_(f, c)
    if g == ZERO:
        return f
    if g != ONE and manager.size(g) < manager.size(f):
        return g
    return f


def correct_index_truthiness(manager, ref):
    # Truthiness of the *node index* is fine: 0 is the terminal.
    while ref >> 1:
        _, then_ref, else_ref = manager.top_branches(ref)
        ref = else_ref if then_ref == ZERO else then_ref
    return ref == ONE


def cached_traversal(manager, ref):
    cache = {}

    def walk(node):
        if node in (ONE, ZERO):
            return 1
        cached = cache.get(node)
        if cached is not None:
            return cached
        _, then_ref, else_ref = manager.top_branches(node)
        result = walk(then_ref) + walk(else_ref)
        cache[node] = result
        return result

    return walk(ref)


def generator_traversal(manager, ref):
    # Enumerations are legitimately uncached (rule L4 exempts them).
    def walk(node):
        if node == ONE:
            yield ()
            return
        if node == ZERO:
            return
        level, then_ref, else_ref = manager.top_branches(node)
        yield from walk(then_ref)
        yield from walk(else_ref)

    yield from walk(ref)


def immutable_defaults(value, limit=10, label=None, choices=(1, 2)):
    if label is None:
        label = str(value)
    return value, limit, label, choices


def guarded_invariant(high, low):
    if high == low:
        raise ValueError("equal children")
    return high, low


def suppressed_truthiness(manager, f, c):
    g = manager.and_(f, c)
    if g:  # repro-lint: skip=L1
        return g
    return f
