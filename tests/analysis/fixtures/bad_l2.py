"""Fixture: private Manager storage access rule L2 must flag."""


def peek_children(manager, ref):
    index = ref >> 1
    return manager._high[index], manager._low[index]  # BUG x2


def peek_level(manager, ref):
    return manager._level[ref >> 1]  # BUG


def poke_unique(manager):
    manager._unique.clear()  # BUG


def poke_cache(manager):
    return len(manager._ite_cache)  # BUG
