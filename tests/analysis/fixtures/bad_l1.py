"""Fixture: every form of BDD-ref boolean coercion rule L1 must flag."""


def truthy_if(manager, f, c):
    g = manager.and_(f, c)
    if g:  # BUG: g == ONE == 0 is falsy
        return g
    return f


def truthy_not(manager, f, c):
    cover = manager.or_(f, c)
    return not cover  # BUG


def truthy_param(manager, f):
    while f:  # BUG: parameter f is a ref by convention
        f = manager.cofactor(f, 0, True)
    return f


def truthy_call(manager, f, c):
    if manager.and_(f, c):  # BUG: direct call coercion
        return 1
    return 0


def truthy_branches(manager, ref):
    f_then, f_else = manager.branches(ref, 0)
    return f_then and f_else  # BUG: both names came from branches()


def truthy_bool(manager, f, c):
    onset = manager.and_(f, c)
    return bool(onset)  # BUG
