"""Fixture: mutable default arguments rule L5 must flag."""


def remember(value, seen=[]):  # BUG
    seen.append(value)
    return seen


def tabulate(key, table={}, tags=set()):  # BUG x2
    table[key] = tags
    return table


def build(items=list()):  # BUG
    return items
