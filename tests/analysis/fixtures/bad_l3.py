"""Fixture: bare asserts in library code rule L3 must flag."""


def check_node(level, high, low):
    assert high != low, "equal children"  # BUG: stripped under -O
    assert high & 1 == 0  # BUG
    return (level, high, low)
