"""F1 near-miss: two managers, each ref used with its own minter."""

from repro.bdd.manager import Manager


def parallel_sizes(leaves):
    first = Manager(["a", "b"])
    second = Manager(["a", "b"])
    f = first.and_(first.var(0), first.var(1))
    g = second.or_(second.var(0), second.var(1))
    return first.size(f) + second.size(g)
