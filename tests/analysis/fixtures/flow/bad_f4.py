"""Seeded F4 violations: nondeterminism reachable from @deterministic.

The marked emitter itself is clean; the nondeterminism hides two call
hops away, which is exactly what the call-graph reachability pass is
for.
"""

import random

from repro.analysis.flow import deterministic


@deterministic
def emit_records(records):
    for record in ordered(records):
        yield record


def ordered(records):
    unique = set(records)
    # BUG: set iteration order is hash-randomized across runs.
    return [decorate(record) for record in unique]


def decorate(record):
    # BUG: the module-level RNG is shared and unseeded.
    return (record, random.random())
