"""F4 near-miss: seeded RNG and sorted set iteration are fine."""

import random

from repro.analysis.flow import deterministic


@deterministic
def emit_records(records, seed):
    rng = random.Random(seed)
    unique = set(records)
    for record in sorted(unique):
        yield record, rng.random()
