"""Seeded F3 violation: a raw ref is shipped over a pipe."""


def ship_cover(manager, conn, f, c):
    cover = manager.and_(f, c)
    # BUG: cover is an int indexing this process's node table; the
    # receiver cannot interpret it.  Encode with repro.bdd.wire.
    conn.send({"status": "ok", "cover": cover})
