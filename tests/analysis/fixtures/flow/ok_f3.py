"""F3 near-miss: the ref crosses the boundary through bdd.wire."""

from repro.bdd.wire import serialize


def ship_cover(manager, conn, f, c):
    cover = manager.and_(f, c)
    conn.send({"status": "ok", "payload": serialize(manager, (cover,))})
