"""Seeded F1 violation: a ref crosses from one manager to another."""

from repro.bdd.manager import Manager


def cross_manager_size(leaves):
    first = Manager(["a", "b"])
    second = Manager(["a", "b"])
    f = first.and_(first.var(0), first.var(1))
    # BUG: f indexes first's node table, but is handed to second.
    return second.size(f)
