"""Seeded F2 violation: a ref is used after gc(compact=True)."""


def minimize_and_measure(manager, f, c):
    cover = manager.and_(f, c)
    remap = manager.gc((cover,), compact=True)
    # BUG: compaction renumbered every node; cover is stale until it
    # goes through remap.
    return manager.size(cover)
