"""F2 near-miss: the Remap is applied before the ref is reused."""


def minimize_and_measure(manager, f, c):
    cover = manager.and_(f, c)
    remap = manager.gc((cover,), compact=True)
    cover = remap(cover)
    return manager.size(cover)
