"""Fixture: uncached self-recursive BDD traversal rule L4 must flag."""


def count_paths(manager, ref):
    def walk(node):  # BUG: recursive, splits nodes, no memo
        if node == 0:
            return 1
        if node == 1:
            return 0
        level, then_ref, else_ref = manager.top_branches(node)
        return walk(then_ref) + walk(else_ref)

    return walk(ref)


def depth(manager, node):  # BUG: module-level recursive traversal
    if node in (0, 1):
        return 0
    _, then_ref, else_ref = manager.top_branches(node)
    return 1 + max(depth(manager, then_ref), depth(manager, else_ref))
