"""CheckedManager and the hardened Manager.validate."""

import pytest

from repro.analysis.checked import (
    CheckedManager,
    checking_enabled,
    manager_class,
)
from repro.analysis.errors import AnalysisError, ContractError, InvariantError
from repro.bdd.manager import Manager, ONE, ZERO


def _corrupt_equal_children(manager, ref):
    """Make the top node of ``ref`` violate high != low."""
    index = ref >> 1
    manager._low[index] = manager._high[index]
    manager.clear_caches()


class TestExceptionHierarchy:
    def test_invariant_error_is_assertion_error(self):
        # Pre-existing callers catch AssertionError from validate().
        assert issubclass(InvariantError, AssertionError)
        assert issubclass(InvariantError, AnalysisError)
        assert issubclass(ContractError, AnalysisError)

    def test_reexported_from_bdd(self):
        import repro.bdd

        assert repro.bdd.InvariantError is InvariantError


class TestValidate:
    def test_single_ref(self, manager):
        f = manager.and_(manager.var("x1"), manager.var("x2"))
        manager.validate(f)

    def test_multiple_roots(self, manager):
        f = manager.xor(manager.var("x1"), manager.var("x2"))
        c = manager.var("x3")
        g = manager.or_(f, c)
        manager.validate((f, c, g))
        manager.validate([f, c])

    def test_corruption_raises_invariant_error(self, manager):
        f = manager.and_(manager.var("x1"), manager.var("x2"))
        _corrupt_equal_children(manager, f)
        with pytest.raises(InvariantError, match="equal children"):
            manager.validate(f)

    def test_corruption_seen_through_any_root(self, manager):
        f = manager.and_(manager.var("x1"), manager.var("x2"))
        c = manager.var("x3")
        _corrupt_equal_children(manager, f)
        with pytest.raises(InvariantError):
            manager.validate((c, f))


class TestCheckedManager:
    def test_normal_operations_pass(self):
        manager = CheckedManager(["a", "b", "c"], check=True)
        f = manager.and_(manager.var("a"), manager.var("b"))
        g = manager.ite(f, manager.var("c"), manager.not_(f))
        manager.validate((f, g))
        assert manager.checks_run > 0

    def test_one_check_per_public_call(self):
        # The reentrancy guard validates only at the outermost return,
        # not once per ite recursion step.
        manager = CheckedManager(["a", "b", "c", "d"], check=True)
        f = manager.and_(manager.var("a"), manager.var("b"))
        g = manager.or_(manager.var("c"), manager.var("d"))
        before = manager.checks_run
        manager.xor(f, g)
        assert manager.checks_run == before + 1

    def test_detects_corruption_on_next_operation(self):
        manager = CheckedManager(["a", "b"], check=True)
        f = manager.and_(manager.var("a"), manager.var("b"))
        _corrupt_equal_children(manager, f)
        with pytest.raises(InvariantError):
            manager.ite(f, ONE, ZERO)

    def test_check_false_disables(self):
        manager = CheckedManager(["a", "b"], check=False)
        f = manager.and_(manager.var("a"), manager.var("b"))
        assert manager.checks_run == 0
        _corrupt_equal_children(manager, f)
        # No audit fires; the corruption goes unnoticed here.
        manager.ite(f, ONE, ZERO)

    def test_env_zero_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "0")
        manager = CheckedManager(["a"])
        manager.var("a")
        assert manager.checks_run == 0

    def test_results_match_plain_manager(self):
        plain = Manager(["a", "b", "c"])
        checked = CheckedManager(["a", "b", "c"], check=True)
        for m in (plain, checked):
            m.result = m.ite(
                m.var("a"), m.xor(m.var("b"), m.var("c")), m.not_(m.var("b"))
            )
        assert plain.result == checked.result
        assert plain.size(plain.result) == checked.size(checked.result)


def test_repro_check_option_swaps_manager(request, manager):
    # Under ``pytest --repro-check`` the conftest installs
    # CheckedManager globally; otherwise the fixture stays plain.
    if request.config.getoption("--repro-check"):
        assert isinstance(manager, CheckedManager)
        assert manager.checks_run > 0
    else:
        assert type(manager) is Manager


class TestEnvironmentGating:
    def test_checking_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert not checking_enabled()
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert checking_enabled()
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert not checking_enabled()

    def test_manager_class(self, monkeypatch):
        # Compare against the checked module's own base-class binding:
        # under --repro-check this module's ``Manager`` import already
        # resolves to CheckedManager.
        from repro.analysis import checked as checked_module

        monkeypatch.setenv("REPRO_CHECK", "1")
        assert manager_class() is CheckedManager
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert manager_class() is checked_module.Manager
