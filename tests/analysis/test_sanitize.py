"""RefSanitizer: tagging, cross-manager and stale-generation detection."""

import pytest

from repro.analysis.errors import SanitizerError
from repro.analysis.sanitize import (
    SanitizedManager,
    SanitizedRef,
    sanitizing_enabled,
)
from repro.bdd.manager import ONE, ZERO, Manager
from repro.bdd.truthtable import bdd_from_leaves
from repro.bdd.wire import deserialize, serialize


@pytest.fixture
def pair():
    return (
        SanitizedManager(["a", "b", "c"]),
        SanitizedManager(["a", "b", "c"]),
    )


def test_results_come_back_tagged(pair):
    manager, _ = pair
    f = manager.and_(manager.var(0), manager.var(1))
    assert isinstance(f, SanitizedRef)
    assert f.manager_id == manager.manager_id
    assert f.generation == manager.gc_generation


def test_tagged_ref_behaves_like_int(pair):
    manager, _ = pair
    f = manager.var(0)
    assert f == int(f)
    assert hash(f) == hash(int(f))
    assert {f: "x"}[int(f)] == "x"
    # Derived arithmetic drops the tag and is accepted unchecked.
    assert manager.size(f ^ 1) == manager.size(manager.not_(f))


def test_cross_manager_use_raises(pair):
    first, second = pair
    f = first.and_(first.var(0), first.var(1))
    with pytest.raises(SanitizerError, match="minted by manager"):
        second.size(f)


def test_cross_manager_inside_containers(pair):
    first, second = pair
    f = first.var(0)
    with pytest.raises(SanitizerError):
        second.and_many([second.var(0), f])
    with pytest.raises(SanitizerError):
        second.validate((second.var(1), f))


def test_stale_generation_raises(pair):
    manager, _ = pair
    f = manager.or_(manager.var(0), manager.var(2))
    remap = manager.gc((f,), compact=True)
    with pytest.raises(SanitizerError, match="gc generation"):
        manager.size(f)
    fresh = manager.gc((remap(f),), compact=False)
    assert fresh is None


def test_remap_translates_and_retags(pair):
    manager, _ = pair
    f = manager.xor(manager.var(0), manager.var(1))
    size_before = manager.size(f)
    remap = manager.gc((f,), compact=True)
    fresh = remap(f)
    assert isinstance(fresh, SanitizedRef)
    assert fresh.generation == manager.gc_generation
    assert manager.size(fresh) == size_before


def test_double_remap_raises(pair):
    manager, _ = pair
    f = manager.var(1)
    remap = manager.gc((f,), compact=True)
    fresh = remap(f)
    with pytest.raises(SanitizerError, match="double translation"):
        remap(fresh)


def test_untagged_ints_accepted(pair):
    manager, _ = pair
    # Constants and refs from unsanitized code are plain ints; the
    # sanitizer is best-effort and lets them through unchecked.
    assert manager.size(ONE) == 1
    assert manager.and_(ONE, int(manager.var(0))) == manager.var(0)


def test_branches_tag_outputs(pair):
    manager, _ = pair
    f = manager.xor(manager.var(0), manager.var(1))
    level, then_f, else_f = manager.top_branches(f)
    assert level == 0
    assert isinstance(then_f, SanitizedRef)
    assert isinstance(else_f, SanitizedRef)
    then_f2, else_f2 = manager.branches(f, level)
    assert (then_f2, else_f2) == (then_f, else_f)


def test_constants_stay_untagged(pair):
    manager, other = pair
    f = manager.and_(manager.var(0), manager.var(1))
    _, _, else_f = manager.top_branches(f)
    # The else branch of a conjunction is ZERO: manager-independent,
    # so it comes back as a plain int another manager will accept.
    assert type(else_f) is int
    assert other.size(else_f) == 1


def test_wire_round_trip_through_public_api(pair):
    manager, _ = pair
    f = bdd_from_leaves(manager, [True, False, True, False, False, True, True, False])
    blob = serialize(manager, (f,))
    rebuilt, roots = deserialize(blob)
    assert rebuilt.size(roots[0]) == manager.size(f)


def test_gc_checks_roots_from_other_manager(pair):
    first, second = pair
    f = first.var(0)
    with pytest.raises(SanitizerError):
        second.gc((f,), compact=True)


def test_sanitizer_counts_checks(pair):
    manager, _ = pair
    before = manager.sanitizer_checks
    f = manager.var(0)
    manager.size(f)
    assert manager.sanitizer_checks > before


def test_sanitizing_enabled_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitizing_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitizing_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not sanitizing_enabled()


@pytest.mark.skipif(
    sanitizing_enabled(),
    reason="REPRO_SANITIZE=1 rebinds Manager to SanitizedManager by design",
)
def test_plain_manager_is_untouched():
    # The off-path guarantee: an ordinary Manager mints plain ints.
    manager = Manager(["a"])
    assert type(manager.var(0)) is int
