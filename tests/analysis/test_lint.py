"""repro-lint: every rule flags its fixture and spares clean code."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULES,
    Violation,
    default_lint_root,
    lint_file,
    lint_paths,
    lint_source,
    main,
)

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> (expected rule, expected violation count)
BAD_FIXTURES = {
    "bad_l1.py": ("L1", 7),
    "bad_l2.py": ("L2", 5),
    "bad_l3.py": ("L3", 2),
    "bad_l4.py": ("L4", 2),
    "bad_l5.py": ("L5", 4),
}


@pytest.mark.parametrize("filename", sorted(BAD_FIXTURES))
def test_bad_fixture_is_flagged(filename):
    rule, count = BAD_FIXTURES[filename]
    violations = lint_file(FIXTURES / filename)
    assert violations, "expected %s violations in %s" % (rule, filename)
    assert {violation.rule for violation in violations} == {rule}
    assert len(violations) == count


def test_clean_fixture_is_clean():
    assert lint_file(FIXTURES / "clean.py") == []


def test_every_rule_has_a_fixture():
    covered = {BAD_FIXTURES[name][0] for name in BAD_FIXTURES}
    assert covered == set(RULES)


def test_l1_flags_direct_call_coercion():
    violations = lint_source("def f(manager, a, b):\n    if manager.ite(a, b, 1):\n        return a\n")
    assert [violation.rule for violation in violations] == ["L1"]
    assert "ite" in violations[0].message


def test_l1_ignores_explicit_comparison():
    source = "def f(manager, g):\n    if g == 0:\n        return g\n"
    assert lint_source(source) == []


def test_l2_allowed_inside_manager_file():
    source = "def f(self, i):\n    return self._high[i]\n"
    assert lint_source(source, "src/repro/bdd/manager.py") == []
    assert len(lint_source(source, "src/repro/core/sibling.py")) == 1


def test_l4_exempts_generators():
    source = (
        "def walk(manager, node):\n"
        "    a, b = manager.branches(node, 0)\n"
        "    yield from walk(manager, a)\n"
        "    yield from walk(manager, b)\n"
    )
    assert lint_source(source) == []


def test_suppression_comment():
    flagged = "def f(g):\n    return not g\n"
    assert len(lint_source(flagged)) == 1
    suppressed = "def f(g):\n    return not g  # repro-lint: skip\n"
    assert lint_source(suppressed) == []
    wrong_code = "def f(g):\n    return not g  # repro-lint: skip=L4\n"
    assert len(lint_source(wrong_code)) == 1


def test_violation_render_format():
    violation = Violation("L5", "pkg/mod.py", 12, 4, "mutable default")
    assert violation.render() == "pkg/mod.py:12:4: L5 mutable default"


def test_repro_package_is_lint_clean():
    violations = lint_paths([default_lint_root()])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_main_exit_codes(capsys):
    assert main([str(FIXTURES / "clean.py")]) == 0
    assert "clean" in capsys.readouterr().out
    assert main([str(FIXTURES / "bad_l3.py")]) == 1
    out = capsys.readouterr().out
    assert "L3" in out and "violation" in out


def test_main_reports_unreadable_and_unparsable_files(tmp_path, capsys):
    missing = tmp_path / "missing.py"
    assert main([str(missing)]) == 2
    assert "cannot read" in capsys.readouterr().err
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 2
    assert "syntax error" in capsys.readouterr().err


def _run_cli(*args):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_lint_clean_on_package():
    result = _run_cli()
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_lint_fails_on_fixture():
    result = _run_cli(str(FIXTURES / "bad_l1.py"))
    assert result.returncode == 1
    assert "L1" in result.stdout
