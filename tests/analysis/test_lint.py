"""repro-lint: every rule flags its fixture and spares clean code."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULES,
    Violation,
    apply_baseline,
    default_lint_paths,
    default_lint_root,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    main,
    render_json,
    render_sarif,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> (expected rule, expected violation count)
BAD_FIXTURES = {
    "bad_l1.py": ("L1", 7),
    "bad_l2.py": ("L2", 5),
    "bad_l3.py": ("L3", 2),
    "bad_l4.py": ("L4", 2),
    "bad_l5.py": ("L5", 4),
}


@pytest.mark.parametrize("filename", sorted(BAD_FIXTURES))
def test_bad_fixture_is_flagged(filename):
    rule, count = BAD_FIXTURES[filename]
    violations = lint_file(FIXTURES / filename)
    assert violations, "expected %s violations in %s" % (rule, filename)
    assert {violation.rule for violation in violations} == {rule}
    assert len(violations) == count


def test_clean_fixture_is_clean():
    assert lint_file(FIXTURES / "clean.py") == []


def test_every_rule_has_a_fixture():
    covered = {BAD_FIXTURES[name][0] for name in BAD_FIXTURES}
    assert covered == set(RULES)


def test_l1_flags_direct_call_coercion():
    violations = lint_source("def f(manager, a, b):\n    if manager.ite(a, b, 1):\n        return a\n")
    assert [violation.rule for violation in violations] == ["L1"]
    assert "ite" in violations[0].message


def test_l1_ignores_explicit_comparison():
    source = "def f(manager, g):\n    if g == 0:\n        return g\n"
    assert lint_source(source) == []


def test_l2_allowed_inside_manager_file():
    source = "def f(self, i):\n    return self._high[i]\n"
    assert lint_source(source, "src/repro/bdd/manager.py") == []
    assert len(lint_source(source, "src/repro/core/sibling.py")) == 1


def test_l4_exempts_generators():
    source = (
        "def walk(manager, node):\n"
        "    a, b = manager.branches(node, 0)\n"
        "    yield from walk(manager, a)\n"
        "    yield from walk(manager, b)\n"
    )
    assert lint_source(source) == []


def test_suppression_comment():
    flagged = "def f(g):\n    return not g\n"
    assert len(lint_source(flagged)) == 1
    suppressed = "def f(g):\n    return not g  # repro-lint: skip\n"
    assert lint_source(suppressed) == []
    wrong_code = "def f(g):\n    return not g  # repro-lint: skip=L4\n"
    assert len(lint_source(wrong_code)) == 1


def test_violation_render_format():
    violation = Violation("L5", "pkg/mod.py", 12, 4, "mutable default")
    assert violation.render() == "pkg/mod.py:12:4: L5 mutable default"


def test_repro_package_is_lint_clean():
    violations = lint_paths([default_lint_root()])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_main_exit_codes(capsys):
    assert main([str(FIXTURES / "clean.py")]) == 0
    assert "clean" in capsys.readouterr().out
    assert main([str(FIXTURES / "bad_l3.py")]) == 1
    out = capsys.readouterr().out
    assert "L3" in out and "violation" in out


def test_main_reports_unreadable_and_unparsable_files(tmp_path, capsys):
    missing = tmp_path / "missing.py"
    assert main([str(missing)]) == 2
    assert "cannot read" in capsys.readouterr().err
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 2
    assert "syntax error" in capsys.readouterr().err


def _run_cli(*args):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_lint_clean_on_package():
    result = _run_cli()
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_lint_fails_on_fixture():
    result = _run_cli(str(FIXTURES / "bad_l1.py"))
    assert result.returncode == 1
    assert "L1" in result.stdout


def test_l4_exempts_functools_decorators():
    source = (
        "import functools\n"
        "@functools.lru_cache(maxsize=None)\n"
        "def walk(manager, node):\n"
        "    a, b = manager.branches(node, 0)\n"
        "    return 1 + walk(manager, a) + walk(manager, b)\n"
    )
    assert lint_source(source) == []


def test_l4_exempts_aliased_lru_cache():
    # The blind spot: an alias with no 'cache' in its text used to be
    # flagged as uncached; decorator resolution through the import
    # table now recognizes it.
    source = (
        "from functools import lru_cache as _f\n"
        "@_f(maxsize=None)\n"
        "def walk(manager, node):\n"
        "    a, b = manager.branches(node, 0)\n"
        "    return 1 + walk(manager, a) + walk(manager, b)\n"
    )
    assert lint_source(source) == []


def test_l4_still_flags_undecorated_recursion():
    source = (
        "def walk(manager, node):\n"
        "    a, b = manager.branches(node, 0)\n"
        "    return 1 + walk(manager, a) + walk(manager, b)\n"
    )
    assert [violation.rule for violation in lint_source(source)] == ["L4"]


def test_default_lint_paths_include_benchmarks():
    paths = [path.name for path in default_lint_paths()]
    assert paths[0] == "repro"
    assert "benchmarks" in paths
    assert "examples" in paths


def test_render_json_shape():
    import json

    violations = lint_file(FIXTURES / "bad_l3.py")
    document = json.loads(render_json(violations))
    assert document["count"] == len(violations) == 2
    assert {entry["rule"] for entry in document["violations"]} == {"L3"}
    assert all("line" in entry for entry in document["violations"])


def test_render_sarif_shape():
    import json

    violations = lint_file(FIXTURES / "bad_l1.py")
    document = json.loads(render_sarif(violations))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"L1", "L4", "F1", "F4"} <= rule_ids
    assert len(run["results"]) == len(violations)
    result = run["results"][0]
    assert result["ruleId"] == "L1"
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"]


def test_baseline_round_trip(tmp_path):
    violations = lint_file(FIXTURES / "bad_l3.py")
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, violations)
    entries = load_baseline(baseline)
    assert len(entries) == len(violations)
    assert apply_baseline(violations, entries) == []
    # A new finding not in the baseline survives.
    other = lint_file(FIXTURES / "bad_l5.py")
    assert apply_baseline(other, entries) == other


def test_main_baseline_suppresses_and_exits_zero(tmp_path, capsys):
    fixture = str(FIXTURES / "bad_l3.py")
    baseline = str(tmp_path / "baseline.json")
    assert main([fixture, "--write-baseline", baseline]) == 0
    capsys.readouterr()
    assert main([fixture, "--baseline", baseline]) == 0
    assert "clean" in capsys.readouterr().out


def test_main_format_json(capsys):
    import json

    assert main([str(FIXTURES / "bad_l5.py"), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["count"] == 4


def test_main_flow_flag(capsys):
    flow_fixture = FIXTURES / "flow" / "bad_f2.py"
    assert main([str(flow_fixture), "--flow"]) == 1
    out = capsys.readouterr().out
    assert "F2" in out
    # Without --flow only the L rules run; the fixture is L-clean.
    assert main([str(flow_fixture)]) == 0


def test_cli_lint_flow_sarif():
    import json

    result = _run_cli("--flow", "--format", "sarif")
    assert result.returncode == 0, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["runs"][0]["results"] == []
