"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestMinimize:
    def test_leaf_instance(self, capsys):
        assert main(["minimize", "d1 01"]) == 0
        out = capsys.readouterr().out
        assert "osm_bt" in out
        assert "|g| = 2" in out

    def test_all_heuristics(self, capsys):
        assert main(["minimize", "d1 01", "--all"]) == 0
        out = capsys.readouterr().out
        assert "constrain" in out and "opt_lv" in out

    def test_expression_mode(self, capsys):
        code = main(
            [
                "minimize",
                "(a & b) | c",
                "--expression",
                "--care",
                "a | b",
                "--method",
                "restrict",
            ]
        )
        assert code == 0
        assert "restrict" in capsys.readouterr().out

    def test_expression_requires_care(self, capsys):
        assert main(["minimize", "a & b", "--expression"]) == 2

    def test_bad_leaf_string(self):
        with pytest.raises(ValueError):
            main(["minimize", "d1 0"])


class TestEquivalence:
    def test_self_check(self, capsys):
        assert main(["equivalence", "tlc"]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_two_machines_differ(self, capsys):
        # Same input interface ('en'), different output behaviour.
        assert main(["equivalence", "count4", "gray4"]) == 1
        out = capsys.readouterr().out
        assert "NOT EQUIVALENT" in out
        assert "counterexample" in out

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["equivalence", "nope"])


class TestBlif:
    def test_inspect_and_reachable(self, tmp_path, capsys):
        path = tmp_path / "toggle.blif"
        path.write_text(
            ".model toggle\n.inputs en\n.outputs out\n"
            ".latch q_next q 0\n"
            ".names en q q_next\n10 1\n01 1\n"
            ".names q out\n1 1\n.end\n"
        )
        assert main(["blif", str(path), "--reachable"]) == 0
        out = capsys.readouterr().out
        assert "1 latches" in out
        assert "reachable states: 2 of 2" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_flags_parse(self):
        args = build_parser().parse_args(
            ["experiments", "--quick", "--csv", "out.csv"]
        )
        assert args.quick and args.csv == "out.csv"


class TestServeCommands:
    def test_minimize_isolate(self, capsys):
        code = main(
            ["minimize", "d1 01", "--isolate", "--deadline", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "osm_bt" in out
        assert "|g| = 2" in out

    def test_serve_json_lines(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"instance": "d1 01", "method": "osm_bt"}\n'
            '{"f": "a & b | c", "care": "a | b"}\n'
            "not json\n"
            '{"instance": "d1 01", "method": "no_such"}\n'
        )
        code = main(
            [
                "serve",
                "--workers",
                "1",
                "--deadline",
                "10",
                "--input",
                str(requests),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        import json

        lines = [
            json.loads(line)
            for line in captured.out.strip().splitlines()
        ]
        assert len(lines) == 4
        assert lines[0]["ok"] and lines[0]["method"] == "osm_bt"
        assert lines[1]["ok"]
        assert not lines[2]["ok"] and "bad request" in lines[2]["error"]
        assert not lines[3]["ok"]
        assert "UnknownHeuristic" in lines[3]["reason"]
        assert "served 3 request(s)" in captured.err

    def test_parallel_flags_parse(self):
        args = build_parser().parse_args(
            ["experiments", "--parallel", "2", "--memory-limit", "1000"]
        )
        assert args.parallel == 2 and args.memory_limit == 1000
        args = build_parser().parse_args(["minimize", "x", "--isolate"])
        assert args.isolate
        args = build_parser().parse_args(["serve", "--workers", "3"])
        assert args.workers == 3

    def test_loadtest_quick_run(self, tmp_path, capsys):
        import json
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("loadtest requires fork")
        output = tmp_path / "load.json"
        code = main(
            [
                "loadtest",
                "--quick",
                "--schedule",
                "calm",
                "--requests",
                "20",
                "--concurrency",
                "3",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "calm" in captured.out
        assert "all serve-layer invariants held" in captured.out
        record = json.loads(output.read_text())
        assert record["violations"] == []
        assert record["schedules"][0]["schedule"] == "calm"
        assert record["schedules"][0]["invalid_covers"] == 0

    def test_loadtest_unknown_schedule_is_usage_error(self):
        assert main(["loadtest", "--schedule", "earthquake"]) == 2

    def test_loadtest_flags_parse(self):
        args = build_parser().parse_args(
            ["loadtest", "--quick", "--max-p99", "3.0",
             "--max-shed-rate", "0.5"]
        )
        assert args.quick and args.max_p99 == 3.0
        assert args.max_shed_rate == 0.5


class TestObservability:
    def test_minimize_metrics_and_trace(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "minimize",
                "d1 01",
                "--method",
                "sched",
                "--metrics",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "manager.ite_calls" in out
        assert "trace written to" in out
        from repro.obs.trace import validate_events

        events = json.loads(trace_path.read_text())
        validate_events(events)
        assert any(e["name"] == "heuristic.sched" for e in events)

    def test_metrics_subcommand(self, capsys):
        code = main(
            [
                "metrics",
                "tlc",
                "--heuristics",
                "constrain",
                "osm_bt",
                "--max-iterations",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BDD engine counters per heuristic" in out
        assert "total ite calls:" in out
        # The acceptance bar: a sweep shows non-zero engine activity.
        total_line = next(
            line for line in out.splitlines()
            if line.startswith("total ite calls:")
        )
        assert int(total_line.split(":")[1]) > 0
        hits_line = next(
            line for line in out.splitlines()
            if line.startswith("total ite cache hits:")
        )
        assert int(hits_line.split(":")[1]) > 0

    def test_observability_flags_parse(self):
        args = build_parser().parse_args(
            ["experiments", "--metrics", "--trace", "out.json"]
        )
        assert args.metrics and args.trace == "out.json"
        args = build_parser().parse_args(["metrics", "--max-iterations", "3"])
        assert args.max_iterations == 3
