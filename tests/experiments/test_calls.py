"""Tests for call collection (interception during equivalence checks)."""

import pytest

from repro.bdd.manager import ZERO
from repro.core.ispec import ISpec
from repro.experiments.calls import (
    collect_benchmark_calls,
    collect_suite_calls,
)


@pytest.fixture(scope="module")
def tlc_calls():
    return collect_benchmark_calls("tlc")


def test_traversal_still_correct(tlc_calls):
    assert tlc_calls.equivalent
    assert tlc_calls.iterations > 0


def test_calls_recorded(tlc_calls):
    assert tlc_calls.calls
    assert tlc_calls.filtered_out > 0  # cube frontiers get filtered


def test_both_call_kinds_present(tlc_calls):
    kinds = {call.kind for call in tlc_calls.calls}
    assert kinds == {"image", "frontier"}


def test_image_calls_are_sparse_frontier_calls_dense(tlc_calls):
    image_fracs = [
        call.onset_fraction for call in tlc_calls.calls if call.kind == "image"
    ]
    frontier_fracs = [
        call.onset_fraction
        for call in tlc_calls.calls
        if call.kind == "frontier"
    ]
    assert max(image_fracs) < 0.5
    assert min(frontier_fracs) > 0.5


def test_recorded_instances_are_nontrivial(tlc_calls):
    manager = tlc_calls.manager
    for call in tlc_calls.calls:
        spec = ISpec(manager, call.f, call.c)
        assert not spec.is_trivial()
        assert call.c != ZERO
        assert call.f_size == manager.size(call.f)


def test_unfiltered_collection_keeps_everything():
    unfiltered = collect_benchmark_calls("tlc", filter_trivial=False)
    filtered = collect_benchmark_calls("tlc", filter_trivial=True)
    assert len(unfiltered.calls) == len(filtered.calls) + filtered.filtered_out
    assert unfiltered.filtered_out == 0


def test_max_iterations_truncates():
    short = collect_benchmark_calls("tlc", max_iterations=3)
    assert short.iterations == 3


def test_collect_suite_calls_subset():
    records = collect_suite_calls(["tlc", "styr"])
    assert [record.name for record in records] == ["tlc", "styr"]
    assert all(record.equivalent for record in records)
