"""Tests for per-benchmark summaries, stats, and CSV export."""

import csv
import io

import pytest

from repro.experiments.calls import collect_suite_calls
from repro.experiments.harness import run_heuristics
from repro.experiments.summary import (
    export_csv,
    lower_bound_attainment,
    per_benchmark_summaries,
    render_per_benchmark,
    win_counts,
)


@pytest.fixture(scope="module")
def results():
    calls = collect_suite_calls(["tlc", "styr"])
    return run_heuristics(calls, cube_limit=50)


class TestPerBenchmark:
    def test_one_summary_per_benchmark(self, results):
        summaries = per_benchmark_summaries(results)
        assert [summary.name for summary in summaries] == ["tlc", "styr"]

    def test_call_counts_partition(self, results):
        summaries = per_benchmark_summaries(results)
        assert sum(summary.calls for summary in summaries) == len(
            results.results
        )
        for summary in summaries:
            assert summary.sparse_calls + summary.dense_calls <= summary.calls

    def test_reduction_at_least_min_ratio(self, results):
        for summary in per_benchmark_summaries(results):
            assert summary.reduction >= 0.0
            assert summary.min_total <= summary.f_orig_total or (
                summary.reduction < 1.0
            )

    def test_best_heuristic_is_registered(self, results):
        for summary in per_benchmark_summaries(results):
            assert summary.best_heuristic in results.heuristics

    def test_render(self, results):
        text = render_per_benchmark(results)
        assert "tlc" in text
        assert "Reduction" in text


class TestStats:
    def test_attainment_in_unit_interval(self, results):
        fraction = lower_bound_attainment(results)
        assert fraction is not None
        assert 0.0 <= fraction <= 1.0

    def test_attainment_none_without_bounds(self):
        calls = collect_suite_calls(["tlc"])
        results = run_heuristics(calls, compute_lower_bound=False)
        assert lower_bound_attainment(results) is None

    def test_win_counts_cover_every_call(self, results):
        counts = win_counts(results)
        # Every call is won by at least one heuristic (ties count all).
        assert max(counts.values()) <= len(results.results)
        assert sum(counts.values()) >= len(results.results)


class TestCsv:
    def test_row_count_and_header(self, results):
        text = export_csv(results)
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == len(results.results) + 1
        header = rows[0]
        assert header[0] == "benchmark"
        assert "size_constrain" in header
        assert "time_opt_lv" in header

    def test_values_roundtrip(self, results):
        text = export_csv(results)
        rows = list(csv.DictReader(io.StringIO(text)))
        for row, result in zip(rows, results.results):
            assert row["benchmark"] == result.benchmark
            assert int(row["min"]) == result.min_size
            assert int(row["size_restrict"]) == result.sizes["restrict"]

    def test_stream_write(self, results):
        buffer = io.StringIO()
        text = export_csv(results, stream=buffer)
        assert buffer.getvalue() == text
