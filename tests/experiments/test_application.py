"""Tests for the application-impact measurement."""

import pytest

from repro.experiments.application import (
    DEFAULT_MINIMIZERS,
    measure_application_impact,
    render_application_impact,
)


@pytest.fixture(scope="module")
def runs():
    return measure_application_impact(
        ["tlc", "styr"], minimizers=("f_orig", "constrain", "osm_bt")
    )


def test_every_combination_measured(runs):
    assert len(runs) == 2 * 3
    assert {run.benchmark for run in runs} == {"tlc", "styr"}
    assert {run.minimizer for run in runs} == {
        "f_orig",
        "constrain",
        "osm_bt",
    }


def test_traversals_remain_correct(runs):
    """Whatever the minimizer, self-equivalence must hold."""
    for run in runs:
        assert run.equivalent
        assert run.iterations > 0
        assert run.seconds >= 0.0
        assert run.nodes_allocated > 0


def test_minimizer_choice_does_not_change_iterations(runs):
    """Frontier covers satisfy U <= S <= R: same fixpoint depth ±1."""
    by_benchmark = {}
    for run in runs:
        by_benchmark.setdefault(run.benchmark, []).append(run.iterations)
    for iterations in by_benchmark.values():
        assert max(iterations) - min(iterations) <= 1


def test_render(runs):
    text = render_application_impact(runs)
    assert "Application impact" in text
    assert "tlc" in text
    assert "osm_bt nodes" in text


def test_default_minimizers_registered():
    from repro.core.registry import HEURISTICS

    for name in DEFAULT_MINIMIZERS:
        assert name in HEURISTICS
