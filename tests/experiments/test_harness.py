"""Tests for the measurement harness and exhibit generators."""

import pytest

from repro.core.registry import PAPER_HEURISTICS
from repro.experiments.buckets import Bucket, bucket_of
from repro.experiments.calls import collect_suite_calls
from repro.experiments.harness import run_heuristics, run_experiment
from repro.experiments.table3 import (
    reduction_factor,
    render_table3,
    table3_rows,
)
from repro.experiments.table4 import (
    orthogonality,
    render_table4,
    table4_matrix,
)
from repro.experiments.figure3 import (
    figure3_curves,
    render_figure3,
    y_intercepts,
)
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def results():
    calls = collect_suite_calls(["tlc", "styr"])
    return run_heuristics(calls, cube_limit=100)


class TestBuckets:
    def test_boundaries(self):
        assert bucket_of(0.0) is Bucket.SPARSE
        assert bucket_of(0.049) is Bucket.SPARSE
        assert bucket_of(0.05) is Bucket.MIDDLE
        assert bucket_of(0.95) is Bucket.MIDDLE
        assert bucket_of(0.951) is Bucket.DENSE
        assert bucket_of(1.0) is Bucket.DENSE


class TestHarness:
    def test_all_heuristics_measured(self, results):
        assert results.results
        for result in results.results:
            assert set(result.sizes) == set(PAPER_HEURISTICS)
            assert set(result.runtimes) == set(PAPER_HEURISTICS)

    def test_min_is_minimum(self, results):
        for result in results.results:
            assert result.min_size == min(result.sizes.values())

    def test_lower_bound_below_min(self, results):
        for result in results.results:
            assert result.lower_bound is not None
            assert result.lower_bound <= result.min_size

    def test_bucket_partition(self, results):
        total = sum(
            len(results.in_bucket(bucket))
            for bucket in (Bucket.SPARSE, Bucket.MIDDLE, Bucket.DENSE)
        )
        assert total == len(results.results)
        assert results.in_bucket(None) == results.results

    def test_run_experiment_end_to_end(self):
        res = run_experiment(
            names=["tlc"],
            heuristics=("constrain", "restrict", "f_orig"),
            compute_lower_bound=False,
        )
        assert res.total_calls == len(res.results)
        assert res.results
        for result in res.results:
            assert result.lower_bound is None

    def test_broken_heuristic_detected(self):
        from repro.core.registry import HEURISTICS

        HEURISTICS["_broken"] = lambda manager, f, c: manager.and_(f, 1) ^ 1
        try:
            calls = collect_suite_calls(["tlc"])
            res = run_heuristics(
                calls,
                heuristics=("_broken",),
                compute_lower_bound=False,
            )
        finally:
            del HEURISTICS["_broken"]
        # A non-cover is recorded as a failed cell, never a crash and
        # never a silent bogus size.
        assert res.results
        for result in res.results:
            assert result.sizes["_broken"] is None
            assert "non-cover" in result.failures["_broken"]
            assert result.min_size == result.f_size


class TestTable3:
    def test_rows_sorted_and_ranked(self, results):
        rows = table3_rows(results)
        heuristic_rows = [row for row in rows if row.rank is not None]
        totals = [row.total_size for row in heuristic_rows]
        assert totals == sorted(totals)
        assert heuristic_rows[0].rank == 1

    def test_min_row_is_100_percent(self, results):
        rows = table3_rows(results)
        min_row = next(row for row in rows if row.name == "min")
        assert min_row.pct_of_min == pytest.approx(100.0)

    def test_ties_share_rank(self, results):
        rows = table3_rows(results)
        by_total = {}
        for row in rows:
            if row.rank is None:
                continue
            by_total.setdefault(row.total_size, set()).add(row.rank)
        for ranks in by_total.values():
            assert len(ranks) == 1

    def test_low_bd_at_most_min(self, results):
        rows = table3_rows(results)
        low = next(row for row in rows if row.name == "low_bd")
        minimum = next(row for row in rows if row.name == "min")
        assert low.total_size <= minimum.total_size

    def test_render_smoke(self, results):
        text = render_table3(
            results, buckets=[None, Bucket.SPARSE, Bucket.DENSE]
        )
        assert "All calls" in text
        assert "osm_bt" in text

    def test_reduction_factor_at_least_one(self, results):
        assert reduction_factor(results) >= 1.0


class TestTable4:
    def test_diagonal_zero(self, results):
        matrix = table4_matrix(results)
        for name in ("f_orig", "constrain", "restrict"):
            assert matrix[(name, name)] == 0.0

    def test_min_row_dominates(self, results):
        """min never loses: row 'min' >= every other row entry-wise."""
        matrix = table4_matrix(results)
        names = [name for (row, name) in matrix if row == "min"]
        for col in names:
            for row in ("constrain", "restrict", "osm_bt"):
                assert matrix[("min", col)] >= 0.0
                # min is never strictly larger than any heuristic:
                # nobody can beat min.
        calls = results.in_bucket(None)
        for result in calls:
            assert result.min_size <= min(result.sizes.values())

    def test_orthogonality_symmetric_sum(self, results):
        matrix = table4_matrix(results)
        value = orthogonality(matrix, "constrain", "restrict")
        assert 0.0 <= value <= 200.0

    def test_render_smoke(self, results):
        text = render_table4(results)
        assert "Head-to-head" in text


class TestFigure3:
    def test_curves_monotone(self, results):
        curves = figure3_curves(results)
        for series in curves.values():
            values = [value for _, value in series]
            assert values == sorted(values)
            assert values[-1] <= 100.0

    def test_y_intercept_matches_curve(self, results):
        curves = figure3_curves(results)
        intercepts = y_intercepts(results)
        for name, series in curves.items():
            assert intercepts[name] == pytest.approx(series[0][1])

    def test_render_smoke(self, results):
        text = render_figure3(results)
        assert "Figure 3" in text
        assert "within % of min" in text


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["x", "1"], ["yy", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])
