"""Tests for instance-corpus serialization."""

import json

import pytest

from repro.core.ispec import ISpec
from repro.core.registry import HEURISTICS
from repro.experiments.calls import collect_benchmark_calls
from repro.experiments.instances import dump_calls, load_calls


@pytest.fixture(scope="module")
def corpus():
    records = [collect_benchmark_calls("tlc")]
    text = dump_calls(records)
    return records, text


def test_dump_is_valid_json(corpus):
    records, text = corpus
    payload = json.loads(text)
    assert payload[0]["benchmark"] == "tlc"
    assert len(payload[0]["calls"]) == len(records[0].calls)


def test_roundtrip_preserves_semantics(corpus):
    """Each reloaded [f, c] has the same care set and care values."""
    records, text = corpus
    reloaded = load_calls(text)
    original_record = records[0]
    reloaded_record = reloaded[0]
    assert len(reloaded_record.calls) == len(original_record.calls)
    source = original_record.manager
    target = reloaded_record.manager
    for before, after in zip(original_record.calls, reloaded_record.calls):
        assert before.kind == after.kind
        assert before.iteration == after.iteration
        # Compare semantically via the leaf strings over shared names.
        assert before.onset_fraction == pytest.approx(
            after.onset_fraction
        )
        assert source.sat_count(before.f) == target.sat_count(after.f)
        assert source.sat_count(before.c) == target.sat_count(after.c)


def test_reloaded_instances_minimizable(corpus):
    """Heuristics run unchanged on a reloaded corpus."""
    _, text = corpus
    record = load_calls(text)[0]
    manager = record.manager
    for call in record.calls[:5]:
        cover = HEURISTICS["osm_bt"](manager, call.f, call.c)
        assert ISpec(manager, call.f, call.c).is_cover(cover)


def test_deterministic_dump(corpus):
    records, text = corpus
    assert dump_calls(records) == text
