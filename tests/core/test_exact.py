"""Tests for the exhaustive exact EBM minimizer."""

import pytest
from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.core.exact import (
    ExactSearchTooLarge,
    enumerate_covers,
    exact_minimize,
    exact_minimum_size,
)
from repro.core.ispec import ISpec, parse_instance

from tests.conftest import instance_strategy, build_instance


class TestEnumerateCovers:
    def test_count_is_two_to_the_dc(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 0d")  # two DC leaves
        covers = list(enumerate_covers(manager, spec.f, spec.c))
        assert len(covers) == 4

    def test_every_enumerated_function_covers(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 0d 11 d0")
        for cover in enumerate_covers(manager, spec.f, spec.c):
            assert spec.is_cover(cover)

    def test_fully_specified_has_single_cover(self):
        manager = Manager()
        spec = parse_instance(manager, "01 10")
        covers = list(enumerate_covers(manager, spec.f, spec.c))
        assert covers == [spec.f]

    def test_support_budget(self):
        manager = Manager()
        manager.ensure_vars(12)
        f = manager.and_many(manager.var(level) for level in range(12))
        with pytest.raises(ExactSearchTooLarge):
            list(enumerate_covers(manager, f, ONE, max_support=10))

    def test_dc_budget(self):
        manager = Manager()
        spec = parse_instance(manager, "d1dd dddd")  # 7 DC minterms
        with pytest.raises(ExactSearchTooLarge):
            list(enumerate_covers(manager, spec.f, spec.c, max_dc=4))


class TestExactMinimize:
    def test_known_minimum_example1(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01")
        best, size = exact_minimize(manager, spec.f, spec.c)
        assert size == 2
        assert spec.is_cover(best)

    def test_all_dc_gives_constant(self):
        manager = Manager()
        spec = parse_instance(manager, "dd dd")
        assert exact_minimum_size(manager, spec.f, spec.c) == 1

    def test_no_dc_returns_f_size(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a ^ b")
        assert exact_minimum_size(manager, f, ONE) == manager.size(f)

    def test_custom_cost(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01")
        _, below = exact_minimize(
            manager,
            spec.f,
            spec.c,
            cost=lambda ref: manager.nodes_below(ref, 0),
        )
        assert below >= 1  # at least the terminal

    @given(instance_strategy(3, nonzero_care=True))
    @settings(max_examples=25)
    def test_minimum_is_a_cover_and_lower_bound(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        best, size = exact_minimize(manager, f, c)
        spec = ISpec(manager, f, c)
        assert spec.is_cover(best)
        assert size <= manager.size(f)
        assert size <= manager.size(spec.onset())
