"""Tests for the generic top-down sibling matcher (Figure 2)."""

import pytest
from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.core.criteria import Criterion
from repro.core.ispec import ISpec, parse_instance
from repro.core.sibling import (
    TABLE2_HEURISTICS,
    constrain,
    generic_td,
    restrict,
)

from tests.conftest import instance_strategy, build_instance


ALL_PARAMS = [
    (criterion, compl, nnv)
    for criterion in Criterion
    for compl in (False, True)
    for nnv in (False, True)
]


@given(instance_strategy(4, nonzero_care=True))
@settings(max_examples=40)
def test_result_is_always_a_cover(instance):
    """The fundamental invariant for every Table 2 parameter point."""
    manager = Manager()
    f, c = build_instance(manager, *instance)
    spec = ISpec(manager, f, c)
    for criterion, compl, nnv in ALL_PARAMS:
        cover = generic_td(
            manager, f, c, criterion, match_complement=compl, no_new_vars=nnv
        )
        assert spec.is_cover(cover), (criterion, compl, nnv)


@given(instance_strategy(4, nonzero_care=True))
@settings(max_examples=40)
def test_no_new_variables_outside_union_support(instance):
    """§3.2: no algorithm introduces vars outside support(f) ∪ support(c)."""
    manager = Manager()
    f, c = build_instance(manager, *instance)
    union = manager.support_multi((f, c))
    for criterion, compl, nnv in ALL_PARAMS:
        cover = generic_td(
            manager, f, c, criterion, match_complement=compl, no_new_vars=nnv
        )
        assert manager.support(cover) <= union


@given(instance_strategy(4, nonzero_care=True))
@settings(max_examples=40)
def test_no_new_vars_keeps_f_support(instance):
    """With nnv, the result's support stays within f's support."""
    manager = Manager()
    f, c = build_instance(manager, *instance)
    f_support = manager.support(f)
    for criterion in (Criterion.OSDM, Criterion.OSM):
        cover = generic_td(manager, f, c, criterion, no_new_vars=True)
        assert manager.support(cover) <= f_support


class TestSpecialCases:
    def test_full_care_returns_f(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a ^ b")
        for criterion, compl, nnv in ALL_PARAMS:
            assert generic_td(manager, f, ONE, criterion, compl, nnv) == f

    def test_empty_care_returns_one(self):
        manager = Manager(["a"])
        f = manager.var(0)
        for criterion, compl, nnv in ALL_PARAMS:
            assert generic_td(manager, f, ZERO, criterion, compl, nnv) == ONE

    def test_care_within_onset_gives_constant_one(self):
        """§3.1: when 0 ≠ c ≤ f, all algorithms return the 1 function."""
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a | b")
        c = parse_expression(manager, "a & b")
        for criterion, compl, nnv in ALL_PARAMS:
            assert generic_td(manager, f, c, criterion, compl, nnv) == ONE

    def test_care_within_offset_gives_constant_zero(self):
        """§3.1: when c ≤ ¬f, the 0 function is returned."""
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a & b")
        c = parse_expression(manager, "~a & ~b")
        for criterion, compl, nnv in ALL_PARAMS:
            assert generic_td(manager, f, c, criterion, compl, nnv) == ZERO

    def test_constant_f_returned_as_is(self):
        manager = Manager(["a"])
        c = manager.var(0)
        for criterion, compl, nnv in ALL_PARAMS:
            assert generic_td(manager, ONE, c, criterion, compl, nnv) == ONE
            assert generic_td(manager, ZERO, c, criterion, compl, nnv) == ZERO


class TestComplementMatching:
    def test_complement_match_finds_xor_structure(self):
        """[f, c] where the care points force f = a ⊕ b: complement
        matching recognizes the then/else branches as complements."""
        manager = Manager()
        spec = parse_instance(manager, "01 10")
        with_compl = generic_td(
            manager, spec.f, spec.c, Criterion.OSM, match_complement=True
        )
        assert ISpec(manager, spec.f, spec.c).is_cover(with_compl)

    def test_complement_flag_never_hurts_validity(self):
        manager = Manager()
        spec = parse_instance(manager, "1d d0 0d d1")
        for criterion in Criterion:
            cover = generic_td(
                manager, spec.f, spec.c, criterion, match_complement=True
            )
            assert spec.is_cover(cover)


class TestAgainstTextbookOperators:
    """The generic algorithm specializes exactly to constrain/restrict."""

    @given(instance_strategy(4, nonzero_care=True))
    @settings(max_examples=60)
    def test_generic_osdm_equals_classic_constrain(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        assert generic_td(manager, f, c, Criterion.OSDM) == constrain(
            manager, f, c
        )

    @given(instance_strategy(4, nonzero_care=True))
    @settings(max_examples=60)
    def test_generic_osdm_nnv_equals_classic_restrict(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        assert generic_td(
            manager, f, c, Criterion.OSDM, no_new_vars=True
        ) == restrict(manager, f, c)

    def test_constrain_is_shannon_cofactor_on_cube(self):
        """Touati et al.: constrain(f, cube) = f restricted by the cube."""
        manager = Manager(["a", "b", "c"])
        f = parse_expression(manager, "(a & b) | (~a & c)")
        cube = parse_expression(manager, "a & ~b")
        got = constrain(manager, f, cube)
        expected = manager.restrict_cube(f, {0: True, 1: False})
        assert got == expected


class TestTable2Heuristics:
    def test_names_and_parameters(self):
        by_name = {heuristic.name: heuristic for heuristic in TABLE2_HEURISTICS}
        assert by_name["constrain"].criterion is Criterion.OSDM
        assert not by_name["constrain"].match_complement
        assert not by_name["constrain"].no_new_vars
        assert by_name["restrict"].no_new_vars
        assert by_name["osm_bt"].match_complement
        assert by_name["osm_bt"].no_new_vars
        assert by_name["tsm_cp"].match_complement

    def test_callable_protocol(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01")
        for heuristic in TABLE2_HEURISTICS:
            cover = heuristic(manager, spec.f, spec.c)
            assert spec.is_cover(cover)
