"""Tests for the §5 'robust' combination heuristic."""

from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.ispec import ISpec, parse_instance
from repro.core.registry import HEURISTICS

from tests.conftest import instance_strategy, build_instance


@given(instance_strategy(4, nonzero_care=True))
@settings(max_examples=30)
def test_robust_returns_cover_never_larger(instance):
    manager = Manager()
    f, c = build_instance(manager, *instance)
    spec = ISpec(manager, f, c)
    cover = HEURISTICS["robust"](manager, f, c)
    assert spec.is_cover(cover)
    assert manager.size(cover) <= manager.size(f)


def test_dispatch_dense_uses_level_matching():
    """On a dense care set robust must match opt_lv's choice class."""
    manager = Manager()
    # Care everywhere except one point: dense.
    spec = parse_instance(manager, "d1 01 11 01")
    robust = HEURISTICS["robust"](manager, spec.f, spec.c)
    assert spec.is_cover(robust)


def test_dispatch_sparse_uses_sibling_matching():
    manager = Manager()
    # Mostly don't care: sparse onset.
    spec = parse_instance(manager, "d1 dd dd dd")
    robust = HEURISTICS["robust"](manager, spec.f, spec.c)
    osm_bt = HEURISTICS["osm_bt"](manager, spec.f, spec.c)
    assert manager.size(robust) <= manager.size(osm_bt)


def test_empty_care():
    manager = Manager(["a"])
    cover = HEURISTICS["robust"](manager, manager.var(0), ZERO)
    assert manager.is_constant(cover)
