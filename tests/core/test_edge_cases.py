"""Edge cases and less-traveled branches across the core modules."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO, TERMINAL_LEVEL
from repro.bdd.parser import parse_expression
from repro.core.criteria import Criterion, try_match
from repro.core.ispec import ISpec, parse_instance
from repro.core.levels import gather_at_level, minimize_at_level, opt_lv
from repro.core.matching_graph import UndirectedMatchingGraph
from repro.core.schedule import Schedule, scheduled_minimize
from repro.core.sibling import generic_td, sibling_pass


class TestIspecEdges:
    def test_repr(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01")
        assert "|f|" in repr(spec)

    def test_constant_specs(self):
        manager = Manager(["a"])
        spec = ISpec(manager, ONE, ONE)
        assert spec.is_cover(ONE)
        assert not spec.is_cover(ZERO)
        assert spec.is_trivial()  # c <= f

    def test_onset_fraction_of_constants(self):
        manager = Manager()  # no variables at all
        assert ISpec(manager, ONE, ONE).c_onset_fraction() == 1.0
        assert ISpec(manager, ONE, ZERO).c_onset_fraction() == 0.0


class TestCriteriaEdges:
    def test_try_match_complemented_tsm(self):
        manager = Manager(["a"])
        a = manager.var(0)
        # [a, 1] vs complement of [~a, 1]: complement makes them equal.
        got = try_match(
            Criterion.TSM, manager, a, ONE, a ^ 1, ONE, complemented=True
        )
        assert got is not None
        g, cg = got
        assert manager.and_(manager.xor(g, a), cg) == ZERO

    def test_try_match_failure(self):
        manager = Manager(["a"])
        a = manager.var(0)
        assert (
            try_match(Criterion.OSM, manager, a, ONE, a ^ 1, ONE) is None
        )


class TestSiblingEdges:
    def test_generic_td_deep_chain(self):
        """A long conjunction exercises deep recursion safely."""
        manager = Manager()
        manager.ensure_vars(200)
        f = manager.and_many(manager.var(level) for level in range(200))
        care = manager.var(0)
        cover = generic_td(manager, f, care, Criterion.OSM, no_new_vars=True)
        assert ISpec(manager, f, care).is_cover(cover)

    def test_sibling_pass_constant_care(self):
        manager = Manager(["a"])
        a = manager.var(0)
        assert sibling_pass(manager, a, ONE, Criterion.TSM) == (a, ONE)
        assert sibling_pass(manager, a, ZERO, Criterion.TSM) == (a, ZERO)

    def test_sibling_pass_window_beyond_support(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01")
        pair = sibling_pass(
            manager, spec.f, spec.c, Criterion.OSM, lo=10, hi=20
        )
        assert pair == (spec.f, spec.c)


class TestLevelsEdges:
    def test_gather_beyond_depth_returns_constant_pairs(self):
        """A boundary below the whole BDD gathers only terminal pairs."""
        manager = Manager()
        spec = parse_instance(manager, "d1 01")
        pairs, paths = gather_at_level(manager, spec.f, spec.c, 99)
        for f_sub, c_sub in pairs:
            assert manager.is_constant(f_sub)
            assert manager.is_constant(c_sub)
        for path in paths.values():
            assert len(path) == 99

    def test_minimize_at_level_single_candidate(self):
        manager = Manager(["a"])
        a = manager.var(0)
        # Only one pair below the boundary: nothing to match.
        assert minimize_at_level(manager, a, ONE, 5) == (a, ONE)

    def test_minimize_at_level_batch_of_one(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01 1d 01")
        new_f, new_c = minimize_at_level(
            manager, spec.f, spec.c, 1, batch_size=1
        )
        # Batches of one cannot match anything across batches.
        assert ISpec(manager, new_f, new_c).i_covers(spec)

    def test_opt_lv_constant_functions(self):
        manager = Manager(["a"])
        assert opt_lv(manager, ONE, ONE) == ONE
        assert opt_lv(manager, ZERO, ONE) == ZERO

    def test_empty_umg(self):
        manager = Manager()
        graph = UndirectedMatchingGraph(manager, [])
        assert graph.clique_cover() == []


class TestScheduleEdges:
    def test_schedule_on_deep_function(self):
        manager = Manager()
        manager.ensure_vars(12)
        f = manager.and_many(manager.var(level) for level in range(12))
        care = manager.or_(manager.var(0), manager.var(5))
        cover = scheduled_minimize(
            manager, f, care, Schedule(window_size=3, stop_top_down=2)
        )
        assert ISpec(manager, f, care).is_cover(cover)

    def test_schedule_batch_size_path(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01 1d 01")
        cover = scheduled_minimize(
            manager, spec.f, spec.c, Schedule(batch_size=2)
        )
        assert spec.is_cover(cover)

    def test_window_size_one_many_windows(self):
        manager = Manager()
        spec = parse_instance(manager, "1d d1 d0 0d 01 11 d1 0d")
        cover = scheduled_minimize(
            manager, spec.f, spec.c, Schedule(window_size=1, stop_top_down=0)
        )
        assert spec.is_cover(cover)
