"""Exhaustive correctness sweep: every 2-variable instance.

There are 16 × 16 = 256 incompletely specified functions over two
variables.  For every one of them and every registered heuristic we
check the full contract: the result is a cover, never beats the exact
optimum, and the documented special cases hold.  This is a complete
enumeration, not a sample — if a heuristic mishandles any 2-variable
corner, this fails.
"""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.truthtable import bdd_from_leaves
from repro.core.exact import exact_minimum_size
from repro.core.ispec import ISpec
from repro.core.lower_bound import cube_lower_bound
from repro.core.registry import HEURISTICS
from repro.core.sibling import TABLE2_HEURISTICS


def _all_instances():
    manager = Manager()
    manager.ensure_vars(2)
    tables = []
    for mask in range(16):
        tables.append(
            bdd_from_leaves(manager, [bool((mask >> k) & 1) for k in range(4)])
        )
    instances = []
    for f in tables:
        for c in tables:
            instances.append((manager, f, c))
    return instances


ALL_INSTANCES = _all_instances()


def test_instance_count():
    assert len(ALL_INSTANCES) == 256


@pytest.mark.parametrize("name", sorted(HEURISTICS))
def test_heuristic_exhaustive_two_vars(name):
    heuristic = HEURISTICS[name]
    for manager, f, c in ALL_INSTANCES:
        cover = heuristic(manager, f, c)
        spec = ISpec(manager, f, c)
        if c == ZERO:
            # Degenerate: everything covers; result must be constant-ish
            # small, and trivially a cover.
            assert spec.is_cover(cover)
            continue
        assert spec.is_cover(cover), (name, f, c)


def test_exact_and_bound_exhaustive():
    for manager, f, c in ALL_INSTANCES:
        if c == ZERO:
            continue
        optimum = exact_minimum_size(manager, f, c)
        bound = cube_lower_bound(manager, f, c)
        assert bound <= optimum
        for heuristic in TABLE2_HEURISTICS:
            size = manager.size(heuristic(manager, f, c))
            assert size >= optimum, heuristic.name


def test_special_cases_exhaustive():
    """§3.1's closed forms on every applicable instance."""
    for manager, f, c in ALL_INSTANCES:
        if c == ZERO:
            continue
        for heuristic in TABLE2_HEURISTICS:
            cover = heuristic(manager, f, c)
            if manager.leq(c, f):
                assert cover == ONE, heuristic.name
            elif manager.leq(c, f ^ 1):
                assert cover == ZERO, heuristic.name


def test_cube_care_optimality_exhaustive():
    """Theorem 7 over every instance whose care set is a cube."""
    for manager, f, c in ALL_INSTANCES:
        if c == ZERO or not manager.is_cube(c):
            continue
        optimum = exact_minimum_size(manager, f, c)
        for heuristic in TABLE2_HEURISTICS:
            size = manager.size(heuristic(manager, f, c))
            assert size == optimum, (heuristic.name, f, c)
