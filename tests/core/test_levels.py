"""Tests for level minimization: gathering, rebuild, opt_lv."""

from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.core.criteria import Criterion
from repro.core.ispec import ISpec, parse_instance
from repro.core.levels import (
    gather_at_level,
    minimize_at_level,
    opt_lv,
    rebuild_with_replacements,
)

from tests.conftest import instance_strategy, build_instance


class TestGather:
    def test_root_pair_at_boundary_zero(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01 1d 01")
        pairs, paths = gather_at_level(manager, spec.f, spec.c, 0)
        assert pairs == [(spec.f, spec.c)]
        assert paths[(spec.f, spec.c)] == ()

    def test_boundary_one_gathers_cofactor_pairs(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01 1d 01")
        pairs, paths = gather_at_level(manager, spec.f, spec.c, 1)
        for f_sub, c_sub in pairs:
            assert manager.level(f_sub) >= 1
            assert manager.level(c_sub) >= 1
        # Paths are single entries: 0 (else) or 1 (then).
        for path in paths.values():
            assert len(path) == 1

    def test_gathered_pairs_unique(self):
        manager = Manager()
        spec = parse_instance(manager, "01 01 01 01")
        pairs, _ = gather_at_level(manager, spec.f, spec.c, 2)
        assert len(pairs) == len(set(pairs))

    def test_only_boundary_rooted_filter(self):
        manager = Manager(["a", "b", "c"])
        f = parse_expression(manager, "(a & b) | c")
        c = ONE
        pairs, _ = gather_at_level(manager, f, c, 1, only_boundary_rooted=True)
        for f_sub, _ in pairs:
            assert manager.level(f_sub) == 1

    def test_constants_gathered_at_deep_boundary(self):
        manager = Manager(["a"])
        f = manager.var(0)
        pairs, _ = gather_at_level(manager, f, ONE, 1)
        assert (ONE, ONE) in pairs
        assert (ZERO, ONE) in pairs


class TestRebuild:
    def test_identity_rebuild(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 01 1d 01")
        rebuilt = rebuild_with_replacements(manager, spec.f, spec.c, 1, {})
        assert rebuilt == (spec.f, spec.c)

    def test_replacement_applied(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        f = manager.ite(a, b, b ^ 1)
        # Replace the then-branch pair (b, ONE) with (ONE, ONE).
        rebuilt_f, rebuilt_c = rebuild_with_replacements(
            manager, f, ONE, 1, {(b, ONE): (ONE, ONE)}
        )
        assert rebuilt_f == manager.ite(a, ONE, b ^ 1)
        assert rebuilt_c == ONE


class TestMinimizeAtLevel:
    @given(instance_strategy(4, nonzero_care=True))
    @settings(max_examples=30)
    def test_result_i_covers_input(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        original = ISpec(manager, f, c)
        for boundary in range(1, 5):
            for criterion in Criterion:
                new_f, new_c = minimize_at_level(
                    manager, f, c, boundary, criterion=criterion
                )
                assert ISpec(manager, new_f, new_c).i_covers(original)

    @given(instance_strategy(3, nonzero_care=True))
    @settings(max_examples=30)
    def test_batching_preserves_validity(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        original = ISpec(manager, f, c)
        new_f, new_c = minimize_at_level(
            manager, f, c, 2, criterion=Criterion.TSM, batch_size=2
        )
        assert ISpec(manager, new_f, new_c).i_covers(original)

    def test_merging_happens(self):
        """Two level-1 subfunctions that agree on care points merge."""
        manager = Manager()
        # f = (01 0d): cofactors x2 and "0 or d"; with tsm at level 1
        # the pair [(0d)] can match [01] -> both become x2-like.
        spec = parse_instance(manager, "01 0d")
        new_f, new_c = minimize_at_level(
            manager, spec.f, spec.c, 1, criterion=Criterion.TSM
        )
        assert ISpec(manager, new_f, new_c).i_covers(spec)
        assert manager.size(new_f) <= manager.size(spec.f)


class TestOptLv:
    @given(instance_strategy(4, nonzero_care=True))
    @settings(max_examples=25)
    def test_returns_cover(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        cover = opt_lv(manager, f, c)
        assert ISpec(manager, f, c).is_cover(cover)

    def test_empty_care(self):
        manager = Manager(["a"])
        assert opt_lv(manager, manager.var(0), ZERO) == ONE

    def test_constant_input(self):
        manager = Manager(["a"])
        assert opt_lv(manager, ONE, manager.var(0)) == ONE

    def test_reduces_redundant_structure(self):
        """opt_lv collapses shareable subfunctions across the level."""
        manager = Manager()
        # f distinguishes branches only on don't-care points.
        spec = parse_instance(manager, "01 0d 01 d1")
        cover = opt_lv(manager, spec.f, spec.c)
        assert ISpec(manager, spec.f, spec.c).is_cover(cover)
        assert manager.size(cover) <= manager.size(spec.f)

    @given(instance_strategy(4, nonzero_care=True))
    @settings(max_examples=15)
    def test_osm_variant_also_covers(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        cover = opt_lv(manager, f, c, criterion=Criterion.OSM)
        assert ISpec(manager, f, c).is_cover(cover)

    @given(instance_strategy(3, nonzero_care=True))
    @settings(max_examples=15)
    def test_ablation_flags_preserve_validity(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        for degree in (False, True):
            for weights in (False, True):
                cover = opt_lv(
                    manager,
                    f,
                    c,
                    order_by_degree=degree,
                    use_distance_weights=weights,
                )
                assert ISpec(manager, f, c).is_cover(cover)
