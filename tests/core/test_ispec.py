"""Tests for incompletely specified functions and their relations."""

import pytest
from hypothesis import given

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.core.ispec import ISpec, parse_instance

from tests.conftest import instance_strategy, build_instance


class TestSets:
    def test_onset_offset_dc_partition(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a")
        c = parse_expression(manager, "b")
        spec = ISpec(manager, f, c)
        assert spec.onset() == parse_expression(manager, "a & b")
        assert spec.offset() == parse_expression(manager, "~a & b")
        assert spec.dcset() == parse_expression(manager, "~b")
        union = manager.or_many([spec.onset(), spec.offset(), spec.dcset()])
        assert union == ONE

    def test_interval(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a")
        c = parse_expression(manager, "b")
        spec = ISpec(manager, f, c)
        lower, upper = spec.interval()
        assert lower == parse_expression(manager, "a & b")
        assert upper == parse_expression(manager, "a | ~b")


class TestCover:
    def test_f_is_always_a_cover(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 0d 11 d0")
        assert spec.is_cover(spec.f)

    def test_bounds_are_covers(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 0d 11 d0")
        assert spec.is_cover(spec.onset())
        assert spec.is_cover(spec.upper())

    def test_non_cover_detected(self):
        manager = Manager()
        spec = parse_instance(manager, "11 dd")
        assert not spec.is_cover(ZERO)

    def test_everything_covers_empty_care(self):
        manager = Manager(["a"])
        spec = ISpec(manager, manager.var(0), ZERO)
        assert spec.is_cover(ONE)
        assert spec.is_cover(ZERO)
        assert spec.is_cover(manager.var(0) ^ 1)


class TestICover:
    def test_icover_requires_care_containment(self):
        manager = Manager()
        narrow = parse_instance(manager, "d1 01")  # care on 3 leaves
        manager2 = Manager()
        # Use the same manager for a fair comparison.
        wide = parse_instance(manager, "11 01")  # care everywhere
        assert wide.i_covers(narrow)
        assert not narrow.i_covers(wide)

    def test_icover_requires_agreement(self):
        manager = Manager()
        first = parse_instance(manager, "11 dd")
        second = parse_instance(manager, "00 dd")
        assert not first.i_covers(second)

    def test_icover_reflexive(self):
        manager = Manager()
        spec = parse_instance(manager, "d1 0d")
        assert spec.i_covers(spec)

    def test_equivalent(self):
        manager = Manager()
        first = parse_instance(manager, "d1 01")
        # Same care set/values but different representative f.
        from repro.bdd.truthtable import bdd_from_leaves

        other_f = bdd_from_leaves(manager, [True, True, False, True])
        second = ISpec(manager, other_f, first.c)
        assert first.equivalent(second)
        assert first.i_covers(second) and second.i_covers(first)


class TestTrivial:
    def test_cube_care_is_trivial(self):
        manager = Manager(["a", "b"])
        spec = ISpec(
            manager,
            parse_expression(manager, "a ^ b"),
            parse_expression(manager, "a & ~b"),
        )
        assert spec.is_trivial()

    def test_care_below_f_is_trivial(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a | b")
        c = parse_expression(manager, "a ^ b")  # c <= f
        assert ISpec(manager, f, c).is_trivial()

    def test_care_below_not_f_is_trivial(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a & b")
        c = parse_expression(manager, "~a & ~b")
        assert ISpec(manager, f, c).is_trivial()

    def test_general_instance_not_trivial(self):
        manager = Manager()
        spec = parse_instance(manager, "1d d1 d0 0d")
        assert not spec.is_trivial()


class TestOnsetFraction:
    def test_extremes(self):
        manager = Manager(["a"])
        assert ISpec(manager, ONE, ONE).c_onset_fraction() == 1.0
        assert ISpec(manager, ONE, ZERO).c_onset_fraction() == 0.0

    def test_half(self):
        manager = Manager(["a", "b"])
        spec = ISpec(
            manager,
            parse_expression(manager, "a & b"),
            parse_expression(manager, "a"),
        )
        assert spec.c_onset_fraction() == pytest.approx(0.5)

    def test_fraction_independent_of_extra_vars(self):
        manager = Manager(["a", "b", "c", "d"])
        spec = ISpec(
            manager,
            parse_expression(manager, "a & b"),
            parse_expression(manager, "a"),
        )
        assert spec.c_onset_fraction() == pytest.approx(0.5)


class TestFromInterval:
    def test_interval_roundtrip(self):
        manager = Manager(["a", "b"])
        lower = parse_expression(manager, "a & b")
        upper = parse_expression(manager, "a | b")
        spec = ISpec.from_interval(manager, lower, upper)
        # Section 2: c = f_m + ¬f_M; covers are exactly the interval.
        assert spec.is_cover(lower)
        assert spec.is_cover(upper)
        assert spec.is_cover(manager.var(0))
        assert not spec.is_cover(ZERO)
        assert not spec.is_cover(ONE)

    def test_empty_interval_rejected(self):
        manager = Manager(["a", "b"])
        lower = parse_expression(manager, "a")
        upper = parse_expression(manager, "a & b")
        with pytest.raises(ValueError):
            ISpec.from_interval(manager, lower, upper)


@given(instance_strategy(3))
def test_cover_definition_pointwise(instance):
    """is_cover agrees with the pointwise Definition 2."""
    manager = Manager()
    f, c = build_instance(manager, *instance)
    spec = ISpec(manager, f, c)
    g = spec.onset()
    assert spec.is_cover(g)
    lower, upper = spec.interval()
    assert manager.leq(lower, g) and manager.leq(g, upper)
