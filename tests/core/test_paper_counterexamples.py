"""The paper's §3.2 counterexamples, quoted literally.

For each example the paper gives: the instance, the heuristic's result,
and a minimum solution — demonstrating non-optimality and that no
heuristic dominates another:

1. constrain: (d1 01) → (11 01); minimum (01 01).
2. osm_td:    (d1 01 1d 01) → (01 01 11 01); minimum (11 01 11 01).
3. tsm_td:    (1d d1 d0 0d) → (10 01 10 01); minimum (11 11 00 00).
"""

from repro.bdd.manager import Manager
from repro.bdd.truthtable import bdd_from_leaves, parse_leaf_string
from repro.core.criteria import Criterion
from repro.core.exact import exact_minimum_size
from repro.core.ispec import parse_instance
from repro.core.sibling import generic_td


def _completely_specified(manager, text):
    leaves = [char == "1" for char in parse_leaf_string(text)]
    return bdd_from_leaves(manager, leaves)


def _run(text, criterion, **flags):
    manager = Manager()
    spec = parse_instance(manager, text)
    result = generic_td(manager, spec.f, spec.c, criterion, **flags)
    return manager, spec, result


class TestExample1Constrain:
    def test_constrain_returns_paper_result(self):
        manager, spec, result = _run("d1 01", Criterion.OSDM)
        assert result == _completely_specified(manager, "11 01")

    def test_paper_minimum_is_smaller(self):
        manager, spec, result = _run("d1 01", Criterion.OSDM)
        minimum = _completely_specified(manager, "01 01")
        assert spec.is_cover(minimum)
        assert manager.size(minimum) < manager.size(result)
        assert manager.size(minimum) == exact_minimum_size(
            manager, spec.f, spec.c
        )

    def test_other_heuristics_find_minimum_here(self):
        """§3.2: both osm_td and tsm_td find a minimum in example 1."""
        for criterion in (Criterion.OSM, Criterion.TSM):
            manager, spec, result = _run("d1 01", criterion)
            assert manager.size(result) == 2  # x2 plus terminal


class TestExample2OsmTd:
    INSTANCE = "d1 01 1d 01"

    def test_osm_td_returns_paper_result(self):
        manager, spec, result = _run(self.INSTANCE, Criterion.OSM)
        assert result == _completely_specified(manager, "01 01 11 01")

    def test_paper_minimum_is_smaller(self):
        manager, spec, result = _run(self.INSTANCE, Criterion.OSM)
        minimum = _completely_specified(manager, "11 01 11 01")
        assert spec.is_cover(minimum)
        assert manager.size(minimum) < manager.size(result)

    def test_constrain_and_tsm_find_minimum_here(self):
        """§3.2: constrain and tsm_td find a minimum in example 2."""
        manager, spec, _ = _run(self.INSTANCE, Criterion.OSM)
        minimum_size = exact_minimum_size(manager, spec.f, spec.c)
        for criterion in (Criterion.OSDM, Criterion.TSM):
            result = generic_td(manager, spec.f, spec.c, criterion)
            assert manager.size(result) == minimum_size


class TestExample3TsmTd:
    INSTANCE = "1d d1 d0 0d"

    def test_tsm_td_returns_paper_result(self):
        manager, spec, result = _run(self.INSTANCE, Criterion.TSM)
        assert result == _completely_specified(manager, "10 01 10 01")

    def test_paper_minimum_is_smaller(self):
        manager, spec, result = _run(self.INSTANCE, Criterion.TSM)
        minimum = _completely_specified(manager, "11 11 00 00")
        assert spec.is_cover(minimum)
        assert manager.size(minimum) < manager.size(result)
        assert manager.size(minimum) == exact_minimum_size(
            manager, spec.f, spec.c
        )

    def test_constrain_and_osm_find_minimum_here(self):
        """§3.2: constrain and osm_td find a minimum in example 3."""
        manager, spec, _ = _run(self.INSTANCE, Criterion.TSM)
        minimum_size = exact_minimum_size(manager, spec.f, spec.c)
        for criterion in (Criterion.OSDM, Criterion.OSM):
            result = generic_td(manager, spec.f, spec.c, criterion)
            assert manager.size(result) == minimum_size


class TestNoDominance:
    """No heuristic is always better than another (§3.2)."""

    def test_each_criterion_wins_somewhere(self):
        wins = {Criterion.OSDM: 0, Criterion.OSM: 0, Criterion.TSM: 0}
        for text in ("d1 01", "d1 01 1d 01", "1d d1 d0 0d"):
            manager = Manager()
            spec = parse_instance(manager, text)
            sizes = {
                criterion: manager.size(
                    generic_td(manager, spec.f, spec.c, criterion)
                )
                for criterion in Criterion
            }
            best = min(sizes.values())
            for criterion, size in sizes.items():
                if size == best:
                    wins[criterion] += 1
        # Every criterion is optimal on some example but not all three.
        for criterion, count in wins.items():
            assert 0 < count < 3, (criterion, wins)
