"""Table 1: relational properties of the matching criteria.

osdm: not reflexive, not symmetric, transitive.
osm:  reflexive, not symmetric, transitive.
tsm:  reflexive, symmetric, not transitive.

Plus the strength hierarchy (osdm ⇒ osm ⇒ tsm) and the correctness of
the produced i-covers.
"""

from hypothesis import given, settings, strategies as st

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.criteria import (
    Criterion,
    i_cover_of_match,
    matches,
    osdm_matches,
    osm_matches,
    tsm_matches,
    try_match,
)
from repro.core.ispec import ISpec

from tests.conftest import instance_strategy, build_instance

NUM_VARS = 3

pair_of_instances = st.tuples(instance_strategy(NUM_VARS), instance_strategy(NUM_VARS))
triple_of_instances = st.tuples(
    instance_strategy(NUM_VARS),
    instance_strategy(NUM_VARS),
    instance_strategy(NUM_VARS),
)


# ----------------------------------------------------------------------
# Hierarchy: osdm match ⇒ osm match ⇒ tsm match
# ----------------------------------------------------------------------
@given(pair_of_instances)
def test_strength_hierarchy(instances):
    manager = Manager()
    f1, c1 = build_instance(manager, *instances[0])
    f2, c2 = build_instance(manager, *instances[1])
    if osdm_matches(manager, f1, c1, f2, c2):
        assert osm_matches(manager, f1, c1, f2, c2)
    if osm_matches(manager, f1, c1, f2, c2):
        assert tsm_matches(manager, f1, c1, f2, c2)


# ----------------------------------------------------------------------
# Reflexivity
# ----------------------------------------------------------------------
@given(instance_strategy(NUM_VARS))
def test_osm_and_tsm_reflexive(instance):
    manager = Manager()
    f, c = build_instance(manager, *instance)
    assert osm_matches(manager, f, c, f, c)
    assert tsm_matches(manager, f, c, f, c)


def test_osdm_not_reflexive():
    manager = Manager(["a"])
    a = manager.var(0)
    assert not osdm_matches(manager, a, ONE, a, ONE)
    # Only a fully-don't-care function matches itself under osdm.
    assert osdm_matches(manager, a, ZERO, a, ZERO)


# ----------------------------------------------------------------------
# Symmetry
# ----------------------------------------------------------------------
def test_osdm_not_symmetric():
    manager = Manager(["a"])
    a = manager.var(0)
    assert osdm_matches(manager, a, ZERO, a, ONE)
    assert not osdm_matches(manager, a, ONE, a, ZERO)


def test_osm_not_symmetric():
    manager = Manager(["a"])
    a = manager.var(0)
    # [a, a] osm [a, 1]: agrees on c1 = a, and c1 <= c2 = 1.
    assert osm_matches(manager, a, a, a, ONE)
    assert not osm_matches(manager, a, ONE, a, a)


@given(pair_of_instances)
def test_tsm_symmetric(instances):
    manager = Manager()
    f1, c1 = build_instance(manager, *instances[0])
    f2, c2 = build_instance(manager, *instances[1])
    assert tsm_matches(manager, f1, c1, f2, c2) == tsm_matches(
        manager, f2, c2, f1, c1
    )


# ----------------------------------------------------------------------
# Transitivity
# ----------------------------------------------------------------------
@given(triple_of_instances)
@settings(max_examples=60)
def test_osdm_transitive(instances):
    manager = Manager()
    pairs = [build_instance(manager, *inst) for inst in instances]
    (f1, c1), (f2, c2), (f3, c3) = pairs
    if osdm_matches(manager, f1, c1, f2, c2) and osdm_matches(
        manager, f2, c2, f3, c3
    ):
        assert osdm_matches(manager, f1, c1, f3, c3)


@given(triple_of_instances)
@settings(max_examples=60)
def test_osm_transitive(instances):
    manager = Manager()
    pairs = [build_instance(manager, *inst) for inst in instances]
    (f1, c1), (f2, c2), (f3, c3) = pairs
    if osm_matches(manager, f1, c1, f2, c2) and osm_matches(
        manager, f2, c2, f3, c3
    ):
        assert osm_matches(manager, f1, c1, f3, c3)


def test_tsm_not_transitive():
    """A concrete witness: both-match via disjoint cares fails to chain."""
    manager = Manager(["a"])
    a = manager.var(0)
    # [1, a] tsm [d, 0] and [d, 0] tsm [0, ¬a]: middle is all-DC.
    assert tsm_matches(manager, ONE, a, ZERO, ZERO)
    assert tsm_matches(manager, ZERO, ZERO, ZERO, a ^ 1)
    # But [1, a] and [0, ¬a] conflict nowhere... both cares disjoint, so
    # they actually *do* match; use overlapping cares instead.
    assert not tsm_matches(manager, ONE, ONE, ZERO, ONE)
    # Chain: [1,1] tsm [d,0] tsm [0,1] but NOT [1,1] tsm [0,1].
    assert tsm_matches(manager, ONE, ONE, ZERO, ZERO)
    assert tsm_matches(manager, ZERO, ZERO, ZERO, ONE)
    assert not tsm_matches(manager, ONE, ONE, ZERO, ONE)


# ----------------------------------------------------------------------
# i-cover production (Section 3.1.1)
# ----------------------------------------------------------------------
@given(pair_of_instances)
def test_produced_icover_covers_both(instances):
    """When a criterion matches, the produced i-cover i-covers both."""
    manager = Manager()
    f1, c1 = build_instance(manager, *instances[0])
    f2, c2 = build_instance(manager, *instances[1])
    for criterion in Criterion:
        if matches(criterion, manager, f1, c1, f2, c2):
            g, cg = i_cover_of_match(criterion, manager, f1, c1, f2, c2)
            common = ISpec(manager, g, cg)
            assert common.i_covers(ISpec(manager, f1, c1))
            assert common.i_covers(ISpec(manager, f2, c2))


@given(pair_of_instances)
def test_care_monotonically_grows(instances):
    """The i-cover's care set contains both inputs' care sets (§3.1)."""
    manager = Manager()
    f1, c1 = build_instance(manager, *instances[0])
    f2, c2 = build_instance(manager, *instances[1])
    for criterion in Criterion:
        if matches(criterion, manager, f1, c1, f2, c2):
            _, cg = i_cover_of_match(criterion, manager, f1, c1, f2, c2)
            assert manager.leq(c1, cg)
            assert manager.leq(c2, cg)


@given(pair_of_instances)
@settings(max_examples=60)
def test_try_match_result_valid(instances):
    """try_match (both directions, both polarities) yields true i-covers."""
    manager = Manager()
    f1, c1 = build_instance(manager, *instances[0])
    f2, c2 = build_instance(manager, *instances[1])
    for criterion in Criterion:
        plain = try_match(criterion, manager, f1, c1, f2, c2)
        if plain is not None:
            common = ISpec(manager, plain[0], plain[1])
            assert common.i_covers(ISpec(manager, f1, c1))
            assert common.i_covers(ISpec(manager, f2, c2))
        flipped = try_match(
            criterion, manager, f1, c1, f2, c2, complemented=True
        )
        if flipped is not None:
            common = ISpec(manager, flipped[0], flipped[1])
            assert common.i_covers(ISpec(manager, f1, c1))
            assert common.i_covers(ISpec(manager, f2 ^ 1, c2))


def test_osdm_tsm_produced_forms():
    """The literal i-cover forms from Section 3.1.1."""
    manager = Manager(["a", "b"])
    a, b = manager.var(0), manager.var(1)
    # osdm/osm: second function returned untouched.
    got = i_cover_of_match(Criterion.OSDM, manager, a, ZERO, b, ONE)
    assert got == (b, ONE)
    got = i_cover_of_match(Criterion.OSM, manager, b, b, b, ONE)
    assert got == (b, ONE)
    # tsm: [f1 c1 + f2 c2, c1 + c2].
    got = i_cover_of_match(Criterion.TSM, manager, a, b, ONE, b ^ 1)
    expected_f = manager.or_(manager.and_(a, b), b ^ 1)
    assert got == (expected_f, ONE)
