"""Tests for the heuristic registry and the public minimize() API."""

import pytest
from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE
from repro.core.ispec import ISpec
from repro.core.registry import (
    HEURISTICS,
    PAPER_HEURISTICS,
    get_heuristic,
    minimize,
)

from tests.conftest import instance_strategy, build_instance


def test_paper_names_all_registered():
    for name in PAPER_HEURISTICS:
        assert name in HEURISTICS


def test_paper_heuristic_count():
    """Twelve reported heuristics (min is computed by the harness)."""
    assert len(PAPER_HEURISTICS) == 12


def test_extension_scheduler_registered():
    assert "sched" in HEURISTICS


def test_unknown_name_raises_with_listing():
    with pytest.raises(KeyError) as excinfo:
        get_heuristic("nope")
    assert "constrain" in str(excinfo.value)


def test_f_orig_is_identity():
    manager = Manager(["a"])
    a = manager.var(0)
    assert HEURISTICS["f_orig"](manager, a, ONE) == a


def test_bounds_heuristics():
    manager = Manager(["a", "b"])
    a, b = manager.var(0), manager.var(1)
    assert HEURISTICS["f_and_c"](manager, a, b) == manager.and_(a, b)
    assert HEURISTICS["f_or_nc"](manager, a, b) == manager.or_(a, b ^ 1)


def test_minimize_default_is_osm_bt():
    manager = Manager()
    from repro.core.ispec import parse_instance

    spec = parse_instance(manager, "d1 01 1d 01")
    default = minimize(manager, spec.f, spec.c)
    explicit = minimize(manager, spec.f, spec.c, method="osm_bt")
    assert default == explicit


@given(instance_strategy(4, nonzero_care=True))
@settings(max_examples=20, deadline=None)
def test_every_registered_heuristic_returns_cover(instance):
    manager = Manager()
    f, c = build_instance(manager, *instance)
    spec = ISpec(manager, f, c)
    for name, heuristic in HEURISTICS.items():
        cover = heuristic(manager, f, c)
        assert spec.is_cover(cover), name
