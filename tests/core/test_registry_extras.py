"""Tests for safe_minimize, minimize_interval, and manager statistics."""

import pytest
from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.bdd.truthtable import bdd_from_leaves
from repro.core.ispec import ISpec
from repro.core.registry import minimize, minimize_interval, safe_minimize

from tests.conftest import instance_strategy, build_instance


class TestSafeMinimize:
    def test_never_larger_than_f(self):
        """The Proposition 6 instance where plain constrain grows."""
        manager = Manager()
        manager.ensure_vars(2)
        f_hat = bdd_from_leaves(manager, [False, True, False, True])
        care = bdd_from_leaves(manager, [False, True, True, True])
        plain = minimize(manager, f_hat, care, method="constrain")
        guarded = safe_minimize(manager, f_hat, care, method="constrain")
        assert manager.size(plain) > manager.size(f_hat)
        assert manager.size(guarded) <= manager.size(f_hat)
        assert guarded == f_hat

    @given(instance_strategy(4, nonzero_care=True))
    @settings(max_examples=25)
    def test_safe_results_are_covers(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        spec = ISpec(manager, f, c)
        for method in ("constrain", "restrict", "osm_bt", "tsm_td"):
            cover = safe_minimize(manager, f, c, method=method)
            assert spec.is_cover(cover)
            assert manager.size(cover) <= manager.size(f)


class TestMinimizeInterval:
    def test_result_within_interval(self):
        manager = Manager(["a", "b", "c"])
        lower = parse_expression(manager, "a & b & c")
        upper = parse_expression(manager, "a | b | c")
        g = minimize_interval(manager, lower, upper)
        assert manager.leq(lower, g)
        assert manager.leq(g, upper)
        assert manager.size(g) <= manager.size(lower)

    def test_wide_interval_gives_tiny_result(self):
        manager = Manager(["a", "b"])
        g = minimize_interval(manager, ZERO, ONE)
        assert manager.is_constant(g)

    def test_degenerate_interval_is_identity(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a ^ b")
        assert minimize_interval(manager, f, f) == f

    def test_empty_interval_rejected(self):
        manager = Manager(["a", "b"])
        lower = parse_expression(manager, "a")
        upper = parse_expression(manager, "a & b")
        with pytest.raises(ValueError):
            minimize_interval(manager, lower, upper)


class TestStatistics:
    def test_counters_present_and_consistent(self):
        manager = Manager(["a", "b"])
        manager.and_(manager.var(0), manager.var(1))
        stats = manager.statistics()
        assert stats["num_vars"] == 2
        assert stats["num_nodes"] == manager.num_nodes
        assert stats["unique_table"] == stats["num_nodes"] - 1  # no terminal
        assert stats["ite_cache"] >= 1

    def test_clear_caches_resets_cache_counters(self):
        manager = Manager(["a", "b"])
        manager.and_(manager.var(0), manager.var(1))
        manager.cofactor(manager.var(0), 0, True)
        manager.clear_caches()
        stats = manager.statistics()
        assert stats["ite_cache"] == 0
        assert stats["cache_cofactor"] == 0
