"""Optimality results: Theorem 7, Proposition 6, and exactness checks."""

from hypothesis import given, settings, strategies as st

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.criteria import Criterion
from repro.core.exact import exact_minimum_size
from repro.core.ispec import ISpec
from repro.core.sibling import TABLE2_HEURISTICS, constrain, generic_td
from repro.bdd.truthtable import bdd_from_leaves

from tests.conftest import leaves_strategy

NUM_VARS = 3


def cube_strategy(num_vars: int):
    """Random non-empty cubes as {level: value} dicts."""
    return st.dictionaries(
        st.integers(min_value=0, max_value=num_vars - 1),
        st.booleans(),
        max_size=num_vars,
    )


@given(leaves_strategy(NUM_VARS), cube_strategy(NUM_VARS))
@settings(max_examples=80)
def test_theorem7_constrain_optimal_on_cube_care(table, cube):
    """Theorem 7: constrain is a minimum solution when c is a cube."""
    manager = Manager()
    manager.ensure_vars(NUM_VARS)
    f = bdd_from_leaves(manager, table)
    c = manager.cube_ref(cube)
    result = constrain(manager, f, c)
    assert ISpec(manager, f, c).is_cover(result)
    assert manager.size(result) == exact_minimum_size(manager, f, c)


@given(leaves_strategy(NUM_VARS), cube_strategy(NUM_VARS))
@settings(max_examples=40)
def test_all_sibling_heuristics_optimal_on_cube_care(table, cube):
    """§3.2: 'In the special case where c is a cube, all the algorithms
    do find a minimum solution.'"""
    manager = Manager()
    manager.ensure_vars(NUM_VARS)
    f = bdd_from_leaves(manager, table)
    c = manager.cube_ref(cube)
    optimum = exact_minimum_size(manager, f, c)
    for heuristic in TABLE2_HEURISTICS:
        result = heuristic(manager, f, c)
        assert ISpec(manager, f, c).is_cover(result)
        assert manager.size(result) == optimum, heuristic.name


@given(leaves_strategy(NUM_VARS), cube_strategy(NUM_VARS))
@settings(max_examples=40)
def test_constrain_never_grows_on_cube_care(table, cube):
    """The key step of Theorem 7's proof: sizes never increase."""
    manager = Manager()
    manager.ensure_vars(NUM_VARS)
    f = bdd_from_leaves(manager, table)
    c = manager.cube_ref(cube)
    assert manager.size(constrain(manager, f, c)) <= manager.size(f)


@given(leaves_strategy(NUM_VARS), leaves_strategy(NUM_VARS))
@settings(max_examples=40)
def test_heuristics_never_beat_exact(table_f, table_c):
    """Sanity for the exact minimizer: no heuristic does better."""
    manager = Manager()
    f = bdd_from_leaves(manager, table_f)
    c = bdd_from_leaves(manager, table_c)
    if c == ZERO:
        return
    optimum = exact_minimum_size(manager, f, c)
    for heuristic in TABLE2_HEURISTICS:
        assert manager.size(heuristic(manager, f, c)) >= optimum


def test_proposition6_constrain_can_increase_size():
    """Prop. 6 construction: replant the minimum cover's values onto the
    care points; a non-optimal algorithm must then *increase* the size."""
    manager = Manager()
    manager.ensure_vars(2)
    # Example 1: constrain on (d1 01) returns (11 01), minimum is (01 01).
    # Build f̂ = the minimum cover (01 01) = x2 and keep the same care.
    f_hat = bdd_from_leaves(manager, [False, True, False, True])
    care = bdd_from_leaves(manager, [False, True, True, True])
    result = constrain(manager, f_hat, care)
    # constrain is insensitive to values on the DC point, so it returns
    # the same (11 01) — strictly larger than f̂ itself.
    assert manager.size(result) > manager.size(f_hat)


def test_in_practice_take_min_with_f():
    """The paper's remedy: compare with f and return the smaller."""
    manager = Manager()
    manager.ensure_vars(2)
    f_hat = bdd_from_leaves(manager, [False, True, False, True])
    care = bdd_from_leaves(manager, [False, True, True, True])
    result = constrain(manager, f_hat, care)
    guarded = result if manager.size(result) < manager.size(f_hat) else f_hat
    assert manager.size(guarded) <= manager.size(f_hat)
