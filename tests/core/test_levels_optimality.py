"""Theorem 12: osm level matching preserves the optimum below the level.

After osm matchings at level i produce [f', c'], there exists a cover g'
of [f', c'] with N_i(g') = N_i[f, c] — the minimum node count below the
level is unchanged.  We verify the checkable consequence with the exact
minimizer: min over covers of [f', c'] of nodes-below equals min over
covers of [f, c].
"""

from hypothesis import given, settings

from repro.bdd.manager import Manager
from repro.core.criteria import Criterion
from repro.core.exact import exact_minimum_below
from repro.core.ispec import ISpec
from repro.core.levels import minimize_at_level

from tests.conftest import instance_strategy, build_instance

NUM_VARS = 3


@given(instance_strategy(NUM_VARS, nonzero_care=True))
@settings(max_examples=25, deadline=None)
def test_theorem12_osm_preserves_optimum_below(instance):
    manager = Manager()
    f, c = build_instance(manager, *instance)
    for boundary in (1, 2):
        new_f, new_c = minimize_at_level(
            manager, f, c, boundary, criterion=Criterion.OSM
        )
        # nodes_below(ref, boundary - 1) counts nodes at levels >= boundary.
        before = exact_minimum_below(manager, f, c, boundary - 1)
        after = exact_minimum_below(manager, new_f, new_c, boundary - 1)
        assert after == before


@given(instance_strategy(NUM_VARS, nonzero_care=True))
@settings(max_examples=25, deadline=None)
def test_osdm_also_preserves_optimum_below(instance):
    """§3.3.2: Definition 9 / Prop 10 carry over to osdm."""
    manager = Manager()
    f, c = build_instance(manager, *instance)
    new_f, new_c = minimize_at_level(
        manager, f, c, 1, criterion=Criterion.OSDM
    )
    before = exact_minimum_below(manager, f, c, 0)
    after = exact_minimum_below(manager, new_f, new_c, 0)
    assert after == before


@given(instance_strategy(NUM_VARS, nonzero_care=True))
@settings(max_examples=25, deadline=None)
def test_tsm_can_only_lose_freedom_monotonically(instance):
    """tsm has no Theorem 12 guarantee, but i-covering still implies the
    optimum below the level can only grow (freedom shrinks)."""
    manager = Manager()
    f, c = build_instance(manager, *instance)
    new_f, new_c = minimize_at_level(manager, f, c, 1, criterion=Criterion.TSM)
    before = exact_minimum_below(manager, f, c, 0)
    after = exact_minimum_below(manager, new_f, new_c, 0)
    assert after >= before
