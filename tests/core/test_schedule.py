"""Tests for the windowed scheduler and the sibling_pass building block."""

import pytest
from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.criteria import Criterion
from repro.core.ispec import ISpec
from repro.core.schedule import Schedule, scheduled_minimize
from repro.core.sibling import sibling_pass

from tests.conftest import instance_strategy, build_instance


class TestSiblingPass:
    @given(instance_strategy(4, nonzero_care=True))
    @settings(max_examples=30)
    def test_full_window_result_i_covers(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        original = ISpec(manager, f, c)
        for criterion in Criterion:
            new_f, new_c = sibling_pass(manager, f, c, criterion)
            assert ISpec(manager, new_f, new_c).i_covers(original)

    @given(instance_strategy(4, nonzero_care=True))
    @settings(max_examples=30)
    def test_windowed_result_i_covers(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        original = ISpec(manager, f, c)
        for lo, hi in ((0, 2), (1, 3), (2, 4)):
            new_f, new_c = sibling_pass(
                manager,
                f,
                c,
                Criterion.TSM,
                match_complement=True,
                lo=lo,
                hi=hi,
            )
            assert ISpec(manager, new_f, new_c).i_covers(original)

    def test_empty_window_is_identity_on_specs(self):
        manager = Manager()
        from repro.core.ispec import parse_instance

        spec = parse_instance(manager, "d1 01 1d 01")
        new_f, new_c = sibling_pass(
            manager, spec.f, spec.c, Criterion.TSM, lo=0, hi=0
        )
        assert (new_f, new_c) == (spec.f, spec.c)

    @given(instance_strategy(3, nonzero_care=True))
    @settings(max_examples=20)
    def test_pass_never_shrinks_care(self, instance):
        """DC freedom monotonically decreases (care grows): §3.1."""
        manager = Manager()
        f, c = build_instance(manager, *instance)
        new_f, new_c = sibling_pass(manager, f, c, Criterion.TSM)
        assert manager.leq(c, new_c)


class TestSchedule:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Schedule(window_size=0)
        with pytest.raises(ValueError):
            Schedule(stop_top_down=-1)

    @given(instance_strategy(4, nonzero_care=True))
    @settings(max_examples=25, deadline=None)
    def test_result_is_cover(self, instance):
        manager = Manager()
        f, c = build_instance(manager, *instance)
        spec = ISpec(manager, f, c)
        for schedule in (
            Schedule(),
            Schedule(window_size=1, stop_top_down=0),
            Schedule(window_size=2, stop_top_down=2, use_level_steps=False),
            Schedule(window_size=3, stop_top_down=1, batch_size=4),
        ):
            cover = scheduled_minimize(manager, f, c, schedule)
            assert spec.is_cover(cover), schedule

    def test_empty_care(self):
        manager = Manager(["a"])
        assert scheduled_minimize(manager, manager.var(0), ZERO) == ONE

    def test_full_care_returns_f(self):
        manager = Manager(["a", "b"])
        f = manager.xor(manager.var(0), manager.var(1))
        assert scheduled_minimize(manager, f, ONE) == f

    def test_degenerates_to_constrain_with_large_stop(self):
        """With stop_top_down above the depth, only step 6 runs."""
        manager = Manager()
        from repro.core.ispec import parse_instance
        from repro.core.sibling import constrain

        spec = parse_instance(manager, "d1 01")
        schedule = Schedule(stop_top_down=100)
        got = scheduled_minimize(manager, spec.f, spec.c, schedule)
        assert got == constrain(manager, spec.f, spec.c)
