"""Tests for the Theorem 7-based cube lower bound (§4.1.1)."""

from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.core.exact import exact_minimum_size
from repro.core.lower_bound import cube_lower_bound
from repro.core.registry import HEURISTICS

from tests.conftest import instance_strategy, build_instance


@given(instance_strategy(3, nonzero_care=True))
@settings(max_examples=50)
def test_bound_never_exceeds_exact_minimum(instance):
    manager = Manager()
    f, c = build_instance(manager, *instance)
    bound = cube_lower_bound(manager, f, c)
    assert bound <= exact_minimum_size(manager, f, c)


@given(instance_strategy(4, nonzero_care=True))
@settings(max_examples=25)
def test_bound_never_exceeds_any_heuristic(instance):
    manager = Manager()
    f, c = build_instance(manager, *instance)
    bound = cube_lower_bound(manager, f, c)
    for name in ("constrain", "restrict", "osm_bt", "tsm_td", "opt_lv"):
        cover = HEURISTICS[name](manager, f, c)
        assert bound <= manager.size(cover), name


def test_full_care_bound_is_f_size():
    """c = 1 has the single (empty) cube; constrain(f, 1) = f."""
    manager = Manager(["a", "b"])
    f = parse_expression(manager, "a ^ b")
    assert cube_lower_bound(manager, f, ONE) == manager.size(f)


def test_empty_care_bound_is_one():
    manager = Manager(["a"])
    assert cube_lower_bound(manager, manager.var(0), ZERO) == 1


def test_bound_monotone_in_cube_limit():
    manager = Manager()
    from repro.core.ispec import parse_instance

    spec = parse_instance(manager, "1d d1 d0 0d 01 11 d1 0d")
    small = cube_lower_bound(manager, spec.f, spec.c, cube_limit=1)
    large = cube_lower_bound(manager, spec.f, spec.c, cube_limit=1000)
    assert small <= large


def test_bound_is_attainable_sometimes():
    """On a cube-care instance the bound equals the optimum (Theorem 7)."""
    manager = Manager(["a", "b", "c"])
    f = parse_expression(manager, "(a & b) | c")
    cube = parse_expression(manager, "a & ~b")
    bound = cube_lower_bound(manager, f, cube)
    assert bound == exact_minimum_size(manager, f, cube)
