"""Tests for DMG/UMG construction, FMM solving, and clique covering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.criteria import Criterion, osm_matches, tsm_matches
from repro.core.matching_graph import (
    DirectedMatchingGraph,
    UndirectedMatchingGraph,
    PATH_FREE,
    path_distance,
)
from repro.bdd.truthtable import bdd_from_leaves

from tests.conftest import instance_strategy, build_instance


class TestPathDistance:
    def test_siblings_have_distance_one(self):
        assert path_distance((0, 0, 1), (0, 0, 0)) == 1

    def test_paper_example(self):
        """§3.3.2: path g = 1000210, h = 1201111 → distance 9."""
        path_g = (1, 0, 0, 0, PATH_FREE, 1, 0)
        path_h = (1, PATH_FREE, 0, 1, 1, 1, 1)
        assert path_distance(path_g, path_h) == 9

    def test_free_positions_ignored(self):
        assert path_distance((PATH_FREE,), (1,)) == 0
        assert path_distance((0,), (PATH_FREE,)) == 0

    def test_symmetric(self):
        assert path_distance((1, 0), (0, 1)) == path_distance((0, 1), (1, 0))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            path_distance((1,), (1, 0))


class TestDMG:
    def _functions(self, manager):
        a = manager.var(0)
        return [
            (a, ZERO),       # all DC: matches everything under osm
            (a, a),          # cares only where a
            (a, ONE),        # fully specified
        ]

    def test_edges_follow_osm(self):
        manager = Manager(["a"])
        functions = self._functions(manager)
        graph = DirectedMatchingGraph(manager, functions, Criterion.OSM)
        # Vertex 0 matches 1 and 2; vertex 1 matches 2; 2 is a sink.
        assert graph.successors[0] == {1, 2}
        assert graph.successors[1] == {2}
        assert graph.successors[2] == set()

    def test_sinks_and_representatives(self):
        manager = Manager(["a"])
        functions = self._functions(manager)
        graph = DirectedMatchingGraph(manager, functions, Criterion.OSM)
        assert graph.sinks() == [2]
        mapping = graph.representative_map()
        assert mapping == {0: 2, 1: 2, 2: 2}

    def test_equivalent_ispecs_do_not_cycle(self):
        """Mutually osm-matching (equal) i-specs must stay acyclic."""
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        # Same care = a, same values on it, different representatives.
        first = (manager.and_(a, b), a)
        second = (manager.and_many([a, b]), a)
        third = (manager.or_(manager.and_(a, b), manager.and_(a ^ 1, b)), a)
        functions = [first, third]
        graph = DirectedMatchingGraph(manager, functions, Criterion.OSM)
        mapping = graph.representative_map()
        assert set(mapping.values()) <= set(range(len(functions)))
        # Exactly one representative for the equivalence class.
        assert len(set(mapping.values())) == 1

    def test_tsm_rejected(self):
        manager = Manager(["a"])
        with pytest.raises(ValueError):
            DirectedMatchingGraph(manager, [], Criterion.TSM)

    def test_proposition10_sink_count_is_fmm_optimum(self):
        """Prop 10: minimum FMM solution size = number of sinks.

        Verify on a brute-force instance: distinct constants cannot be
        matched to each other, all-DC functions match everything.
        """
        manager = Manager(["a"])
        functions = [
            (ONE, ONE),
            (ZERO, ONE),
            (manager.var(0), ZERO),
            (manager.var(0) ^ 1, ZERO),
        ]
        graph = DirectedMatchingGraph(manager, functions, Criterion.OSM)
        assert len(graph.sinks()) == 2


class TestUMG:
    def test_edges_follow_tsm(self):
        manager = Manager(["a"])
        a = manager.var(0)
        functions = [
            (ONE, a),        # 1 on a
            (a, ONE),        # a everywhere: agrees with ONE on a
            (ZERO, ONE),     # 0 everywhere: conflicts with both on a
        ]
        graph = UndirectedMatchingGraph(manager, functions)
        assert 1 in graph.neighbors[0]
        assert 0 in graph.neighbors[1]
        assert 2 not in graph.neighbors[0]
        assert 2 not in graph.neighbors[1]

    def test_clique_cover_is_partition_of_cliques(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        functions = [
            (ONE, a),
            (ONE, b),
            (ZERO, a ^ 1),
            (ZERO, b ^ 1),
        ]
        graph = UndirectedMatchingGraph(manager, functions)
        cliques = graph.clique_cover()
        seen = sorted(vertex for clique in cliques for vertex in clique)
        assert seen == list(range(len(functions)))
        for clique in cliques:
            assert graph.is_clique(clique)

    def test_degree_order_finds_big_clique(self):
        """The paper's first optimization: avoid burning a high-degree
        vertex inside a small clique."""
        manager = Manager(["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        # Functions 1..3 pairwise compatible (disjoint cares), function 0
        # compatible only with 1.
        functions = [
            (ZERO, manager.and_many([a, b, c ^ 1])),
            (ONE, manager.and_many([a, b ^ 1, c])),
            (ONE, manager.and_many([a ^ 1, b, c])),
            (ONE, manager.and_many([a ^ 1, b ^ 1, c])),
        ]
        # Make 0-1 compatible but 0-2, 0-3 incompatible: give 0 value 1
        # on an overlap? Simpler: verify both orderings produce valid
        # covers and degree ordering is no worse.
        graph = UndirectedMatchingGraph(manager, functions)
        with_order = graph.clique_cover(order_by_degree=True)
        without_order = graph.clique_cover(order_by_degree=False)
        assert len(with_order) <= len(without_order)

    def test_lemma14_cliques_have_common_cover(self):
        """Lemma 14: pairwise tsm ⇔ a common cover exists."""
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        functions = [
            (a, a),
            (ONE, manager.and_(a, b)),
            (a, b),
        ]
        graph = UndirectedMatchingGraph(manager, functions)
        for clique in graph.clique_cover():
            merged_c = manager.or_many(c for _, c in (functions[v] for v in clique))
            merged_f = manager.or_many(
                manager.and_(f, c) for f, c in (functions[v] for v in clique)
            )
            for vertex in clique:
                f_v, c_v = functions[vertex]
                agree = manager.and_(manager.xor(merged_f, f_v), c_v)
                assert agree == ZERO


@given(instance_strategy(3), instance_strategy(3), instance_strategy(3))
@settings(max_examples=30)
def test_random_clique_covers_valid(inst1, inst2, inst3):
    manager = Manager()
    functions = [
        build_instance(manager, *inst) for inst in (inst1, inst2, inst3)
    ]
    graph = UndirectedMatchingGraph(manager, functions)
    cliques = graph.clique_cover()
    seen = sorted(v for clique in cliques for v in clique)
    assert seen == [0, 1, 2]
    for clique in cliques:
        assert graph.is_clique(clique)
