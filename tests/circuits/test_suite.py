"""Tests for the benchmark suite registry."""

import pytest

from repro.bdd.manager import Manager
from repro.fsm.machine import compile_fsm
from repro.circuits.suite import (
    BENCHMARK_SUITE,
    EXTRA_MACHINES,
    QUICK_SUITE,
    benchmark_spec,
    suite_specs,
)


def test_paper_benchmark_names_present():
    expected = {
        "s344", "s386", "s510", "s641", "s820", "s953", "s1238",
        "s1488", "scf", "styr", "tbk", "mult16b", "cbp.32.4",
        "minmax5", "tlc",
    }
    assert expected == set(BENCHMARK_SUITE)


def test_quick_suite_is_subset():
    assert set(QUICK_SUITE) <= set(BENCHMARK_SUITE)


def test_every_suite_machine_compiles():
    for name, spec in suite_specs():
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        assert fsm.num_latches >= 2, name
        assert fsm.output_fns, name


def test_benchmark_spec_lookup():
    spec = benchmark_spec("tlc")
    assert spec.name == "tlc"
    extra = benchmark_spec("count4")
    assert extra.name == "count4"
    with pytest.raises(KeyError):
        benchmark_spec("s9999")


def test_suite_specs_subset():
    pairs = suite_specs(["tlc", "s386"])
    assert [name for name, _ in pairs] == ["tlc", "s386"]


def test_specs_are_deterministic():
    first = benchmark_spec("s344")
    second = benchmark_spec("s344")
    manager_a, manager_b = Manager(), Manager()
    assert (
        compile_fsm(manager_a, first).next_fns
        == compile_fsm(manager_b, second).next_fns
    )


def test_extra_machines_compile():
    for name in EXTRA_MACHINES:
        manager = Manager()
        compile_fsm(manager, benchmark_spec(name))
