"""Tests for the synthetic benchmark generators (behavioural checks)."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.machine import compile_fsm
from repro.fsm.reachability import reachable_states
from repro.circuits.generators import (
    carry_propagate_accumulator,
    counter,
    gray_counter,
    johnson_counter,
    lfsr,
    minmax_tracker,
    random_controller,
    round_robin_arbiter,
    serial_multiplier,
    shift_register,
    traffic_light_controller,
)


def simulate_outputs(spec, stimulus):
    manager = Manager()
    fsm = compile_fsm(manager, spec)
    return fsm.simulate(stimulus)


class TestCounter:
    def test_counts_and_rolls_over(self):
        trace = simulate_outputs(counter(2), [{"en": True}] * 5)
        rollovers = [step["rollover"] for step in trace]
        # Counter hits 11 on step 3 (states 00,01,10,11,00).
        assert rollovers == [False, False, False, True, False]

    def test_enable_gates_counting(self):
        trace = simulate_outputs(
            counter(2), [{"en": False}] * 4 + [{"en": True}] * 4
        )
        assert not any(step["rollover"] for step in trace[:4])

    def test_without_enable(self):
        spec = counter(2, with_enable=False)
        assert spec.inputs == ()
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        assert reachable_states(fsm).state_count(fsm) == 4


class TestGrayCounter:
    def test_single_bit_changes_per_step(self):
        manager = Manager()
        fsm = compile_fsm(manager, gray_counter(3))
        state = list(fsm.init_values)
        assignment = {}
        for level, value in zip(fsm.current_levels, state):
            assignment[level] = value
        previous = list(state)
        seen = {tuple(state)}
        for _ in range(7):
            assignment = {
                level: value
                for level, value in zip(fsm.current_levels, previous)
            }
            assignment[fsm.input_levels[0]] = True  # enable
            current = [
                manager.eval(next_fn, assignment) for next_fn in fsm.next_fns
            ]
            flips = sum(
                1 for before, after in zip(previous, current) if before != after
            )
            assert flips == 1
            seen.add(tuple(current))
            previous = current
        assert len(seen) == 8  # full Gray cycle


class TestShiftRegister:
    def test_serial_delay(self):
        stimulus = [{"sin": bit} for bit in (True, False, True, True, False, False)]
        trace = simulate_outputs(shift_register(3), stimulus)
        souts = [step["sout"] for step in trace]
        # Output is the input delayed by 3 cycles (zeros initially).
        assert souts[:3] == [False, False, False]
        assert souts[3:] == [True, False, True]


class TestLfsr:
    def test_period_is_maximal_for_4_bits(self):
        """Default taps (top two bits) give the maximal 15-cycle."""
        manager = Manager()
        fsm = compile_fsm(manager, lfsr(4))
        assert reachable_states(fsm).state_count(fsm) == 15

    def test_custom_taps(self):
        spec = lfsr(3, taps=(2, 0))
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        count = reachable_states(fsm).state_count(fsm)
        assert 1 <= count <= 7

    def test_scan_input(self):
        spec = lfsr(3, scan=True)
        assert spec.inputs == ("scan",)


class TestJohnson:
    def test_cycle_length(self):
        manager = Manager()
        fsm = compile_fsm(manager, johnson_counter(3))
        assert reachable_states(fsm).state_count(fsm) == 6


class TestTrafficLight:
    def test_exclusive_greens(self):
        """Highway and farm road are never green simultaneously."""
        manager = Manager()
        fsm = compile_fsm(manager, traffic_light_controller())
        result = reachable_states(fsm)
        both_green = manager.and_(
            fsm.output_fns["highway_go"], fsm.output_fns["farm_go"]
        )
        reachable_violation = manager.and_(result.reached, both_green)
        assert reachable_violation == ZERO

    def test_farm_eventually_served(self):
        """With a car always waiting, the farm light goes green."""
        manager = Manager()
        fsm = compile_fsm(manager, traffic_light_controller())
        trace = fsm.simulate([{"car": True}] * 30)
        assert any(step["farm_go"] for step in trace)


class TestMinMax:
    def test_tracks_extremes(self):
        spec = minmax_tracker(2)
        stimulus = []
        for value in (2, 1, 3, 0):
            stimulus.append(
                {"d0": bool(value & 1), "d1": bool(value & 2), "clear": False}
            )
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        fsm.simulate(stimulus)
        # After the trace, verify via explicit state stepping.
        state = dict(zip(fsm.current_levels, fsm.init_values))
        for step in stimulus:
            assignment = dict(state)
            for name, value in step.items():
                position = fsm.input_names.index(name)
                assignment[fsm.input_levels[position]] = value
            state = {
                level: manager.eval(fn, assignment)
                for level, fn in zip(fsm.current_levels, fsm.next_fns)
            }
        by_name = {
            name: state[level]
            for name, level in zip(fsm.latch_names, fsm.current_levels)
        }
        low = int(by_name["lo0"]) + 2 * int(by_name["lo1"])
        high = int(by_name["hi0"]) + 2 * int(by_name["hi1"])
        assert low == 0
        assert high == 3


class TestArithmetic:
    def test_accumulator_counts_modulo(self):
        spec = carry_propagate_accumulator(3, 2)
        stimulus = [
            {"d0": True, "d1": False, "clear": False} for _ in range(3)
        ]
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        state = dict(zip(fsm.current_levels, fsm.init_values))
        for step in stimulus:
            assignment = dict(state)
            for name, value in step.items():
                position = fsm.input_names.index(name)
                assignment[fsm.input_levels[position]] = value
            state = {
                level: manager.eval(fn, assignment)
                for level, fn in zip(fsm.current_levels, fsm.next_fns)
            }
        total = sum(
            (1 << index) * int(state[level])
            for index, level in enumerate(fsm.current_levels)
        )
        assert total == 3

    def test_multiplier_busy_clears(self):
        spec = serial_multiplier(2)
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        stimulus = [{"a0": True, "a1": False, "load": True}]
        stimulus += [{"a0": True, "a1": False, "load": False}] * 3
        trace = fsm.simulate(stimulus)
        # B loads 01, then shifts out: busy goes high then low.
        busy = [step["busy"] for step in trace]
        assert busy[1] is True
        assert busy[-1] is False


class TestArbiter:
    def test_one_grant_at_a_time(self):
        manager = Manager()
        fsm = compile_fsm(manager, round_robin_arbiter(3))
        result = reachable_states(fsm)
        grants = list(fsm.output_fns.values())
        for first in range(len(grants)):
            for second in range(first + 1, len(grants)):
                overlap = manager.and_many(
                    [result.reached, grants[first], grants[second]]
                )
                assert overlap == ZERO

    def test_token_rotates(self):
        manager = Manager()
        fsm = compile_fsm(manager, round_robin_arbiter(3))
        assert reachable_states(fsm).state_count(fsm) == 3


class TestRandomController:
    def test_deterministic_per_seed(self):
        first = random_controller(11, state_bits=4, input_bits=3)
        second = random_controller(11, state_bits=4, input_bits=3)
        manager_a, manager_b = Manager(), Manager()
        fsm_a = compile_fsm(manager_a, first)
        fsm_b = compile_fsm(manager_b, second)
        assert fsm_a.next_fns == fsm_b.next_fns
        assert fsm_a.init_values == fsm_b.init_values

    def test_different_seeds_differ(self):
        first = random_controller(1, state_bits=4, input_bits=3)
        second = random_controller(2, state_bits=4, input_bits=3)
        manager_a, manager_b = Manager(), Manager()
        assert (
            compile_fsm(manager_a, first).next_fns
            != compile_fsm(manager_b, second).next_fns
        )

    def test_shape_parameters(self):
        spec = random_controller(
            5, state_bits=6, input_bits=4, num_outputs=3
        )
        assert len(spec.latches) == 6
        assert len(spec.inputs) == 4
        assert len(spec.outputs) == 3
