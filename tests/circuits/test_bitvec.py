"""Tests for the word-level bit-vector helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.bdd.manager import Manager
from repro.bdd.function import Function
from repro.circuits.bitvec import (
    equal_word,
    increment,
    less_than,
    mux_word,
    ripple_add,
    rotate_left,
)

WIDTH = 4


def _constant_word(manager, value, width=WIDTH):
    true = Function.true(manager)
    false = Function.false(manager)
    return [
        true if (value >> index) & 1 else false for index in range(width)
    ]


def _word_value(word):
    total = 0
    for index, bit in enumerate(word):
        if bit.is_one():
            total |= 1 << index
        elif not bit.is_zero():
            raise AssertionError("non-constant bit in constant word")
    return total


small_ints = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


@given(small_ints, small_ints)
def test_ripple_add_matches_integers(a_value, b_value):
    manager = Manager()
    a = _constant_word(manager, a_value)
    b = _constant_word(manager, b_value)
    total, carry = ripple_add(a, b, Function.false(manager))
    expected = a_value + b_value
    assert _word_value(total) == expected % (1 << WIDTH)
    assert carry.is_one() == (expected >= (1 << WIDTH))


@given(small_ints)
def test_increment_matches_integers(value):
    manager = Manager()
    word = _constant_word(manager, value)
    bumped = increment(word, Function.true(manager))
    assert _word_value(bumped) == (value + 1) % (1 << WIDTH)
    unchanged = increment(word, Function.false(manager))
    assert _word_value(unchanged) == value


@given(small_ints, small_ints)
def test_less_than_matches_integers(a_value, b_value):
    manager = Manager()
    a = _constant_word(manager, a_value)
    b = _constant_word(manager, b_value)
    assert less_than(a, b).is_one() == (a_value < b_value)


@given(small_ints, small_ints)
def test_equal_word_matches_integers(a_value, b_value):
    manager = Manager()
    a = _constant_word(manager, a_value)
    b = _constant_word(manager, b_value)
    assert equal_word(a, b).is_one() == (a_value == b_value)


@given(small_ints, small_ints, st.booleans())
def test_mux_word(a_value, b_value, select_value):
    manager = Manager()
    a = _constant_word(manager, a_value)
    b = _constant_word(manager, b_value)
    select = (
        Function.true(manager) if select_value else Function.false(manager)
    )
    chosen = mux_word(select, a, b)
    assert _word_value(chosen) == (a_value if select_value else b_value)


@given(small_ints)
def test_rotate_left(value):
    manager = Manager()
    word = _constant_word(manager, value)
    rotated = rotate_left(word)
    expected = ((value << 1) | (value >> (WIDTH - 1))) & ((1 << WIDTH) - 1)
    assert _word_value(rotated) == expected


def test_width_mismatches_rejected():
    manager = Manager()
    a = _constant_word(manager, 3, width=3)
    b = _constant_word(manager, 3, width=4)
    false = Function.false(manager)
    with pytest.raises(ValueError):
        ripple_add(a, b, false)
    with pytest.raises(ValueError):
        less_than(a, b)
    with pytest.raises(ValueError):
        equal_word(a, b)
    with pytest.raises(ValueError):
        mux_word(false, a, b)


def test_symbolic_adder_is_functionally_complete():
    """Adding symbolic words yields the full adder truth table."""
    manager = Manager(["a0", "a1", "b0", "b1"])
    a = [
        Function(manager, manager.var("a0")),
        Function(manager, manager.var("a1")),
    ]
    b = [
        Function(manager, manager.var("b0")),
        Function(manager, manager.var("b1")),
    ]
    total, carry = ripple_add(a, b, Function.false(manager))
    for a_value in range(4):
        for b_value in range(4):
            env = {
                "a0": bool(a_value & 1),
                "a1": bool(a_value & 2),
                "b0": bool(b_value & 1),
                "b1": bool(b_value & 2),
            }
            got = int(total[0](**env)) | (int(total[1](**env)) << 1)
            got |= int(carry(**env)) << 2
            assert got == a_value + b_value
