"""Differential lanes: agreement, typed degradations, violation rules."""

import multiprocessing

import pytest

from repro.verify.corpus import Corpus
from repro.verify.lanes import (
    COMPLETED,
    DEGRADED,
    ERROR,
    BatchLane,
    InProcessLane,
    LaneResult,
    PoolLane,
    build_lane,
    differential_violations,
    group_by_request,
)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool lanes require the fork start method",
)

METHODS = ["osm_bt", "restrict"]


def _instances():
    return Corpus(
        families=("random_dnf",), size=2, num_vars=5, seed=17
    ).generate()


def test_inprocess_lane_completes_with_valid_covers():
    instances = _instances()
    results = InProcessLane().run(instances, METHODS)
    assert len(results) == len(instances) * len(METHODS)
    assert {r.status for r in results} == {COMPLETED}
    by_inst = {i.digest: i for i in instances}
    for (digest, method), grouped in group_by_request(results).items():
        assert differential_violations(
            by_inst[digest], method, grouped
        ) == []


@needs_fork
def test_pool_lane_agrees_with_inprocess_byte_for_byte():
    instances = _instances()
    reference = InProcessLane().run(instances, METHODS)
    pooled = PoolLane(workers=2).run(instances, METHODS)
    ref_by_key = {
        (r.instance.digest, r.method): r.cover_payload for r in reference
    }
    for result in pooled:
        assert result.status == COMPLETED
        key = (result.instance.digest, result.method)
        assert result.cover_payload == ref_by_key[key]
    by_inst = {i.digest: i for i in instances}
    for (digest, method), grouped in group_by_request(
        reference + pooled
    ).items():
        assert differential_violations(
            by_inst[digest], method, grouped
        ) == []


@needs_fork
def test_batch_lane_agrees_with_single_cell_byte_for_byte():
    # The batched transport differential: whole-batch dispatch must
    # produce byte-identical canonical covers to per-cell dispatch.
    instances = _instances()
    reference = PoolLane(workers=2).run(instances, METHODS)
    batched = BatchLane(workers=2).run(instances, METHODS)
    assert len(batched) == len(reference)
    ref_by_key = {
        (r.instance.digest, r.method): r.cover_payload for r in reference
    }
    for result in batched:
        assert result.status == COMPLETED
        key = (result.instance.digest, result.method)
        assert result.cover_payload == ref_by_key[key]
    by_inst = {i.digest: i for i in instances}
    for (digest, method), grouped in group_by_request(
        reference + batched
    ).items():
        assert differential_violations(
            by_inst[digest], method, grouped
        ) == []


def test_disagreeing_completed_lanes_are_a_violation():
    instances = _instances()
    instance = instances[0]
    results = InProcessLane().run([instance], ["restrict"])
    # Fabricate a second lane that "completed" with the identity f
    # (a valid cover, but byte-different from restrict's result).
    manager, f, c = instance.decode()
    from repro.bdd.wire import serialize

    impostor = LaneResult(
        lane="pool",
        instance=instance,
        method="restrict",
        status=COMPLETED,
        cover_payload=serialize(manager, (f,)),
    )
    if impostor.cover_payload == results[0].cover_payload:
        pytest.skip("restrict returned the identity on this instance")
    violations = differential_violations(
        instance, "restrict", list(results) + [impostor]
    )
    assert any("disagree" in message for message in violations)


def test_invalid_completed_cover_is_a_violation():
    instance = _instances()[0]
    manager, f, c = instance.decode()
    from repro.bdd.wire import serialize

    bad = LaneResult(
        lane="inprocess",
        instance=instance,
        method="osm_bt",
        status=COMPLETED,
        cover_payload=serialize(manager, (f ^ 1,)),
    )
    violations = differential_violations(instance, "osm_bt", [bad])
    assert any("Definition 2" in message for message in violations)


def test_untyped_degradation_is_a_violation():
    instance = _instances()[0]
    silent = LaneResult(
        lane="pool",
        instance=instance,
        method="osm_bt",
        status=DEGRADED,
        cover_payload=None,
        reason=None,
    )
    violations = differential_violations(instance, "osm_bt", [silent])
    assert any("untyped degradation" in message for message in violations)


def test_error_results_are_always_violations():
    instance = _instances()[0]
    escaped = LaneResult(
        lane="chaos",
        instance=instance,
        method="osm_bt",
        status=ERROR,
        reason="untyped ValueError: boom",
    )
    violations = differential_violations(instance, "osm_bt", [escaped])
    assert violations == ["chaos:osm_bt on %s: untyped ValueError: boom"
                          % instance.label]


def test_build_lane_vocabulary():
    for name in ("inprocess", "pool", "batch", "gateway", "chaos"):
        assert build_lane(name).name == name
    with pytest.raises(ValueError, match="unknown lane"):
        build_lane("bogus")
