"""The metamorphic oracle pack: clean on honest heuristics, sharp on bugs."""

import pytest

from repro.core.registry import HEURISTICS
from repro.verify.corpus import Corpus
from repro.verify.oracles import (
    ORACLE_NAMES,
    run_oracles,
)

HONEST = {
    name: HEURISTICS[name]
    for name in ("constrain", "restrict", "osm_bt", "osm_nv", "f_orig")
}


def _small_corpus(seed=21):
    return Corpus(
        families=("random_dnf", "random_dag"), size=2, num_vars=5, seed=seed
    ).generate()


def test_honest_heuristics_pass_every_oracle():
    for instance in _small_corpus():
        findings = run_oracles(instance, HONEST)
        assert findings == [], [
            (f.oracle, f.heuristic, f.message) for f in findings
        ]


def test_fsm_families_pass_cover_and_wire_oracles():
    instances = Corpus(
        families=("circuit_cone", "fsm_reach"), size=2, num_vars=6, seed=4
    ).generate()
    for instance in instances:
        findings = run_oracles(
            instance,
            {"constrain": HEURISTICS["constrain"]},
            ["cover", "wire_roundtrip", "gc_remap", "sibling"],
        )
        assert findings == [], [
            (f.oracle, f.message) for f in findings
        ]


def test_non_cover_heuristic_is_caught():
    def complemented(manager, f, c):
        return f ^ 1

    caught = set()
    for instance in _small_corpus():
        for finding in run_oracles(instance, {"bad": complemented}):
            caught.add(finding.oracle)
    assert "cover" in caught
    assert "contracts" in caught


def test_crashing_heuristic_is_a_finding_not_an_escape():
    def crashes(manager, f, c):
        raise RuntimeError("boom")

    instance = _small_corpus()[0]
    findings = run_oracles(instance, {"crash": crashes}, ["cover"])
    assert len(findings) == 1
    assert "RuntimeError" in findings[0].message


def test_non_idempotent_sibling_is_caught():
    # f ⊕ ¬c is a valid cover (it agrees with f on the care set), but
    # applying it twice alternates back to f — not constrain's promised
    # fixpoint on its own output.
    def unstable(manager, f, c):
        return manager.xor(f, c ^ 1)

    caught = set()
    for instance in _small_corpus(seed=33):
        for finding in run_oracles(
            instance, {"constrain": unstable}, ["idempotence"]
        ):
            caught.add(finding.oracle)
    assert "idempotence" in caught


def test_unknown_oracle_name_rejected():
    instance = _small_corpus()[0]
    with pytest.raises(ValueError, match="unknown oracles"):
        run_oracles(instance, HONEST, ["nope"])


def test_oracle_names_are_exported_and_unique():
    assert len(ORACLE_NAMES) == len(set(ORACLE_NAMES))
    for expected in (
        "cover",
        "contracts",
        "idempotence",
        "dc_monotone",
        "permutation",
        "gc_remap",
        "sibling",
        "wire_roundtrip",
    ):
        assert expected in ORACLE_NAMES
