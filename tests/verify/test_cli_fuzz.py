"""The ``repro-bdd fuzz`` subcommand."""

import json

from repro.cli import main


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_fuzz_quick_run_exits_zero(capsys, tmp_path):
    output = tmp_path / "report.json"
    code, out, err = _run(
        capsys,
        "fuzz",
        "--seed",
        "6",
        "--size",
        "1",
        "--num-vars",
        "5",
        "--families",
        "random_dnf",
        "--methods",
        "constrain",
        "--output",
        str(output),
    )
    assert code == 0, err
    assert "all oracles and lanes conformed" in out
    assert "report fingerprint:" in out
    report = json.loads(output.read_text())
    assert report["ok"] is True
    assert report["instances"] == 1
    assert report["fingerprint"]


def test_fuzz_is_deterministic_across_invocations(capsys):
    argv = (
        "fuzz",
        "--seed",
        "9",
        "--size",
        "1",
        "--num-vars",
        "5",
        "--families",
        "random_dnf",
        "random_dag",
        "--methods",
        "constrain",
        "restrict",
    )
    _, first_out, _ = _run(capsys, *argv)
    _, second_out, _ = _run(capsys, *argv)
    assert first_out == second_out


def test_fuzz_rejects_unknown_lane(capsys):
    code, _, err = _run(capsys, "fuzz", "--lanes", "warp")
    assert code == 2
    assert "unknown lane" in err


def test_fuzz_rejects_unknown_family_and_oracle(capsys):
    code, _, err = _run(capsys, "fuzz", "--families", "nope")
    assert code == 2
    assert "unknown family" in err
    code, _, err = _run(capsys, "fuzz", "--oracles", "nope")
    assert code == 2
    assert "unknown oracle" in err


def test_fuzz_metrics_flag_prints_verify_counters(capsys):
    code, out, _ = _run(
        capsys,
        "fuzz",
        "--seed",
        "2",
        "--size",
        "1",
        "--num-vars",
        "5",
        "--families",
        "random_dnf",
        "--methods",
        "constrain",
        "--metrics",
    )
    assert code == 0
    assert "verify.instances" in out
