"""Corpus framework: the pisek determinism contract and the family API."""

import pytest

from repro.bdd.cover import is_def2_cover
from repro.bdd.manager import ONE, ZERO
from repro.verify.corpus import (
    Corpus,
    DEFAULT_FAMILIES,
    FAMILIES,
    register_family,
    unregister_family,
)


def test_same_seed_is_byte_identical():
    first = Corpus(size=2, num_vars=6, seed=13)
    second = Corpus(size=2, num_vars=6, seed=13)
    payloads_a = [inst.payload for inst in first.generate()]
    payloads_b = [inst.payload for inst in second.generate()]
    assert payloads_a == payloads_b
    assert first.fingerprint() == second.fingerprint()


def test_different_seeds_differ():
    assert (
        Corpus(size=2, num_vars=6, seed=1).fingerprint()
        != Corpus(size=2, num_vars=6, seed=2).fingerprint()
    )


def test_every_family_produces_requested_size():
    corpus = Corpus(size=3, num_vars=6, seed=5)
    assert corpus.statistics() == {
        family: 3 for family in DEFAULT_FAMILIES
    }


def test_instances_decode_to_valid_refs():
    for instance in Corpus(size=2, num_vars=6, seed=9).generate():
        manager, f, c = instance.decode()
        manager.validate((f, c))
        # The identity is always a Definition 2 cover of itself.
        assert is_def2_cover(manager, f, c, f)


def test_instance_digest_and_label_are_stable():
    first = Corpus(size=1, num_vars=5, seed=3).generate()[0]
    second = Corpus(size=1, num_vars=5, seed=3).generate()[0]
    assert first.digest == second.digest
    assert first.label == second.label


def test_unknown_family_rejected():
    with pytest.raises(ValueError, match="unknown corpus families"):
        Corpus(families=("no_such_family",))


def test_register_family_roundtrip():
    def constant_family(config):
        from repro.bdd.manager import Manager
        from repro.bdd.wire import serialize_instance

        manager = Manager(["x0"])
        return [
            serialize_instance(manager, ONE, ZERO)
            for _ in range(config.size)
        ]

    register_family("constant_test", constant_family)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_family("constant_test", constant_family)
        corpus = Corpus(families=("constant_test",), size=2, seed=0)
        assert len(corpus.generate()) == 2
    finally:
        unregister_family("constant_test")
    assert "constant_test" not in FAMILIES


def test_builtin_families_cannot_be_unregistered():
    with pytest.raises(ValueError, match="built-in"):
        unregister_family("random_dnf")


def test_wrong_size_family_is_an_error():
    def short_family(config):
        return []

    register_family("short_test", short_family)
    try:
        with pytest.raises(RuntimeError, match="produced 0 payloads"):
            Corpus(families=("short_test",), size=2, seed=0).generate()
    finally:
        unregister_family("short_test")
