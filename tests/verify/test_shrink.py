"""The delta-debugging shrinker and its reproducer artifacts."""

import json

import pytest

from repro.bdd.wire import deserialize_instance
from repro.verify.corpus import Corpus, Instance
from repro.verify.oracles import run_oracles
from repro.verify.shrink import shrink, write_reproducer


def _complemented(manager, f, c):
    return f ^ 1


def _cover_failure(payload):
    instance = Instance("shrink", 0, 0, payload)
    findings = run_oracles(instance, {"bad": _complemented}, ["cover"])
    return bool(findings)


def _failing_payload(seed=3, num_vars=8):
    corpus = Corpus(
        families=("random_dnf",), size=1, num_vars=num_vars, seed=seed
    )
    payload = corpus.generate()[0].payload
    assert _cover_failure(payload)
    return payload


def test_shrinks_planted_bug_to_tiny_instance():
    result = shrink(_failing_payload(), _cover_failure)
    assert result.reduced
    assert result.num_vars <= 8
    assert result.num_vars < result.original_num_vars
    assert len(result.payload) < len(result.original_payload)
    # The failure still reproduces on the shrunk instance.
    assert _cover_failure(result.payload)


def test_shrunk_payload_decodes_over_dense_universe():
    result = shrink(_failing_payload(seed=8), _cover_failure)
    manager, f, c = deserialize_instance(result.payload)
    support = manager.support_multi((f, c))
    assert len(support) == manager.num_vars  # no dead variables declared


def test_non_reproducing_failure_is_rejected():
    payload = Corpus(
        families=("random_dnf",), size=1, num_vars=5, seed=2
    ).generate()[0].payload
    with pytest.raises(ValueError, match="does not reproduce"):
        shrink(payload, lambda _: False)


def test_reproducer_artifacts(tmp_path):
    result = shrink(_failing_payload(seed=5), _cover_failure)
    artifacts = write_reproducer(
        result,
        oracle="cover",
        heuristic="restrict",
        message="result disagrees with f",
        directory=str(tmp_path),
        tag="fuzz_cover_restrict_deadbeef",
    )
    record = json.loads(open(artifacts.json_path).read())
    assert record["payload_hex"] == result.payload.hex()
    assert record["num_vars"] == result.num_vars
    stub = open(artifacts.stub_path).read()
    assert "def test_shrunk_reproducer" in stub
    assert result.payload.hex() in stub
    # The stub is valid python and passes against the honest registry
    # heuristic (the "after the fix" half of the contract).
    namespace = {}
    exec(compile(stub, artifacts.stub_path, "exec"), namespace)
    namespace["test_shrunk_reproducer"]()
