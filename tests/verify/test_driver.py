"""The fuzz driver: determinism, metrics, and the planted-bug drill.

The last test is the subsystem's acceptance criterion end to end: a
deliberately planted heuristic bug must be caught by an oracle, shrunk
to a reproducer of at most 8 variables, and the emitted pytest stub
must fail while the bug is registered and pass once it is fixed.
"""

import multiprocessing

import pytest

from repro.core.registry import (
    HEURISTICS,
    register_heuristic,
    unregister_heuristic,
)
from repro.obs import metrics as obs_metrics
from repro.verify import FuzzConfig, run_fuzz

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="serving lanes require the fork start method",
)

QUICK = dict(size=2, num_vars=5, families=("random_dnf", "random_dag"))


def test_clean_run_is_ok_and_deterministic():
    config = FuzzConfig(
        seed=40, methods=("constrain", "osm_bt"), shrink=False, **QUICK
    )
    first = run_fuzz(config)
    second = run_fuzz(config)
    assert first.ok
    assert first.fingerprint() == second.fingerprint()
    assert first.corpus_fingerprints == second.corpus_fingerprints


def test_different_seeds_give_different_fingerprints():
    base = dict(methods=("constrain",), shrink=False, **QUICK)
    assert (
        run_fuzz(FuzzConfig(seed=1, **base)).fingerprint()
        != run_fuzz(FuzzConfig(seed=2, **base)).fingerprint()
    )


def test_rounds_accumulate_instances():
    config = FuzzConfig(
        seed=7, rounds=2, methods=("constrain",), shrink=False, **QUICK
    )
    report = run_fuzz(config)
    assert report.instances == 2 * 2 * len(QUICK["families"])
    assert len(report.corpus_fingerprints) == 2
    assert report.corpus_fingerprints[0] != report.corpus_fingerprints[1]


def test_metrics_flow_into_active_registry():
    config = FuzzConfig(
        seed=3, methods=("constrain",), shrink=False, **QUICK
    )
    with obs_metrics.collecting() as registry:
        report = run_fuzz(config)
    counters = registry.snapshot()["counters"]
    assert counters["verify.instances"] == report.instances
    assert counters["verify.oracle_checks"] == report.oracle_checks
    assert counters["verify.lane_requests"] == report.lane_requests


def test_unknown_lane_rejected():
    with pytest.raises(ValueError, match="unknown lanes"):
        run_fuzz(FuzzConfig(lanes=("teleport",)))


@needs_fork
def test_pool_and_gateway_lanes_conform():
    config = FuzzConfig(
        seed=11,
        methods=("osm_bt",),
        lanes=("inprocess", "pool", "gateway"),
        shrink=False,
        **QUICK,
    )
    report = run_fuzz(config)
    assert report.ok, (report.oracle_findings, report.lane_violations)
    assert set(report.lane_status_counts) == {
        "inprocess",
        "pool",
        "gateway",
    }


def test_planted_bug_caught_shrunk_and_stub_flips(tmp_path):
    """The acceptance drill: catch → shrink ≤ 8 vars → stub fails/passes."""

    def buggy(manager, f, c):
        return f ^ 1

    register_heuristic("buggy_fuzz", buggy, replace=True)
    try:
        config = FuzzConfig(
            seed=19,
            methods=("buggy_fuzz",),
            families=("random_dnf",),
            size=1,
            num_vars=8,
            shrink=True,
            output_dir=str(tmp_path),
        )
        report = run_fuzz(config)
        assert not report.ok
        assert any(
            record["oracle"] == "cover"
            for record in report.oracle_findings
        )
        assert report.shrunk, "shrinker produced nothing"
        for record in report.shrunk:
            assert record["num_vars"] <= 8
            assert record["num_vars"] <= record["original_num_vars"]
        assert report.reproducers
        stub_source = open(report.reproducers[0].stub_path).read()

        # Before the fix: the stub must FAIL (bug still registered).
        namespace = {}
        exec(
            compile(stub_source, report.reproducers[0].stub_path, "exec"),
            namespace,
        )
        with pytest.raises(AssertionError):
            namespace["test_shrunk_reproducer"]()

        # After the fix: re-register an honest implementation under the
        # same name; the same stub must PASS.
        register_heuristic(
            "buggy_fuzz", HEURISTICS["restrict"], replace=True
        )
        namespace["test_shrunk_reproducer"]()
    finally:
        unregister_heuristic("buggy_fuzz")


def test_shrink_dedups_failure_signatures(tmp_path):
    def buggy(manager, f, c):
        return f ^ 1

    register_heuristic("buggy_fuzz_dedup", buggy, replace=True)
    try:
        config = FuzzConfig(
            seed=23,
            methods=("buggy_fuzz_dedup",),
            families=("random_dnf",),
            size=3,
            num_vars=5,
            oracles=("cover",),
            shrink=True,
            output_dir=str(tmp_path),
        )
        report = run_fuzz(config)
        # Three failing instances, one signature: exactly one shrink.
        assert len(report.oracle_findings) == 3
        assert len(report.shrunk) == 1
    finally:
        unregister_heuristic("buggy_fuzz_dedup")
