"""Tests for DC-based netlist node simplification."""

import random

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.netlist import Netlist
from repro.synth.simplify import simplify_netlist


def _random_netlist(seed, num_inputs=4, num_gates=10):
    rng = random.Random(seed)
    netlist = Netlist("rand%d" % seed)
    signals = []
    for index in range(num_inputs):
        signals.append(netlist.add_input("i%d" % index))
    for index in range(num_gates):
        op = rng.choice(["AND", "OR", "XOR", "NAND", "NOR"])
        fanins = rng.sample(signals, 2)
        signals.append(netlist.add_gate("g%d" % index, op, fanins))
    outputs = signals[-2:]
    manager = Manager(["i%d" % index for index in range(num_inputs)])
    input_refs = {
        "i%d" % index: manager.var(index) for index in range(num_inputs)
    }
    return netlist, manager, input_refs, outputs


class TestSimplifyNetlist:
    @pytest.mark.parametrize("seed", [1, 7, 13, 42])
    def test_outputs_preserved(self, seed):
        """Every accepted replacement keeps the outputs intact."""
        netlist, manager, input_refs, outputs = _random_netlist(seed)
        original = netlist.to_bdds(manager, input_refs)
        report = simplify_netlist(
            netlist, manager, input_refs, outputs
        )
        # Rebuild the outputs from the replaced functions.
        substituted = netlist.to_bdds(
            manager,
            input_refs,
            overrides={
                signal: ref
                for signal, ref in report.functions.items()
                if signal not in netlist.inputs
            },
        )
        for output in outputs:
            assert substituted[output] == original[output]

    def test_never_grows(self):
        netlist, manager, input_refs, outputs = _random_netlist(3)
        report = simplify_netlist(netlist, manager, input_refs, outputs)
        assert report.total_after <= report.total_before
        for node in report.nodes:
            assert node.size_after <= node.size_before

    def test_dead_logic_collapses(self):
        """A signal no output depends on becomes constant."""
        netlist = Netlist()
        for name in ("a", "b"):
            netlist.add_input(name)
        netlist.add_gate("dead", "XOR", ["a", "b"])
        netlist.add_gate("out", "AND", ["a", "b"])
        manager = Manager(["a", "b"])
        input_refs = {"a": manager.var("a"), "b": manager.var("b")}
        report = simplify_netlist(netlist, manager, input_refs, ["out"])
        assert report.functions["dead"] == ZERO
        dead_node = next(
            node for node in report.nodes if node.signal == "dead"
        )
        assert dead_node.replaced
        assert dead_node.care_fraction == 0.0

    def test_external_care_enables_simplification(self):
        """With input codes excluded, an XOR simplifies to OR or less."""
        netlist = Netlist()
        for name in ("a", "b"):
            netlist.add_input(name)
        netlist.add_gate("out", "XOR", ["a", "b"])
        manager = Manager(["a", "b"])
        input_refs = {"a": manager.var("a"), "b": manager.var("b")}
        # Exclude the a=b=1 code: on the rest, XOR == OR.
        external = manager.and_(manager.var("a"), manager.var("b")) ^ 1
        report = simplify_netlist(
            netlist,
            manager,
            input_refs,
            ["out"],
            external_care=external,
        )
        out = report.functions["out"]
        disagrees = manager.and_(
            manager.xor(out, manager.xor(manager.var("a"), manager.var("b"))),
            external,
        )
        assert disagrees == ZERO
        assert manager.size(out) <= 3

    def test_report_counts(self):
        netlist, manager, input_refs, outputs = _random_netlist(5)
        report = simplify_netlist(netlist, manager, input_refs, outputs)
        assert len(report.nodes) == len(netlist.gates)
        assert 0 <= report.replaced_count <= len(report.nodes)
        for node in report.nodes:
            assert 0.0 <= node.care_fraction <= 1.0

    def test_incremental_compatibility_sweep(self):
        """Many random netlists: simultaneous application of all
        accepted replacements always preserves the outputs (the
        compatible-ODC guarantee of incremental verification)."""
        for seed in range(30):
            netlist, manager, input_refs, outputs = _random_netlist(
                seed, num_inputs=4, num_gates=8
            )
            original = netlist.to_bdds(manager, input_refs)
            report = simplify_netlist(
                netlist, manager, input_refs, outputs
            )
            substituted = netlist.to_bdds(
                manager,
                input_refs,
                overrides={
                    signal: ref
                    for signal, ref in report.functions.items()
                    if signal not in netlist.inputs
                },
            )
            for output in outputs:
                assert substituted[output] == original[output], seed

    @pytest.mark.parametrize("method", ["constrain", "osm_bt", "tsm_td"])
    def test_other_heuristics(self, method):
        netlist, manager, input_refs, outputs = _random_netlist(11)
        original = netlist.to_bdds(manager, input_refs)
        report = simplify_netlist(
            netlist, manager, input_refs, outputs, method=method
        )
        substituted = netlist.to_bdds(
            manager,
            input_refs,
            overrides={
                signal: ref
                for signal, ref in report.functions.items()
                if signal not in netlist.inputs
            },
        )
        for output in outputs:
            assert substituted[output] == original[output]
