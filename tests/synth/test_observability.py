"""Tests for observability don't-care computation."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.netlist import Netlist
from repro.synth.observability import cut_signal, observability_care


def _and_gate_circuit():
    """out = (a & b) & g, with s = a & b the signal under analysis."""
    netlist = Netlist()
    for name in ("a", "b", "g"):
        netlist.add_input(name)
    netlist.add_gate("s", "AND", ["a", "b"])
    netlist.add_gate("out", "AND", ["s", "g"])
    manager = Manager(["a", "b", "g"])
    input_refs = {name: manager.var(name) for name in ("a", "b", "g")}
    return netlist, manager, input_refs


def test_cut_replaces_signal():
    netlist, manager, input_refs = _and_gate_circuit()
    cut_level = manager.level(manager.new_var("t"))
    values = cut_signal(netlist, manager, input_refs, "s", cut_level)
    t = manager.var(cut_level)
    assert values["s"] == t
    assert values["out"] == manager.and_(t, manager.var("g"))


def test_odc_behind_and_gate():
    """s feeds an AND with g: s is unobservable exactly where g = 0."""
    netlist, manager, input_refs = _and_gate_circuit()
    cut_level = manager.level(manager.new_var("t"))
    care = observability_care(
        netlist, manager, input_refs, "s", ["out"], cut_level
    )
    assert care == manager.var("g")


def test_odc_behind_xor_gate_is_full():
    """XOR propagates every flip: no observability DCs."""
    netlist = Netlist()
    for name in ("a", "b", "g"):
        netlist.add_input(name)
    netlist.add_gate("s", "AND", ["a", "b"])
    netlist.add_gate("out", "XOR", ["s", "g"])
    manager = Manager(["a", "b", "g"])
    input_refs = {name: manager.var(name) for name in ("a", "b", "g")}
    cut_level = manager.level(manager.new_var("t"))
    care = observability_care(
        netlist, manager, input_refs, "s", ["out"], cut_level
    )
    assert care == ONE


def test_dead_signal_has_empty_care():
    netlist = Netlist()
    netlist.add_input("a")
    netlist.add_gate("dead", "NOT", ["a"])
    netlist.add_gate("out", "BUF", ["a"])
    manager = Manager(["a"])
    input_refs = {"a": manager.var("a")}
    cut_level = manager.level(manager.new_var("t"))
    care = observability_care(
        netlist, manager, input_refs, "dead", ["out"], cut_level
    )
    assert care == ZERO


def test_multiple_outputs_union_observability():
    """Observable through either output counts as observable."""
    netlist = Netlist()
    for name in ("a", "g", "h"):
        netlist.add_input(name)
    netlist.add_gate("s", "BUF", ["a"])
    netlist.add_gate("o1", "AND", ["s", "g"])
    netlist.add_gate("o2", "AND", ["s", "h"])
    manager = Manager(["a", "g", "h"])
    input_refs = {name: manager.var(name) for name in ("a", "g", "h")}
    cut_level = manager.level(manager.new_var("t"))
    care = observability_care(
        netlist, manager, input_refs, "s", ["o1", "o2"], cut_level
    )
    assert care == manager.or_(manager.var("g"), manager.var("h"))


def test_external_care_intersects():
    netlist, manager, input_refs = _and_gate_circuit()
    cut_level = manager.level(manager.new_var("t"))
    external = manager.var("a")
    care = observability_care(
        netlist,
        manager,
        input_refs,
        "s",
        ["out"],
        cut_level,
        external_care=external,
    )
    assert care == manager.and_(manager.var("g"), manager.var("a"))
