"""Tests for image computation: relation vs constrain-range methods."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.machine import FsmSpec, LatchSpec, OutputSpec, compile_fsm
from repro.fsm.image import (
    image_by_constrain_range,
    image_by_relation,
    preimage_by_relation,
    transition_relation,
)
from repro.circuits.generators import counter, lfsr, random_controller


def two_bit_counter():
    manager = Manager()
    fsm = compile_fsm(manager, counter(2))
    return manager, fsm


class TestRelation:
    def test_relation_is_total_and_deterministic(self):
        manager, fsm = two_bit_counter()
        relation = transition_relation(fsm)
        # Total: for every (state, input) some next state exists.
        some_next = manager.exists(relation, fsm.next_levels)
        assert some_next == ONE
        # Deterministic: exactly one next state per (state, input).
        count = manager.sat_count(relation)
        expected = 1 << (len(fsm.input_levels) + len(fsm.current_levels))
        assert count == expected

    def test_relation_cached(self):
        manager, fsm = two_bit_counter()
        assert transition_relation(fsm) == transition_relation(fsm)


class TestImage:
    def test_counter_steps_from_reset(self):
        manager, fsm = two_bit_counter()
        image = image_by_relation(fsm, fsm.init_cube)
        # From 00 with en in {0,1}: stay at 00 or go to 01.
        q0, q1 = fsm.current_levels
        expected = manager.or_(
            manager.cube_ref({q0: False, q1: False}),
            manager.cube_ref({q0: True, q1: False}),
        )
        assert image == expected

    def test_image_of_empty_is_empty(self):
        manager, fsm = two_bit_counter()
        assert image_by_relation(fsm, ZERO) == ZERO
        assert image_by_constrain_range(fsm, ZERO) == ZERO

    def test_methods_agree_on_counter(self):
        manager, fsm = two_bit_counter()
        states = fsm.init_cube
        for _ in range(4):
            by_relation = image_by_relation(fsm, states)
            by_range = image_by_constrain_range(fsm, states)
            assert by_relation == by_range
            states = manager.or_(states, by_relation)

    @pytest.mark.parametrize("seed", [7, 42, 99])
    def test_methods_agree_on_random_controllers(self, seed):
        manager = Manager()
        fsm = compile_fsm(
            manager, random_controller(seed, state_bits=4, input_bits=3)
        )
        states = fsm.init_cube
        for _ in range(3):
            by_relation = image_by_relation(fsm, states)
            by_range = image_by_constrain_range(fsm, states)
            assert by_relation == by_range
            states = manager.or_(states, by_relation)

    def test_constrain_hook_sees_every_next_function(self):
        manager, fsm = two_bit_counter()
        observed = []

        def hook(mgr, f, c):
            observed.append((f, c))

        image_by_constrain_range(fsm, fsm.init_cube, constrain_hook=hook)
        assert len(observed) == fsm.num_latches
        for f, c in observed:
            assert c == fsm.init_cube

    def test_image_agrees_with_explicit_simulation(self):
        """Symbolic image = set of states reached by explicit stepping."""
        manager = Manager()
        fsm = compile_fsm(manager, lfsr(3))
        image = image_by_relation(fsm, fsm.init_cube)
        # The LFSR has no inputs; from the all-ones reset there is
        # exactly one successor.
        assert manager.sat_count(
            image, manager.num_vars
        ) == (1 << (manager.num_vars - fsm.num_latches))


class TestPreimage:
    def test_preimage_inverts_image_on_deterministic_machine(self):
        manager, fsm = two_bit_counter()
        image = image_by_relation(fsm, fsm.init_cube)
        back = preimage_by_relation(fsm, image)
        assert manager.leq(fsm.init_cube, back)

    def test_preimage_of_unreachable(self):
        manager = Manager()
        fsm = compile_fsm(manager, lfsr(3))
        # All-zeros is a fixed point basin nothing maps into except 0
        # itself (taps XOR); preimage of the zero state is {0}.
        q_levels = fsm.current_levels
        zero_state = manager.cube_ref({level: False for level in q_levels})
        back = preimage_by_relation(fsm, zero_state)
        assert back == zero_state
