"""Tests for unreachable-state logic minimization and clustered image."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.machine import compile_fsm
from repro.fsm.image import (
    image_by_clustered_relation,
    image_by_relation,
)
from repro.fsm.optimize import (
    minimize_fsm_logic,
    sequentially_equivalent,
)
from repro.fsm.reachability import reachable_states
from repro.circuits.generators import (
    johnson_counter,
    lfsr,
    random_controller,
    redundant_counter,
    traffic_light_controller,
)


class TestMinimizeFsmLogic:
    @pytest.mark.parametrize(
        "spec_factory",
        [
            lambda: johnson_counter(4),
            lambda: lfsr(4),
            traffic_light_controller,
            lambda: redundant_counter(9, bits=3, garbage_terms=6),
        ],
    )
    def test_optimized_machine_is_sequentially_equivalent(self, spec_factory):
        manager = Manager()
        fsm = compile_fsm(manager, spec_factory())
        report = minimize_fsm_logic(fsm)
        assert sequentially_equivalent(fsm, report.machine)

    def test_never_grows(self):
        manager = Manager()
        fsm = compile_fsm(manager, random_controller(3, 5, 3))
        report = minimize_fsm_logic(fsm, method="constrain")
        assert report.total_after <= report.total_before
        assert report.reduction >= 1.0

    def test_redundant_machine_shrinks_substantially(self):
        """The garbage logic lives entirely on unreachable states."""
        manager = Manager()
        fsm = compile_fsm(manager, redundant_counter(5, bits=4, garbage_terms=8))
        report = minimize_fsm_logic(fsm, method="restrict")
        assert report.reduction > 1.5
        assert report.reachable_fraction < 0.5

    def test_reachable_fraction_sane(self):
        manager = Manager()
        fsm = compile_fsm(manager, johnson_counter(4))
        report = minimize_fsm_logic(fsm)
        assert report.reachable_fraction == pytest.approx(8 / 16)

    def test_precomputed_reached_accepted(self):
        manager = Manager()
        fsm = compile_fsm(manager, lfsr(4))
        reached = reachable_states(fsm).reached
        report = minimize_fsm_logic(fsm, reached=reached)
        assert sequentially_equivalent(fsm, report.machine, reached=reached)

    def test_optimized_machine_same_reachable_set(self):
        """Sequential equivalence implies identical traversals."""
        manager = Manager()
        fsm = compile_fsm(manager, traffic_light_controller())
        report = minimize_fsm_logic(fsm)
        original = reachable_states(fsm)
        optimized = reachable_states(report.machine)
        assert original.reached == optimized.reached

    def test_mismatched_machines_rejected(self):
        manager_a, manager_b = Manager(), Manager()
        fsm_a = compile_fsm(manager_a, lfsr(3))
        fsm_b = compile_fsm(manager_b, lfsr(3))
        fsm_b.current_levels = [level + 1 for level in fsm_b.current_levels]
        with pytest.raises(ValueError):
            sequentially_equivalent(fsm_a, fsm_b)

    def test_detects_behavioural_difference(self):
        manager = Manager()
        fsm = compile_fsm(manager, johnson_counter(3))
        import copy

        broken = copy.copy(fsm)
        broken.next_fns = list(fsm.next_fns)
        broken.next_fns[0] ^= 1  # flip a next-state function everywhere
        assert not sequentially_equivalent(fsm, broken)


class TestClusteredImage:
    @pytest.mark.parametrize("seed", [5, 23, 77])
    def test_agrees_with_monolithic(self, seed):
        manager = Manager()
        fsm = compile_fsm(
            manager, random_controller(seed, state_bits=5, input_bits=3)
        )
        states = fsm.init_cube
        for _ in range(3):
            mono = image_by_relation(fsm, states)
            clustered = image_by_clustered_relation(fsm, states)
            assert mono == clustered
            states = manager.or_(states, mono)

    def test_tiny_cluster_cap_still_correct(self):
        manager = Manager()
        fsm = compile_fsm(manager, traffic_light_controller())
        states = fsm.init_cube
        for _ in range(4):
            mono = image_by_relation(fsm, states)
            clustered = image_by_clustered_relation(
                fsm, states, cluster_size=1
            )
            assert mono == clustered
            states = manager.or_(states, mono)

    def test_empty_states(self):
        manager = Manager()
        fsm = compile_fsm(manager, lfsr(3))
        assert image_by_clustered_relation(fsm, ZERO) == ZERO

    def test_clusters_cached_per_cap(self):
        manager = Manager()
        fsm = compile_fsm(manager, lfsr(3))
        image_by_clustered_relation(fsm, fsm.init_cube, cluster_size=7)
        image_by_clustered_relation(fsm, fsm.init_cube, cluster_size=9)
        assert set(fsm.__dict__["_clusters"]) == {7, 9}

    def test_reachability_with_clustered_image(self):
        manager = Manager()
        fsm = compile_fsm(manager, johnson_counter(4))
        result = reachable_states(
            fsm, image=image_by_clustered_relation
        )
        assert result.state_count(fsm) == 8
