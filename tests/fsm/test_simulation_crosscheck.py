"""Cross-check symbolic equivalence against explicit simulation.

The symbolic machinery (product machines, images, quantification) is
validated end-to-end by running random input sequences through pairs of
machines: whenever the symbolic check says EQUIVALENT, no simulation
may ever distinguish them; whenever simulation distinguishes them, the
symbolic check must say NOT EQUIVALENT.
"""

import random

import pytest

from repro.bdd.manager import Manager
from repro.fsm.machine import FsmSpec, LatchSpec, OutputSpec, compile_fsm
from repro.fsm.product import compile_product
from repro.fsm.reachability import check_equivalence
from repro.circuits.generators import random_controller


def _random_stimulus(rng, input_names, length):
    return [
        {name: bool(rng.getrandbits(1)) for name in input_names}
        for _ in range(length)
    ]


def _simulate_both(spec_left, spec_right, stimulus):
    manager = Manager()
    left = compile_fsm(manager, spec_left, prefix="L.")
    right_manager = Manager()
    right = compile_fsm(right_manager, spec_right, prefix="R.")
    return left.simulate(stimulus), right.simulate(stimulus)


def _outputs_match(trace_left, trace_right):
    for step_left, step_right in zip(trace_left, trace_right):
        if list(step_left.values()) != list(step_right.values()):
            return False
    return True


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_symbolic_equivalence_implies_simulation_agreement(seed):
    spec = random_controller(seed, state_bits=4, input_bits=3)
    manager = Manager()
    product = compile_product(manager, spec, spec)
    assert check_equivalence(product).equivalent
    rng = random.Random(seed * 7919)
    for _ in range(5):
        stimulus = _random_stimulus(rng, spec.inputs, 12)
        trace_left, trace_right = _simulate_both(spec, spec, stimulus)
        assert _outputs_match(trace_left, trace_right)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_simulation_difference_implies_symbolic_inequivalence(seed):
    """Mutate one next-state function; find the divergence both ways."""
    rng = random.Random(seed)
    spec = random_controller(seed, state_bits=4, input_bits=3)
    mutated_latches = list(spec.latches)
    victim = rng.randrange(len(mutated_latches))
    original = mutated_latches[victim]
    mutated_latches[victim] = LatchSpec(
        original.name, "~(%s)" % original.next, original.init
    )
    mutated = FsmSpec(
        spec.name + "_mut", spec.inputs, tuple(mutated_latches), spec.outputs
    )
    manager = Manager()
    product = compile_product(manager, spec, mutated)
    symbolic = check_equivalence(product)

    simulated_difference = False
    for _ in range(40):
        stimulus = _random_stimulus(rng, spec.inputs, 16)
        trace_left, trace_right = _simulate_both(spec, mutated, stimulus)
        if not _outputs_match(trace_left, trace_right):
            simulated_difference = True
            break
    if simulated_difference:
        assert not symbolic.equivalent
    if symbolic.equivalent:
        # The mutation may be sequentially redundant; simulation must
        # then never see a difference (already asserted above).
        assert not simulated_difference


@pytest.mark.parametrize("seed", [21, 22])
def test_output_mutation_always_caught(seed):
    """Flipping an output function is visible immediately."""
    spec = random_controller(seed, state_bits=4, input_bits=3, num_outputs=1)
    output = spec.outputs[0]
    mutated = FsmSpec(
        spec.name + "_out",
        spec.inputs,
        spec.latches,
        (OutputSpec(output.name, "~(%s)" % output.fn),),
    )
    manager = Manager()
    product = compile_product(manager, spec, mutated)
    result = check_equivalence(product)
    assert not result.equivalent
    assert result.counterexample is not None
