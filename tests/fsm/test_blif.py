"""Tests for the BLIF reader/writer."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.blif import (
    BlifError,
    compile_blif,
    parse_blif,
    write_blif,
)
from repro.fsm.machine import compile_fsm
from repro.fsm.product import ProductMachine, compile_product
from repro.fsm.reachability import check_equivalence
from repro.circuits.generators import counter, traffic_light_controller

SIMPLE = """
# a toggle flip-flop with enable
.model toggle
.inputs en
.outputs out
.latch q_next q 0
.names en q q_next
10 1
01 1
.names q out
1 1
.end
"""


class TestParse:
    def test_structure(self):
        model = parse_blif(SIMPLE)
        assert model.name == "toggle"
        assert model.inputs == ["en"]
        assert model.outputs == ["out"]
        assert model.latches == [("q_next", "q", False)]
        assert len(model.tables) == 2

    def test_comments_and_continuations(self):
        text = ".model m\n.inputs a \\\nb\n.outputs o\n.names a b o  # and\n11 1\n.end\n"
        model = parse_blif(text)
        assert model.inputs == ["a", "b"]

    def test_missing_model(self):
        with pytest.raises(BlifError):
            parse_blif(".inputs a\n")

    def test_row_outside_names(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n11 1\n.end\n")

    def test_bad_pattern_width(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a b\n.names a b o\n1 1\n.end\n")

    def test_bad_output_value(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.inputs a\n.names a o\n1 x\n.end\n")

    def test_malformed_latch(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.latch x\n.end\n")

    def test_unsupported_construct(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.gate nand2 a=x b=y o=z\n.end\n")


class TestCompile:
    def test_toggle_semantics(self):
        manager = Manager()
        fsm = compile_blif(manager, parse_blif(SIMPLE))
        trace = fsm.simulate([{"en": True}, {"en": True}, {"en": False}])
        assert [step["out"] for step in trace] == [False, True, False]

    def test_zero_polarity_cover(self):
        text = (
            ".model inv\n.inputs a\n.outputs o\n.names a o\n1 0\n.end\n"
        )
        manager = Manager()
        fsm = compile_blif(manager, parse_blif(text))
        assert fsm.output_fns["o"] == manager.var(fsm.input_levels[0]) ^ 1

    def test_constant_tables(self):
        text = (
            ".model consts\n.inputs a\n.outputs t f\n"
            ".names t\n1\n.names f\n.end\n"
        )
        manager = Manager()
        fsm = compile_blif(manager, parse_blif(text))
        assert fsm.output_fns["t"] == ONE
        assert fsm.output_fns["f"] == ZERO

    def test_tables_in_any_order(self):
        text = (
            ".model ooo\n.inputs a\n.outputs o\n"
            ".names mid o\n1 1\n"
            ".names a mid\n0 1\n.end\n"
        )
        manager = Manager()
        fsm = compile_blif(manager, parse_blif(text))
        assert fsm.output_fns["o"] == manager.var(fsm.input_levels[0]) ^ 1

    def test_cycle_detected(self):
        text = (
            ".model cyc\n.inputs a\n.outputs o\n"
            ".names o2 o\n1 1\n.names o o2\n1 1\n.end\n"
        )
        with pytest.raises(BlifError):
            compile_blif(Manager(), parse_blif(text))

    def test_undefined_output(self):
        text = ".model u\n.inputs a\n.outputs ghost\n.end\n"
        with pytest.raises(BlifError):
            compile_blif(Manager(), parse_blif(text))

    def test_mixed_output_values_rejected(self):
        text = ".model m\n.inputs a b\n.outputs o\n.names a b o\n11 1\n00 0\n.end\n"
        with pytest.raises(BlifError):
            compile_blif(Manager(), parse_blif(text))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec_factory", [lambda: counter(3), traffic_light_controller]
    )
    def test_machine_equivalent_after_roundtrip(self, spec_factory):
        """compile -> write_blif -> parse -> compile gives an
        equivalent machine (checked with the product machine)."""
        spec = spec_factory()
        scratch = Manager()
        original = compile_fsm(scratch, spec)
        text = write_blif(original)
        model = parse_blif(text)

        shared = Manager()
        left = compile_fsm(shared, spec)
        right = compile_blif(shared, model, prefix="copy.")
        # Align the copy's inputs onto the original's input variables.
        rename = dict(zip(right.input_levels, left.input_levels))
        right.next_fns = [
            shared.rename(fn, rename) for fn in right.next_fns
        ]
        right.output_fns = {
            name: shared.rename(fn, rename)
            for name, fn in right.output_fns.items()
        }
        right.input_levels = list(left.input_levels)
        right.input_names = list(left.input_names)
        product = ProductMachine(left, right)
        assert check_equivalence(product).equivalent
