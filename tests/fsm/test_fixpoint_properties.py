"""Property tests on random machines: fixpoint and duality invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.machine import compile_fsm
from repro.fsm.image import (
    image_by_relation,
    preimage_by_relation,
    transition_relation,
)
from repro.fsm.reachability import reachable_states
from repro.circuits.generators import random_controller


def _machine(seed):
    manager = Manager()
    fsm = compile_fsm(
        manager, random_controller(seed, state_bits=4, input_bits=2)
    )
    return manager, fsm


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_reached_set_is_a_fixpoint(seed):
    """R contains the initial state and is closed under image."""
    manager, fsm = _machine(seed)
    reached = reachable_states(fsm).reached
    assert manager.leq(fsm.init_cube, reached)
    assert manager.leq(image_by_relation(fsm, reached), reached)


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_image_monotone(seed):
    """S ⊆ T implies Img(S) ⊆ Img(T)."""
    manager, fsm = _machine(seed)
    rng = random.Random(seed)
    small = fsm.init_cube
    big = manager.or_(
        small,
        manager.cube_ref(
            {
                level: bool(rng.getrandbits(1))
                for level in fsm.current_levels
            }
        ),
    )
    assert manager.leq(
        image_by_relation(fsm, small), image_by_relation(fsm, big)
    )


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_image_preimage_galois_connection(seed):
    """Img(S) ∩ T ≠ ∅  ⇔  S ∩ Pre(T) ≠ ∅ (adjointness)."""
    manager, fsm = _machine(seed)
    rng = random.Random(seed * 31 + 7)
    source = fsm.init_cube
    target = manager.cube_ref(
        {level: bool(rng.getrandbits(1)) for level in fsm.current_levels}
    )
    forward_hits = (
        manager.and_(image_by_relation(fsm, source), target) != ZERO
    )
    backward_hits = (
        manager.and_(source, preimage_by_relation(fsm, target)) != ZERO
    )
    assert forward_hits == backward_hits


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_image_distributes_over_union(seed):
    manager, fsm = _machine(seed)
    rng = random.Random(seed ^ 0xBEEF)
    first = manager.cube_ref(
        {level: bool(rng.getrandbits(1)) for level in fsm.current_levels}
    )
    second = manager.cube_ref(
        {level: bool(rng.getrandbits(1)) for level in fsm.current_levels}
    )
    union_image = image_by_relation(fsm, manager.or_(first, second))
    separate = manager.or_(
        image_by_relation(fsm, first), image_by_relation(fsm, second)
    )
    assert union_image == separate


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_relation_projection_consistency(seed):
    """Projecting the relation onto next-state vars = Img(ONE)."""
    manager, fsm = _machine(seed)
    relation = transition_relation(fsm)
    projected = manager.exists(
        relation, fsm.input_levels + fsm.current_levels
    )
    from_image = fsm.rename_current_to_next(image_by_relation(fsm, ONE))
    assert projected == from_image
