"""Tests for invariant checking and counterexample traces."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.fsm.machine import FsmSpec, LatchSpec, OutputSpec, compile_fsm
from repro.fsm.product import compile_product
from repro.fsm.verify import (
    Trace,
    build_trace,
    check_invariant,
    equivalence_counterexample_trace,
)
from repro.circuits.generators import (
    counter,
    johnson_counter,
    traffic_light_controller,
)


def _replay(fsm, trace):
    """Re-simulate a trace's inputs and return the visited states."""
    visited = [
        {
            name: value
            for name, value in zip(fsm.latch_names, fsm.init_values)
        }
    ]
    state = dict(zip(fsm.current_levels, fsm.init_values))
    for step_inputs in trace.inputs:
        assignment = dict(state)
        for name, value in step_inputs.items():
            position = fsm.input_names.index(name)
            assignment[fsm.input_levels[position]] = value
        state = {
            level: fsm.manager.eval(fn, assignment)
            for level, fn in zip(fsm.current_levels, fsm.next_fns)
        }
        visited.append(
            {
                name: state[level]
                for name, level in zip(fsm.latch_names, fsm.current_levels)
            }
        )
    return visited


class TestCheckInvariant:
    def test_holding_invariant(self):
        """The TLC's mutual-exclusion property holds."""
        manager = Manager()
        fsm = compile_fsm(manager, traffic_light_controller())
        both_green = manager.and_(
            fsm.output_fns["highway_go"], fsm.output_fns["farm_go"]
        )
        result = check_invariant(fsm, both_green ^ 1)
        assert result.holds
        assert result.trace is None
        assert bool(result)

    def test_violated_invariant_produces_trace(self):
        """'Counter never reaches 3' is violated after 3 enabled steps."""
        manager = Manager()
        fsm = compile_fsm(manager, counter(2))
        q0 = manager.var(fsm.current_levels[0])
        q1 = manager.var(fsm.current_levels[1])
        at_three = manager.and_(q0, q1)
        result = check_invariant(fsm, at_three ^ 1)
        assert not result.holds
        trace = result.trace
        assert trace is not None
        assert len(trace) == 3  # minimal-length counterexample
        # Final state is the violation.
        assert trace.states[-1] == {"q0": True, "q1": True}

    def test_trace_replays_correctly(self):
        """The generated input sequence actually drives the machine."""
        manager = Manager()
        fsm = compile_fsm(manager, counter(3))
        target = manager.and_many(
            [manager.var(level) for level in fsm.current_levels]
        )
        result = check_invariant(fsm, target ^ 1)
        assert not result.holds
        replayed = _replay(fsm, result.trace)
        assert replayed == result.trace.states
        assert replayed[-1] == {"q0": True, "q1": True, "q2": True}

    def test_unreachable_violation_is_fine(self):
        """Johnson counters never reach non-code states."""
        manager = Manager()
        fsm = compile_fsm(manager, johnson_counter(3))
        # 101 is not a Johnson code word from reset 000.
        q = [manager.var(level) for level in fsm.current_levels]
        bad = manager.and_many([q[0], q[1] ^ 1, q[2]])
        result = check_invariant(fsm, bad ^ 1)
        assert result.holds

    def test_max_iterations(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(4))
        top = manager.and_many(
            [manager.var(level) for level in fsm.current_levels]
        )
        result = check_invariant(fsm, top ^ 1, max_iterations=2)
        assert result.holds  # truncated before the violation is found
        assert result.iterations == 2

    def test_initial_state_violation(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(2))
        result = check_invariant(fsm, ZERO)  # nothing is allowed
        assert not result.holds
        assert len(result.trace) == 0

    def test_render(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(2))
        at_one = manager.and_(
            manager.var(fsm.current_levels[0]),
            manager.var(fsm.current_levels[1]) ^ 1,
        )
        result = check_invariant(fsm, at_one ^ 1)
        text = result.trace.render()
        assert "state 0" in text
        assert "inputs" in text


class TestTraceMinimality:
    def test_bfs_traces_are_shortest(self):
        """Onion-ring reconstruction yields a shortest counterexample.

        Cross-checked against explicit breadth-first search over the
        concrete state graph of a small machine.
        """
        manager = Manager()
        fsm = compile_fsm(manager, counter(3))
        # Explicit BFS distances over (state value) with en in {0,1}.
        distances = {0: 0}
        frontier = [0]
        while frontier:
            new_frontier = []
            for value in frontier:
                for enabled in (0, 1):
                    successor = (value + enabled) % 8
                    if successor not in distances:
                        distances[successor] = distances[value] + 1
                        new_frontier.append(successor)
            frontier = new_frontier
        for target_value in range(1, 8):
            target = manager.cube_ref(
                {
                    level: bool((target_value >> index) & 1)
                    for index, level in enumerate(fsm.current_levels)
                }
            )
            result = check_invariant(fsm, target ^ 1)
            assert not result.holds
            assert len(result.trace) == distances[target_value], target_value


class TestBuildTrace:
    def test_bad_target_rejected(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(2))
        with pytest.raises(ValueError):
            build_trace(fsm, [fsm.init_cube], ZERO)


class TestEquivalenceTrace:
    def test_none_for_equivalent_machines(self):
        manager = Manager()
        spec = counter(3)
        product = compile_product(manager, spec, spec)
        assert equivalence_counterexample_trace(product) is None

    def test_trace_distinguishes_machines(self):
        """The trace's inputs produce different outputs on the two."""
        left = FsmSpec(
            "late",
            ("en",),
            (LatchSpec("q0", "q0 ^ en"), LatchSpec("q1", "q1 ^ (q0 & en)")),
            (OutputSpec("o", "q1"),),
        )
        right = FsmSpec(
            "early",
            ("en",),
            (LatchSpec("q0", "q0 ^ en"), LatchSpec("q1", "q1 ^ q0")),
            (OutputSpec("o", "q1"),),
        )
        manager = Manager()
        product = compile_product(manager, left, right)
        trace = equivalence_counterexample_trace(product)
        assert trace is not None
        # Replay the inputs on both machines separately and compare the
        # output under the final (distinguishing) input.
        manager_left, manager_right = Manager(), Manager()
        fsm_left = compile_fsm(manager_left, left)
        fsm_right = compile_fsm(manager_right, right)
        out_left = fsm_left.simulate(trace.inputs)
        out_right = fsm_right.simulate(trace.inputs)
        assert out_left[-1] != out_right[-1]
