"""Tests for the combinational netlist substrate."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.netlist import Netlist


@pytest.fixture
def manager():
    return Manager(["a", "b", "c"])


def _inputs(manager):
    return {name: manager.var(name) for name in ("a", "b", "c")}


def test_simple_gates(manager):
    netlist = Netlist()
    for name in ("a", "b", "c"):
        netlist.add_input(name)
    netlist.add_gate("x", "AND", ["a", "b"])
    netlist.add_gate("y", "OR", ["x", "c"])
    netlist.add_gate("z", "NOT", ["y"])
    values = netlist.to_bdds(manager, _inputs(manager))
    a, b, c = (manager.var(name) for name in ("a", "b", "c"))
    assert values["x"] == manager.and_(a, b)
    assert values["y"] == manager.or_(manager.and_(a, b), c)
    assert values["z"] == values["y"] ^ 1


def test_all_operators(manager):
    netlist = Netlist()
    for name in ("a", "b", "c"):
        netlist.add_input(name)
    netlist.add_gate("nand2", "NAND", ["a", "b"])
    netlist.add_gate("nor2", "NOR", ["a", "b"])
    netlist.add_gate("xor2", "XOR", ["a", "b"])
    netlist.add_gate("xnor2", "XNOR", ["a", "b"])
    netlist.add_gate("buf1", "BUF", ["a"])
    netlist.add_gate("mux1", "MUX", ["a", "b", "c"])
    netlist.add_gate("k0", "CONST0", [])
    netlist.add_gate("k1", "CONST1", [])
    values = netlist.to_bdds(manager, _inputs(manager))
    a, b, c = (manager.var(name) for name in ("a", "b", "c"))
    assert values["nand2"] == manager.and_(a, b) ^ 1
    assert values["nor2"] == manager.or_(a, b) ^ 1
    assert values["xor2"] == manager.xor(a, b)
    assert values["xnor2"] == manager.xnor(a, b)
    assert values["buf1"] == a
    assert values["mux1"] == manager.ite(a, b, c)
    assert values["k0"] == ZERO
    assert values["k1"] == ONE


def test_def_before_use_enforced(manager):
    netlist = Netlist()
    netlist.add_input("a")
    with pytest.raises(ValueError):
        netlist.add_gate("x", "AND", ["a", "ghost"])


def test_duplicate_signal_rejected(manager):
    netlist = Netlist()
    netlist.add_input("a")
    with pytest.raises(ValueError):
        netlist.add_input("a")
    netlist.add_gate("x", "NOT", ["a"])
    with pytest.raises(ValueError):
        netlist.add_gate("x", "BUF", ["a"])


def test_arity_checked(manager):
    netlist = Netlist()
    netlist.add_input("a")
    with pytest.raises(ValueError):
        netlist.add_gate("x", "NOT", ["a", "a"])
    with pytest.raises(ValueError):
        netlist.add_gate("y", "MUX", ["a"])
    with pytest.raises(ValueError):
        netlist.add_gate("z", "AND", [])
    with pytest.raises(ValueError):
        netlist.add_gate("w", "FROB", ["a"])


def test_missing_input_ref(manager):
    netlist = Netlist()
    netlist.add_input("a")
    with pytest.raises(KeyError):
        netlist.to_bdds(manager, {})


def test_signals_property(manager):
    netlist = Netlist()
    netlist.add_input("a")
    netlist.add_gate("x", "NOT", ["a"])
    assert netlist.signals == ["a", "x"]


def test_inputs_may_be_arbitrary_functions(manager):
    """Latch feedback: inputs can be any BDD, not just variables."""
    netlist = Netlist()
    netlist.add_input("s")
    netlist.add_gate("n", "NOT", ["s"])
    a, b = manager.var("a"), manager.var("b")
    values = netlist.to_bdds(manager, {"s": manager.and_(a, b)})
    assert values["n"] == manager.and_(a, b) ^ 1
