"""Tests for FSM specs, compilation, and simulation."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.function import Function
from repro.fsm.machine import (
    Fsm,
    FsmSpec,
    LatchSpec,
    OutputSpec,
    compile_fsm,
)


def toggler_spec():
    return FsmSpec(
        name="toggle",
        inputs=("en",),
        latches=(LatchSpec("q", "q ^ en"),),
        outputs=(OutputSpec("out", "q"),),
    )


class TestSpecValidation:
    def test_duplicate_signal_names(self):
        with pytest.raises(ValueError):
            FsmSpec("bad", ("a",), (LatchSpec("a", "a"),), ())

    def test_duplicate_output_names(self):
        with pytest.raises(ValueError):
            FsmSpec(
                "bad",
                ("a",),
                (),
                (OutputSpec("o", "a"), OutputSpec("o", "~a")),
            )

    def test_num_state_bits(self):
        assert toggler_spec().num_state_bits == 1


class TestCompile:
    def test_variable_allocation_adjacent(self):
        manager = Manager()
        fsm = compile_fsm(manager, toggler_spec())
        assert fsm.next_levels[0] == fsm.current_levels[0] + 1

    def test_next_function(self):
        manager = Manager()
        fsm = compile_fsm(manager, toggler_spec())
        en = manager.var(fsm.input_levels[0])
        q = manager.var(fsm.current_levels[0])
        assert fsm.next_fns[0] == manager.xor(q, en)

    def test_init_cube(self):
        manager = Manager()
        fsm = compile_fsm(manager, toggler_spec())
        q_level = fsm.current_levels[0]
        assert fsm.init_cube == manager.cube_ref({q_level: False})

    def test_callable_spec_fn(self):
        def next_q(env):
            return env["q"] ^ env["en"]

        spec = FsmSpec(
            "toggle",
            ("en",),
            (LatchSpec("q", next_q),),
            (OutputSpec("out", lambda env: env["q"]),),
        )
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        en = manager.var(fsm.input_levels[0])
        q = manager.var(fsm.current_levels[0])
        assert fsm.next_fns[0] == manager.xor(q, en)

    def test_callable_must_return_function(self):
        spec = FsmSpec(
            "bad", ("a",), (LatchSpec("q", lambda env: 42),), ()
        )
        with pytest.raises(TypeError):
            compile_fsm(Manager(), spec)

    def test_callable_foreign_manager_rejected(self):
        foreign = Manager(["z"])

        def bad(env):
            return Function(foreign, foreign.var("z"))

        spec = FsmSpec("bad", ("a",), (LatchSpec("q", bad),), ())
        with pytest.raises(ValueError):
            compile_fsm(Manager(), spec)

    def test_unknown_signal_in_expression(self):
        spec = FsmSpec("bad", ("a",), (LatchSpec("q", "zz | a"),), ())
        with pytest.raises(KeyError):
            compile_fsm(Manager(), spec)

    def test_prefix_namespaces_manager_names(self):
        manager = Manager()
        compile_fsm(manager, toggler_spec(), prefix="m1.")
        assert "m1.q" in manager.var_names


class TestRename:
    def test_roundtrip(self):
        manager = Manager()
        fsm = compile_fsm(manager, toggler_spec())
        q = manager.var(fsm.current_levels[0])
        primed = fsm.rename_current_to_next(q)
        assert primed == manager.var(fsm.next_levels[0])
        assert fsm.rename_next_to_current(primed) == q


class TestSimulate:
    def test_toggler_trace(self):
        manager = Manager()
        fsm = compile_fsm(manager, toggler_spec())
        trace = fsm.simulate(
            [{"en": True}, {"en": False}, {"en": True}, {"en": True}]
        )
        assert [step["out"] for step in trace] == [False, True, True, False]

    def test_repr(self):
        manager = Manager()
        fsm = compile_fsm(manager, toggler_spec())
        assert "toggle" in repr(fsm)
