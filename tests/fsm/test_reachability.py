"""Tests for reachability, frontier minimization, and equivalence."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.registry import HEURISTICS
from repro.fsm.machine import FsmSpec, LatchSpec, OutputSpec, compile_fsm
from repro.fsm.image import image_by_constrain_range
from repro.fsm.product import compile_product
from repro.fsm.reachability import (
    check_equivalence,
    reachable_states,
)
from repro.circuits.generators import (
    counter,
    gray_counter,
    johnson_counter,
    lfsr,
    shift_register,
)


class TestReachableStates:
    def test_counter_reaches_everything(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(3))
        result = reachable_states(fsm)
        assert result.reached == ONE  # over state vars: all 8 states
        assert result.state_count(fsm) == 8

    def test_johnson_counter_reaches_2n_states(self):
        manager = Manager()
        bits = 4
        fsm = compile_fsm(manager, johnson_counter(bits))
        result = reachable_states(fsm)
        assert result.state_count(fsm) == 2 * bits

    def test_lfsr_avoids_zero_state(self):
        manager = Manager()
        fsm = compile_fsm(manager, lfsr(4))
        result = reachable_states(fsm)
        zero_state = manager.cube_ref(
            {level: False for level in fsm.current_levels}
        )
        assert manager.and_(result.reached, zero_state) == ZERO

    def test_max_iterations_truncates(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(4))
        result = reachable_states(fsm, max_iterations=2)
        assert result.iterations == 2
        assert result.state_count(fsm) < 16

    def test_every_heuristic_is_a_valid_frontier_minimizer(self):
        """Reachability result is identical under any cover choice."""
        manager = Manager()
        fsm = compile_fsm(manager, gray_counter(3))
        baseline = reachable_states(fsm).reached
        for name in ("constrain", "restrict", "osm_bt", "tsm_td", "sched"):
            other_manager = Manager()
            other_fsm = compile_fsm(other_manager, gray_counter(3))
            result = reachable_states(
                other_fsm, minimize=HEURISTICS[name]
            )
            assert result.state_count(other_fsm) == 8, name

    def test_invalid_minimizer_degrades(self):
        # A minimizer that drops required frontier states is caught by
        # the guard and degraded to the exact frontier: the traversal
        # still computes the exact reached set instead of crashing.
        manager = Manager()
        fsm = compile_fsm(manager, counter(3))

        def broken(mgr, f, c):
            return ZERO  # drops required frontier states

        exact = reachable_states(fsm)
        degraded = reachable_states(fsm, minimize=broken)
        assert degraded.reached == exact.reached
        assert degraded.state_count(fsm) == exact.state_count(fsm)

    def test_frontier_sizes_recorded(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(3))
        result = reachable_states(fsm)
        assert len(result.frontier_sizes) == len(result.minimized_sizes)
        assert all(size >= 1 for size in result.frontier_sizes)

    def test_constrain_range_image_gives_same_reached_set(self):
        manager = Manager()
        fsm = compile_fsm(manager, gray_counter(3))
        by_relation = reachable_states(fsm).reached
        manager2 = Manager()
        fsm2 = compile_fsm(manager2, gray_counter(3))
        by_range = reachable_states(
            fsm2, image=image_by_constrain_range
        ).reached
        assert manager.sat_count(by_relation, 8) == manager2.sat_count(
            by_range, 8
        )


class TestEquivalence:
    def test_machine_equivalent_to_itself(self):
        manager = Manager()
        spec = counter(3)
        product = compile_product(manager, spec, spec)
        result = check_equivalence(product)
        assert result.equivalent
        assert bool(result)
        assert result.counterexample is None

    def test_binary_vs_gray_counters_differ(self):
        """Different encodings with incompatible outputs: not equal."""
        manager = Manager()
        binary = counter(3, with_enable=True)
        gray = FsmSpec(
            name=gray_counter(3).name,
            inputs=("en",),
            latches=gray_counter(3).latches,
            outputs=(OutputSpec("rollover", "g0 & g1 & g2 & en"),),
        )
        product = compile_product(manager, binary, gray)
        result = check_equivalence(product)
        assert not result.equivalent
        assert result.counterexample is not None

    def test_equivalent_reencodings(self):
        """A shift register equals itself with renamed latches."""
        spec_a = shift_register(4)
        spec_b = FsmSpec(
            name="shadow",
            inputs=spec_a.inputs,
            latches=spec_a.latches,
            outputs=spec_a.outputs,
        )
        manager = Manager()
        product = compile_product(manager, spec_a, spec_b)
        assert check_equivalence(product).equivalent

    def test_inequivalent_initial_states(self):
        base = FsmSpec(
            "flip",
            ("en",),
            (LatchSpec("q", "q ^ en", init=False),),
            (OutputSpec("o", "q"),),
        )
        other = FsmSpec(
            "flop",
            ("en",),
            (LatchSpec("q", "q ^ en", init=True),),
            (OutputSpec("o", "q"),),
        )
        manager = Manager()
        product = compile_product(manager, base, other)
        result = check_equivalence(product)
        assert not result.equivalent

    def test_mismatched_inputs_rejected(self):
        manager = Manager()
        with pytest.raises(ValueError):
            compile_product(manager, counter(2), shift_register(2))

    def test_counterexample_is_reachable_state(self):
        manager = Manager()
        left = FsmSpec(
            "a", ("x",), (LatchSpec("q", "x"),), (OutputSpec("o", "q"),)
        )
        right = FsmSpec(
            "b", ("x",), (LatchSpec("q", "x"),), (OutputSpec("o", "~q"),)
        )
        product = compile_product(manager, left, right)
        result = check_equivalence(product)
        assert not result.equivalent
        # The counterexample is found at the very first frontier.
        assert result.iterations == 0
