"""Edge cases across the FSM layer."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.blif import BlifError, write_blif
from repro.fsm.machine import (
    Fsm,
    FsmSpec,
    LatchSpec,
    OutputSpec,
    compile_fsm,
)
from repro.fsm.product import ProductMachine, compile_product
from repro.fsm.reachability import check_equivalence, reachable_states
from repro.circuits.generators import counter, lfsr


class TestSimulateErrors:
    def test_unknown_input_name(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(2))
        with pytest.raises(KeyError) as excinfo:
            fsm.simulate([{"nope": True}])
        assert "en" in str(excinfo.value)


class TestInputlessMachines:
    def test_reachability_without_inputs(self):
        manager = Manager()
        fsm = compile_fsm(manager, lfsr(3))
        assert fsm.num_inputs == 0
        result = reachable_states(fsm)
        assert result.state_count(fsm) >= 1

    def test_equivalence_without_inputs(self):
        manager = Manager()
        spec = lfsr(3)
        product = compile_product(manager, spec, spec)
        assert check_equivalence(product).equivalent


class TestProductEdges:
    def test_output_count_mismatch(self):
        manager = Manager()
        left = FsmSpec(
            "l",
            ("x",),
            (LatchSpec("q", "x"),),
            (OutputSpec("o1", "q"), OutputSpec("o2", "~q")),
        )
        right = FsmSpec(
            "r", ("x",), (LatchSpec("q", "x"),), (OutputSpec("z", "q"),)
        )
        with pytest.raises(ValueError):
            compile_product(manager, left, right)

    def test_cross_manager_rejected(self):
        spec = counter(2)
        left = compile_fsm(Manager(), spec, prefix="a.")
        right = compile_fsm(Manager(), spec, prefix="b.")
        with pytest.raises(ValueError):
            ProductMachine(left, right)

    def test_asymmetric_latch_counts(self):
        """Machines with different state sizes still interleave."""
        small = FsmSpec(
            "s", ("x",), (LatchSpec("q", "x"),), (OutputSpec("o", "q"),)
        )
        big = FsmSpec(
            "b",
            ("x",),
            (
                LatchSpec("p0", "x"),
                LatchSpec("p1", "p0"),
                LatchSpec("p2", "p1"),
            ),
            (OutputSpec("o", "p0"),),
        )
        manager = Manager()
        product = compile_product(manager, small, big)
        result = check_equivalence(product)
        assert result.equivalent  # both output the delayed input by 1


class TestBlifWriterEdges:
    def test_machine_without_inputs(self):
        manager = Manager()
        fsm = compile_fsm(manager, lfsr(3))
        text = write_blif(fsm)
        assert ".inputs" not in text
        assert text.count(".latch") == 3

    def test_function_on_foreign_variable_rejected(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(2))
        rogue = manager.new_var("rogue")
        fsm.output_fns["bad"] = rogue
        with pytest.raises(BlifError):
            write_blif(fsm)

    def test_constant_next_state(self):
        spec = FsmSpec(
            "k", ("x",), (LatchSpec("q", "1"),), (OutputSpec("o", "q"),)
        )
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        text = write_blif(fsm)
        assert ".names q_next\n1" in text


class TestReachabilityResultApi:
    def test_state_count_respects_extra_vars(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(2))
        manager.new_var("unrelated")
        result = reachable_states(fsm)
        assert result.state_count(fsm) == 4
