"""Satellite: BDDs deeper than the interpreter recursion limit.

The recursive manager operations descend one variable level per call,
so a chain BDD over more variables than ``sys.getrecursionlimit()``
overflows a naive implementation.  The manager must either complete
(by retrying with a variable-count-bounded limit) or raise the typed
:class:`~repro.analysis.errors.RecursionBudgetExceeded` — a raw
:class:`RecursionError` must never escape.
"""

import sys

import pytest

from repro.analysis.errors import BudgetExceeded, RecursionBudgetExceeded
from repro.bdd.manager import Manager, ONE, ZERO


def _deep_manager(extra: int = 500):
    """A manager with more variables than the recursion limit."""
    depth = sys.getrecursionlimit() + extra
    manager = Manager()
    manager.ensure_vars(depth)
    return manager, depth


def _conjunction_chain(manager: Manager, depth: int) -> int:
    """AND of all variables, built iteratively (no recursion)."""
    acc = ONE
    for level in range(depth - 1, -1, -1):
        acc = manager.make_node(level, acc, ZERO)
    return acc


def _disjunction_chain(manager: Manager, depth: int) -> int:
    """OR of all variables, built iteratively."""
    acc = ZERO
    for level in range(depth - 1, -1, -1):
        acc = manager.make_node(level, ONE, acc)
    return acc


def _parity_chain(manager: Manager, depth: int) -> int:
    """XOR of all variables, built iteratively.

    Parity has no constant cofactor at any level, so an ITE against it
    cannot take a terminal shortcut: the recursion genuinely descends
    one frame per variable, which is what these tests need to provoke.
    """
    acc = ZERO
    for level in range(depth - 1, -1, -1):
        acc = manager.make_node(level, acc ^ 1, acc)
    return acc


class TestDeepBdds:
    def test_deep_ite_completes(self):
        manager, depth = _deep_manager()
        all_vars = _conjunction_chain(manager, depth)
        parity = _parity_chain(manager, depth)
        try:
            result = manager.and_(all_vars, parity)
        except RecursionError:  # pragma: no cover - the regression
            pytest.fail("raw RecursionError escaped from Manager.and_")
        # The only satisfying point of AND-of-all is all-ones, where
        # the parity of ``depth`` variables is ``depth % 2``.
        assert result == (all_vars if depth % 2 else ZERO)
        # The interpreter limit was restored after the bounded retry.
        assert sys.getrecursionlimit() < depth

    def test_deep_cofactor_completes(self):
        manager, depth = _deep_manager()
        all_vars = _conjunction_chain(manager, depth)
        positive = manager.cofactor(all_vars, 0, True)
        negative = manager.cofactor(all_vars, 0, False)
        assert negative == ZERO
        assert manager.level(positive) == 1

    def test_deep_quantification_completes(self):
        manager, depth = _deep_manager()
        all_vars = _conjunction_chain(manager, depth)
        quantified = manager.exists(all_vars, [0])
        assert manager.level(quantified) == 1

    def test_deep_sat_count_completes(self):
        manager, depth = _deep_manager()
        any_var = _disjunction_chain(manager, depth)
        count = manager.sat_count(any_var, depth)
        assert count == (1 << depth) - 1

    def test_low_cap_raises_typed_error(self):
        manager, depth = _deep_manager()
        # Forbid the retry from raising the limit far enough.
        manager.recursion_cap = sys.getrecursionlimit() + 10
        all_vars = _conjunction_chain(manager, depth)
        parity = _parity_chain(manager, depth)
        with pytest.raises(RecursionBudgetExceeded):
            manager.and_(all_vars, parity)
        # The typed error is a recoverable budget event, not a crash.
        assert issubclass(RecursionBudgetExceeded, BudgetExceeded)

    def test_limit_restored_after_typed_failure(self):
        limit = sys.getrecursionlimit()
        manager, depth = _deep_manager()
        manager.recursion_cap = limit + 10
        all_vars = _conjunction_chain(manager, depth)
        parity = _parity_chain(manager, depth)
        with pytest.raises(RecursionBudgetExceeded):
            manager.and_(all_vars, parity)
        assert sys.getrecursionlimit() == limit

    def test_shallow_operations_unaffected(self):
        manager = Manager(var_names=["a", "b"])
        conj = manager.and_(manager.var(0), manager.var(1))
        assert manager.size(conj) == 3
