"""Satellite: BDDs deeper than the interpreter recursion limit.

The operator kernels are iterative (explicit frame stacks), so depth is
heap-bounded: a chain BDD over more variables than
``sys.getrecursionlimit()`` must go through ``ite``, ``cofactor``,
quantification, ``sat_count`` and ``cubes`` *without* the interpreter
limit ever being touched.  These tests pin that down — and pin down
that the old limit-raising retry is really gone: the limit after a deep
operation is exactly the limit before it.
"""

import sys

import pytest

from repro.bdd.manager import Manager, ONE, ZERO


def _deep_manager(extra: int = 500):
    """A manager with more variables than the recursion limit."""
    depth = sys.getrecursionlimit() + extra
    manager = Manager()
    manager.ensure_vars(depth)
    return manager, depth


def _conjunction_chain(manager: Manager, depth: int) -> int:
    """AND of all variables, built iteratively (no recursion)."""
    acc = ONE
    for level in range(depth - 1, -1, -1):
        acc = manager.make_node(level, acc, ZERO)
    return acc


def _disjunction_chain(manager: Manager, depth: int) -> int:
    """OR of all variables, built iteratively."""
    acc = ZERO
    for level in range(depth - 1, -1, -1):
        acc = manager.make_node(level, ONE, acc)
    return acc


def _parity_chain(manager: Manager, depth: int) -> int:
    """XOR of all variables, built iteratively.

    Parity has no constant cofactor at any level, so an ITE against it
    cannot take a terminal shortcut: the kernel genuinely expands one
    frame per variable, which is what these tests need to provoke.
    """
    acc = ZERO
    for level in range(depth - 1, -1, -1):
        acc = manager.make_node(level, acc ^ 1, acc)
    return acc


class TestDeepBdds:
    def test_deep_ite_completes(self):
        limit_before = sys.getrecursionlimit()
        manager, depth = _deep_manager()
        all_vars = _conjunction_chain(manager, depth)
        parity = _parity_chain(manager, depth)
        try:
            result = manager.and_(all_vars, parity)
        except RecursionError:  # pragma: no cover - the regression
            pytest.fail("raw RecursionError escaped from Manager.and_")
        # The only satisfying point of AND-of-all is all-ones, where
        # the parity of ``depth`` variables is ``depth % 2``.
        assert result == (all_vars if depth % 2 else ZERO)
        # The iterative kernel never touches the interpreter limit.
        assert sys.getrecursionlimit() == limit_before

    def test_deep_cofactor_completes(self):
        manager, depth = _deep_manager()
        all_vars = _conjunction_chain(manager, depth)
        positive = manager.cofactor(all_vars, 0, True)
        negative = manager.cofactor(all_vars, 0, False)
        assert negative == ZERO
        assert manager.level(positive) == 1

    def test_deep_quantification_completes(self):
        manager, depth = _deep_manager()
        all_vars = _conjunction_chain(manager, depth)
        quantified = manager.exists(all_vars, [0])
        assert manager.level(quantified) == 1

    def test_deep_sat_count_completes(self):
        manager, depth = _deep_manager()
        any_var = _disjunction_chain(manager, depth)
        count = manager.sat_count(any_var, depth)
        assert count == (1 << depth) - 1

    def test_deep_cubes_completes(self):
        manager, depth = _deep_manager()
        all_vars = _conjunction_chain(manager, depth)
        cubes = list(manager.cubes(all_vars))
        assert len(cubes) == 1
        assert all(cubes[0][level] for level in range(depth))

    def test_deep_gc_completes(self):
        manager, depth = _deep_manager()
        all_vars = _conjunction_chain(manager, depth)
        scratch = _parity_chain(manager, depth)
        del scratch
        manager.gc((all_vars,))
        assert manager.statistics()["nodes_reclaimed"] >= depth - 1
        assert manager.cofactor(all_vars, 0, False) == ZERO

    def test_recursion_limit_never_raised(self):
        """Whole-module guard: the limit is a constant of the process."""
        limit_before = sys.getrecursionlimit()
        manager, depth = _deep_manager()
        all_vars = _conjunction_chain(manager, depth)
        parity = _parity_chain(manager, depth)
        manager.xor(all_vars, parity)
        manager.exists(parity, [0, 1, 2])
        manager.sat_count(all_vars, depth)
        assert sys.getrecursionlimit() == limit_before

    def test_shallow_operations_unaffected(self):
        manager = Manager(var_names=["a", "b"])
        conj = manager.and_(manager.var(0), manager.var(1))
        assert manager.size(conj) == 3
