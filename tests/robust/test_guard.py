"""Tests for guarded heuristic execution and graceful degradation."""

import pytest

from repro.analysis.errors import (
    ContractError,
    InvariantError,
    NodeBudgetExceeded,
)
from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.ispec import ISpec
from repro.core.registry import HEURISTICS
from repro.core.sibling import constrain
from repro.robust.governor import Budget
from repro.robust.guard import (
    DEFAULT_LADDER,
    GuardedHeuristic,
    guard,
    guarding_enabled,
)


def _instance():
    """A small non-trivial [f, c] instance."""
    manager = Manager(var_names=["a", "b", "c", "d"])
    a, b, c, d = (manager.var(level) for level in range(4))
    f = manager.or_(manager.and_(a, b), manager.and_(c, d))
    care = manager.or_(a, b)
    return manager, f, care


class TestDegradation:
    def test_budget_trip_degrades_to_identity(self):
        manager, f, c = _instance()
        guarded = guard(
            HEURISTICS["osm_bt"], name="osm_bt", budget=Budget(max_steps=1)
        )
        cover = guarded(manager, f, c)
        assert cover == f
        assert guarded.failures == 1
        assert "StepBudgetExceeded" in guarded.last_failure

    def test_identity_fallback_is_a_cover(self):
        manager, f, c = _instance()
        guarded = guard(
            HEURISTICS["constrain"], budget=Budget(max_steps=1)
        )
        cover = guarded(manager, f, c)
        assert ISpec(manager, f, c).is_cover(cover)

    def test_success_passes_through(self):
        manager, f, c = _instance()
        guarded = guard(HEURISTICS["osm_bt"], name="osm_bt")
        cover = guarded(manager, f, c)
        assert ISpec(manager, f, c).is_cover(cover)
        assert guarded.failures == 0
        assert guarded.last_failure is None
        assert guarded.calls == 1

    def test_non_cover_result_degrades(self):
        manager, f, c = _instance()
        guarded = guard(lambda mgr, ff, cc: ZERO, name="broken")
        cover = guarded(manager, f, c)
        assert cover == f
        assert "non-cover" in guarded.last_failure

    def test_verify_false_trusts_the_heuristic(self):
        manager, f, c = _instance()
        guarded = guard(lambda mgr, ff, cc: ZERO, verify=False)
        assert guarded(manager, f, c) == ZERO

    def test_programming_errors_propagate(self):
        manager, f, c = _instance()

        def crashes(mgr, ff, cc):
            raise ValueError("a genuine bug")

        guarded = guard(crashes)
        with pytest.raises(ValueError):
            guarded(manager, f, c)

    def test_on_failure_callback(self):
        manager, f, c = _instance()
        seen = []
        guarded = guard(
            HEURISTICS["osm_bt"],
            name="osm_bt",
            budget=Budget(max_steps=1),
            on_failure=lambda name, reason: seen.append((name, reason)),
        )
        guarded(manager, f, c)
        assert len(seen) == 1
        assert seen[0][0] == "osm_bt"
        assert "StepBudgetExceeded" in seen[0][1]

    def test_recursion_error_degrades(self):
        manager, f, c = _instance()

        def overflows(mgr, ff, cc):
            raise RecursionError

        guarded = guard(overflows)
        assert guarded(manager, f, c) == f
        assert "RecursionError" in guarded.last_failure


class TestLadder:
    def test_escalation_succeeds_at_higher_rung(self):
        manager, f, c = _instance()
        attempts = []

        def needs_room(mgr, ff, cc):
            budget = mgr.step_hook.budget
            attempts.append(budget.max_nodes)
            if budget.max_nodes < 10:
                raise NodeBudgetExceeded("needs at least 10")
            return constrain(mgr, ff, cc)

        guarded = guard(
            needs_room, budget=Budget(max_nodes=1), escalate=True
        )
        cover = guarded(manager, f, c)
        # Rungs 1 and 4 fail, rung 16 succeeds: no degradation recorded.
        assert attempts == [1, 4, 16]
        assert guarded.failures == 0
        assert ISpec(manager, f, c).is_cover(cover)

    def test_exhausted_ladder_degrades(self):
        manager, f, c = _instance()
        guarded = guard(
            HEURISTICS["osm_bt"],
            budget=Budget(max_steps=1),
            escalate=True,
        )
        # Even 16x a one-step budget is nowhere near enough here.
        assert guarded(manager, f, c) == f
        assert guarded.failures == 1

    def test_deterministic_failures_skip_the_ladder(self):
        manager, f, c = _instance()
        attempts = []

        def always_wrong(mgr, ff, cc):
            attempts.append(1)
            raise InvariantError("deterministic bug")

        guarded = guard(
            always_wrong, budget=Budget(max_nodes=1), escalate=True
        )
        assert guarded(manager, f, c) == f
        assert len(attempts) == 1  # no retries: a bug stays a bug
        assert "InvariantError" in guarded.last_failure

    def test_ladder_requires_entries(self):
        with pytest.raises(ValueError):
            GuardedHeuristic(constrain, ladder=())


class TestGuardFactory:
    def test_idempotent_without_overrides(self):
        guarded = guard(HEURISTICS["osm_bt"])
        assert guard(guarded) is guarded

    def test_rewrap_with_budget(self):
        guarded = guard(HEURISTICS["osm_bt"])
        rewrapped = guard(guarded, budget=Budget(max_nodes=5))
        assert rewrapped is not guarded
        assert rewrapped.budget.max_nodes == 5

    def test_escalate_uses_default_ladder(self):
        guarded = guard(
            HEURISTICS["osm_bt"], budget=Budget(max_nodes=1), escalate=True
        )
        assert guarded.ladder == DEFAULT_LADDER

    def test_name_and_repr(self):
        guarded = guard(HEURISTICS["osm_bt"], name="osm_bt")
        assert guarded.__name__ == "guarded:osm_bt"
        assert "osm_bt" in repr(guarded)

    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUARD", raising=False)
        assert not guarding_enabled()
        monkeypatch.setenv("REPRO_GUARD", "1")
        assert guarding_enabled()

    def test_registry_dispatch_guards_under_env(self, monkeypatch):
        from repro.core.registry import get_heuristic

        monkeypatch.setenv("REPRO_GUARD", "1")
        heuristic = get_heuristic("osm_bt")
        assert isinstance(heuristic, GuardedHeuristic)
        monkeypatch.delenv("REPRO_GUARD")
        assert not isinstance(get_heuristic("osm_bt"), GuardedHeuristic)

    def test_registry_budget_implies_guarding(self):
        from repro.core.registry import get_heuristic

        heuristic = get_heuristic("osm_bt", budget=Budget(max_steps=1))
        assert isinstance(heuristic, GuardedHeuristic)
        manager, f, c = _instance()
        assert heuristic(manager, f, c) == f
        assert heuristic.failures == 1


class TestAttemptAccounting:
    def test_attempts_count_ladder_rungs(self):
        manager, f, c = _instance()
        guarded = guard(
            HEURISTICS["osm_bt"],
            budget=Budget(max_steps=1),
            escalate=True,
        )
        guarded(manager, f, c)
        assert guarded.last_attempts == len(DEFAULT_LADDER)
        assert guarded.attempts == len(DEFAULT_LADDER)
        guarded(manager, f, c)
        assert guarded.attempts == 2 * len(DEFAULT_LADDER)

    def test_success_uses_one_attempt(self):
        manager, f, c = _instance()
        guarded = guard(HEURISTICS["osm_bt"])
        guarded(manager, f, c)
        assert guarded.attempts == 1
        assert guarded.last_attempts == 1

    def test_reason_names_the_failing_rung_and_budget(self):
        manager, f, c = _instance()
        guarded = guard(
            HEURISTICS["osm_bt"],
            budget=Budget(max_steps=1),
            ladder=(1.0, 4.0),
        )
        guarded(manager, f, c)
        assert "StepBudgetExceeded" in guarded.last_failure
        assert "[rung 2/2" in guarded.last_failure
        assert "steps<=4" in guarded.last_failure

    def test_unbudgeted_reason_stays_bare(self):
        manager, f, c = _instance()
        guarded = guard(lambda mgr, ff, cc: ZERO, name="broken")
        guarded(manager, f, c)
        assert "rung" not in guarded.last_failure


class TestGuardConflicts:
    def test_conflicting_verify_raises(self):
        guarded = guard(HEURISTICS["osm_bt"])
        with pytest.raises(ValueError, match="verify"):
            guard(guarded, verify=False)

    def test_conflicting_escalate_raises(self):
        guarded = guard(HEURISTICS["osm_bt"])
        with pytest.raises(ValueError, match="escalate"):
            guard(guarded, escalate=True)

    def test_conflicting_ladder_raises(self):
        guarded = guard(HEURISTICS["osm_bt"])
        with pytest.raises(ValueError, match="ladder"):
            guard(guarded, ladder=(1.0, 2.0))

    def test_conflicting_name_raises(self):
        guarded = guard(HEURISTICS["osm_bt"], name="osm_bt")
        with pytest.raises(ValueError, match="name"):
            guard(guarded, name="other")

    def test_conflicting_on_failure_raises(self):
        guarded = guard(HEURISTICS["osm_bt"])
        with pytest.raises(ValueError, match="on_failure"):
            guard(guarded, on_failure=lambda name, reason: None)

    def test_matching_overrides_stay_idempotent(self):
        guarded = guard(HEURISTICS["osm_bt"], name="osm_bt")
        assert guard(guarded, name="osm_bt") is guarded
        assert guard(guarded, verify=True) is guarded

    def test_budget_override_always_rewraps(self):
        guarded = guard(HEURISTICS["osm_bt"])
        rewrapped = guard(
            guarded, budget=Budget(max_nodes=5), verify=False
        )
        assert rewrapped is not guarded
        assert rewrapped.verify is False
