"""Tests for the seeded chaos schedules and the load harness."""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.robust.chaos import (
    CHAOS_CORRUPT,
    CHAOS_KILL,
    CHAOS_KINDS,
    CHAOS_STALL,
    FAULT_SCHEDULES,
    ChaosEvent,
    ChaosInjector,
    ChaosSchedule,
    LoadConfig,
    LoadReport,
    corrupt_payload,
    named_schedule,
    run_loadtest,
)
from repro.bdd.wire import WireError, deserialize_instance, serialize_instance
from repro.bdd.manager import Manager
from repro.serve.pool import MinimizationPool

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos drills require the fork start method",
)

#: A small, fast configuration shared by the live drills.
SMALL = dict(
    requests=30,
    concurrency=4,
    workers=2,
    deadline=1.0,
    stall_seconds=0.3,
    instance_pool=4,
    spike_bytes=16 << 20,
    probe_interval=0.3,
)


class TestSchedules:
    def test_generate_is_deterministic_in_seed(self):
        rates = {CHAOS_KILL: 0.1, CHAOS_CORRUPT: 0.2}
        one = ChaosSchedule.generate("drill", 7, 100, rates)
        two = ChaosSchedule.generate("drill", 7, 100, rates)
        assert one.events == two.events
        other = ChaosSchedule.generate("drill", 8, 100, rates)
        assert other.events != one.events

    def test_generate_respects_rates(self):
        schedule = ChaosSchedule.generate(
            "drill", 1, 200, {CHAOS_KILL: 0.05, CHAOS_STALL: 0.10}
        )
        assert schedule.counts[CHAOS_KILL] == 10
        assert schedule.counts[CHAOS_STALL] == 20
        assert schedule.counts[CHAOS_CORRUPT] == 0
        # Events are keyed on admission sequence, all in range.
        assert all(0 <= e.at_request < 200 for e in schedule.events)

    def test_due_returns_kinds_for_sequence(self):
        schedule = ChaosSchedule(
            "drill",
            (
                ChaosEvent(3, CHAOS_KILL),
                ChaosEvent(3, CHAOS_CORRUPT),
                ChaosEvent(5, CHAOS_STALL),
            ),
        )
        assert sorted(schedule.due(3)) == [CHAOS_CORRUPT, CHAOS_KILL]
        assert schedule.due(5) == [CHAOS_STALL]
        assert schedule.due(4) == []

    def test_named_schedules_cover_catalogue(self):
        for name in FAULT_SCHEDULES:
            schedule = named_schedule(name, seed=3, requests=50)
            assert schedule.name == name
        with pytest.raises(ValueError):
            named_schedule("no_such", seed=3, requests=50)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(0, "earthquake")
        with pytest.raises(ValueError):
            ChaosEvent(-1, CHAOS_KILL)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosSchedule.generate("drill", 0, 10, {CHAOS_KILL: 1.5})


class TestCorruption:
    def test_corrupt_payload_breaks_crc(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        payload = serialize_instance(manager, manager.and_(a, b), a)
        corrupted = corrupt_payload(payload, random.Random(0))
        assert corrupted != payload
        assert len(corrupted) == len(payload)
        with pytest.raises(WireError):
            deserialize_instance(corrupted)
        # The original is untouched (corruption is on-the-wire only).
        deserialize_instance(payload)

    def test_corrupt_is_deterministic_in_rng(self):
        payload = b"\x00" * 64
        one = corrupt_payload(payload, random.Random(9))
        two = corrupt_payload(payload, random.Random(9))
        assert one == two


@needs_fork
class TestInjector:
    def test_kill_worker_targets_live_pid(self):
        with MinimizationPool(workers=2) as pool:
            before = set(pool.worker_pids())
            injector = ChaosInjector(pool, seed=1)
            victim = injector.kill_worker()
            assert victim in before
            assert injector.kills == 1

    def test_stall_and_release_resume_worker(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        f = manager.and_(a, b)
        with MinimizationPool(workers=1, deadline=5.0) as pool:
            injector = ChaosInjector(pool, seed=1, stall_seconds=30.0)
            assert injector.stall_worker() is not None
            injector.release()
            # After release the worker is running again and serves.
            result = pool.minimize(manager, f, a, method="f_orig")
            assert result.ok

    def test_victim_selection_is_seeded(self):
        with MinimizationPool(workers=2) as pool:
            one = ChaosInjector(pool, seed=5)
            two = ChaosInjector(pool, seed=5)
            assert one._victim() == two._victim()


class TestLoadReport:
    def test_accounting_violation_detected(self):
        report = LoadReport(schedule="calm", config=LoadConfig(requests=10))
        report.completed_ok = 4  # 6 requests vanished
        problems = report.violations()
        assert any("unaccounted" in message for message in problems)

    def test_invalid_cover_and_untyped_are_violations(self):
        report = LoadReport(schedule="calm", config=LoadConfig(requests=1))
        report.completed_ok = 1
        report.invalid_covers = 1
        report.untyped_rejections = 1
        report.unhandled_exceptions = 1
        problems = report.violations()
        assert len(problems) == 3

    def test_bounds_are_optional_gates(self):
        report = LoadReport(schedule="calm", config=LoadConfig(requests=2))
        report.completed_ok = 1
        report.shed_overload = 1
        report.latencies = [0.5]
        assert report.violations() == []
        assert report.violations(max_p99=0.1)
        assert report.violations(max_shed_rate=0.25)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(requests=0)
        with pytest.raises(ValueError):
            LoadConfig(concurrency=0)
        with pytest.raises(ValueError):
            LoadConfig(methods=())


@needs_fork
class TestLiveDrills:
    def _run(self, name: str) -> LoadReport:
        config = LoadConfig(**SMALL)
        schedule = named_schedule(name, config.seed, config.requests)
        return run_loadtest(config, schedule)

    def test_calm_schedule_all_complete(self):
        report = self._run("calm")
        assert report.completed_ok == report.requests
        assert report.shed == 0
        assert report.violations() == []
        record = report.to_record()
        assert record["invalid_covers"] == 0
        assert record["schedule"] == "calm"

    def test_corrupt_schedule_degrades_typed(self):
        report = self._run("corrupt")
        # Every corrupted request degrades (CRC catches the flip) but
        # still yields a valid identity cover for the caller.
        assert report.degraded >= 1
        assert report.violations() == []

    def test_kill_schedule_survives_worker_loss(self):
        report = self._run("kills")
        assert report.injected_kills >= 1
        assert report.finished + report.shed == report.requests
        assert report.violations() == []

    def test_mixed_schedule_holds_all_invariants(self):
        report = self._run("mixed")
        assert report.violations() == []
        assert report.invalid_covers == 0
        assert report.unhandled_exceptions == 0
