"""Tests for deterministic fault injection (FaultyManager drills)."""

import pytest

from repro.analysis.errors import NodeBudgetExceeded
from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.ispec import ISpec
from repro.core.sibling import constrain
from repro.robust.faults import (
    FAULT_BUDGET,
    FAULT_CACHE,
    FAULT_RECURSION,
    FaultPlan,
    FaultyManager,
)
from repro.robust.guard import guard


def _build_instance(manager):
    a, b, c, d = (manager.var(level) for level in range(4))
    f = manager.or_(manager.and_(a, b), manager.and_(c, d))
    care = manager.or_(a, b)
    return f, care


def _faulty(kind, at, repeat=False, armed=False):
    manager = FaultyManager(
        var_names=["a", "b", "c", "d"],
        plan=FaultPlan(kind, at, repeat=repeat),
        armed=armed,
    )
    return manager


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan("typo", 1)
        with pytest.raises(ValueError):
            FaultPlan(FAULT_BUDGET, 0)
        plan = FaultPlan(FAULT_CACHE, 3, repeat=True)
        assert plan.kind == FAULT_CACHE
        assert plan.repeat


class TestBudgetFault:
    def test_fires_at_scheduled_operation(self):
        manager = _faulty(FAULT_BUDGET, at=1)
        f, c = _build_instance(manager)
        manager.armed = True
        with pytest.raises(NodeBudgetExceeded):
            constrain(manager, f, c)
        assert manager.faults_fired == 1

    def test_deterministic_across_runs(self):
        fired_at = []
        for _ in range(2):
            manager = _faulty(FAULT_BUDGET, at=1)
            f, c = _build_instance(manager)
            setup = manager.operations
            manager.armed = True
            with pytest.raises(NodeBudgetExceeded) as info:
                constrain(manager, f, c)
            fired_at.append((setup, str(info.value)))
        assert fired_at[0] == fired_at[1]

    def test_one_shot_fires_once(self):
        manager = _faulty(FAULT_BUDGET, at=1)
        f, c = _build_instance(manager)
        manager.armed = True
        with pytest.raises(NodeBudgetExceeded):
            constrain(manager, f, c)
        # The fault is spent; the operation now completes.
        cover = constrain(manager, f, c)
        assert ISpec(manager, f, c).is_cover(cover)
        assert manager.faults_fired == 1


class TestRecursionFault:
    def test_raw_error_propagates(self):
        # The iterative kernels never recurse, so nothing inside the
        # manager absorbs a RecursionError any more: it propagates raw,
        # to be caught by the degradation layer (next test).
        manager = _faulty(FAULT_RECURSION, at=1)
        f, c = _build_instance(manager)
        manager.armed = True
        with pytest.raises(RecursionError):
            manager.and_(f, c)
        assert manager.faults_fired == 1

    def test_retry_succeeds_after_one_shot(self):
        # One-shot: the fault is spent on the first attempt, so the
        # caller's own retry — the path RECOVERABLE_ERRORS drills —
        # completes and agrees with the unfaulted reference.
        manager = _faulty(FAULT_RECURSION, at=1)
        f, c = _build_instance(manager)
        reference = manager.and_(f, c)
        manager.clear_caches()
        manager.armed = True
        with pytest.raises(RecursionError):
            manager.and_(f, c)
        assert manager.and_(f, c) == reference
        assert manager.faults_fired == 1

    def test_guard_degrades_through_recursion_failure(self):
        # End to end: the guard layer treats RecursionError as a
        # recoverable failure and falls back to the identity cover.
        manager = _faulty(FAULT_RECURSION, at=1, repeat=True)
        f, c = _build_instance(manager)
        manager.armed = True
        guarded = guard(constrain, name="constrain")
        cover = guarded(manager, f, c)
        assert cover == f
        assert "RecursionError" in guarded.last_failure


class TestCacheFault:
    def test_corruption_flips_cached_results(self):
        manager = _faulty(FAULT_CACHE, at=1)
        a, b = manager.var(0), manager.var(1)
        reference = manager.and_(a, b)
        manager.armed = True
        # The next ITE step fires the corruption, then hits the cache.
        corrupted = manager.and_(a, b)
        assert corrupted == reference ^ 1
        assert manager.faults_fired == 1

    def test_clear_caches_cures_corruption(self):
        manager = _faulty(FAULT_CACHE, at=1)
        a, b = manager.var(0), manager.var(1)
        reference = manager.and_(a, b)
        manager.armed = True
        manager.and_(a, b)  # corrupts
        manager.armed = False
        manager.clear_caches()
        healed = manager.and_(a, b)
        assert healed == reference
        assignment = {0: True, 1: True}
        assert manager.eval(healed, assignment)

    def test_guard_with_flush_catches_corruption(self):
        # The nightmare scenario: no exception, just wrong answers.
        # Warm the cache, then a one-shot corruption fires on the
        # heuristic's first step, so its cache hits lie to it.
        # flush_before_verify makes the guard's cover check recompute
        # on clean tables, so a corrupted result cannot sneak through:
        # whatever the guard returns IS a cover.
        manager = _faulty(FAULT_CACHE, at=1)
        f, c = _build_instance(manager)
        spec = ISpec(manager, f, c)
        spec.is_cover(manager.and_(f, c))  # warm the ITE cache
        assert manager.statistics()["ite_cache"] > 0
        manager.armed = True
        guarded = guard(
            constrain, name="constrain", flush_before_verify=True
        )
        cover = guarded(manager, f, c)
        manager.armed = False
        manager.clear_caches()
        assert spec.is_cover(cover)

    def test_semantics_by_evaluation(self):
        # Cross-check the cure with pointwise evaluation, which never
        # touches the ITE cache.
        manager = _faulty(FAULT_CACHE, at=1)
        a, b = manager.var(0), manager.var(1)
        manager.and_(a, b)
        manager.armed = True
        corrupted = manager.and_(a, b)
        manager.armed = False
        truth = {
            (x, y): x and y for x in (False, True) for y in (False, True)
        }
        wrong = sum(
            1
            for (x, y), expected in truth.items()
            if manager.eval(corrupted, {0: x, 1: y}) != expected
        )
        assert wrong > 0  # the corruption is semantically visible
        manager.clear_caches()
        healed = manager.and_(a, b)
        for (x, y), expected in truth.items():
            assert manager.eval(healed, {0: x, 1: y}) == expected


class TestArming:
    def test_disarmed_manager_never_fires(self):
        manager = _faulty(FAULT_BUDGET, at=1, armed=False)
        f, c = _build_instance(manager)
        cover = constrain(manager, f, c)
        assert ISpec(manager, f, c).is_cover(cover)
        assert manager.faults_fired == 0
        assert manager.operations > 0
