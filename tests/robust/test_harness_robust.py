"""Acceptance tests: budgeted sweeps degrade, checkpoints resume.

The two ISSUE-level guarantees:

* a Table-2 sweep under a tiny node budget completes without raising,
  failed cells carry a reason, and every measured cover was verified
  (``verify_covers`` stays on);
* killing a sweep and re-running with ``resume=True`` yields results
  identical to an uninterrupted run (modulo runtimes, which are
  re-measured wall-clock and inherently non-deterministic).
"""

import pytest

from repro.experiments.calls import collect_suite_calls
from repro.experiments.harness import run_heuristics
from repro.experiments.table3 import render_table3, table3_rows
from repro.experiments.table4 import table4_matrix
from repro.experiments.figure3 import figure3_curves
from repro.experiments.summary import export_csv, per_benchmark_summaries
from repro.robust.checkpoint import Checkpoint
from repro.robust.governor import Budget

HEURISTICS = ("constrain", "osm_bt", "f_orig")


@pytest.fixture(scope="module")
def tlc_calls():
    return collect_suite_calls(["tlc"])


def _stable_view(results):
    """Everything except runtimes, which legitimately vary."""
    return [
        (
            result.benchmark,
            result.iteration,
            result.f_size,
            result.sizes,
            result.min_size,
            result.lower_bound,
            result.failures,
        )
        for result in results.results
    ]


class TestBudgetedSweep:
    def test_tiny_budget_completes_with_recorded_failures(self, tlc_calls):
        results = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
            budget=Budget(max_nodes=2, max_steps=2),
        )
        assert results.results, "sweep produced no measurements"
        saw_failure = False
        for result in results.results:
            for name in HEURISTICS:
                if result.sizes[name] is None:
                    saw_failure = True
                    assert name in result.failures
                    assert result.failures[name]  # non-empty reason
                else:
                    assert name not in result.failures
            # f_orig allocates nothing: it always survives any budget,
            # so min_size always has at least one measured cell.
            assert result.sizes["f_orig"] == result.f_size
            assert result.min_size <= result.f_size
        assert saw_failure, "a 2-node budget should trip on tlc"
        assert results.failed_cells > 0

    def test_exhibits_tolerate_failed_cells(self, tlc_calls):
        results = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
            budget=Budget(max_nodes=2, max_steps=2),
        )
        rows = table3_rows(results)
        failing = [row for row in rows if row.failures]
        assert failing, "table 3 should surface the failed cells"
        for row in failing:
            assert row.rank is None  # partial totals are not ranked
        assert "Fail" in render_table3(results)
        matrix = table4_matrix(results, names=list(HEURISTICS))
        for value in matrix.values():
            assert 0.0 <= value <= 100.0
        curves = figure3_curves(results, names=list(HEURISTICS))
        assert set(curves) == set(HEURISTICS)
        summaries = per_benchmark_summaries(results)
        assert summaries[0].best_heuristic in ("f_orig", "-") + HEURISTICS
        csv_text = export_csv(results)
        assert "size_constrain" in csv_text

    def test_unbudgeted_sweep_has_no_failures(self, tlc_calls):
        results = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
        )
        assert results.failed_cells == 0
        for result in results.results:
            assert result.min_size == min(result.sizes.values())


class TestCheckpointResume:
    def test_interrupted_resume_matches_uninterrupted(
        self, tlc_calls, tmp_path
    ):
        journal_path = tmp_path / "sweep.jsonl"
        baseline = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
            checkpoint=journal_path,
        )
        assert len(baseline.results) >= 2, "need >= 2 calls to interrupt"

        # Simulate a kill after the first call: keep only line one.
        lines = journal_path.read_text().splitlines(keepends=True)
        journal_path.write_text(lines[0])

        resumed = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
            checkpoint=journal_path,
            resume=True,
        )
        assert resumed.resumed_calls == 1
        assert _stable_view(resumed) == _stable_view(baseline)
        # The journal was healed back to completeness by the resume.
        replay = Checkpoint(journal_path).load()
        assert len(replay) == len(baseline.results)

    def test_resume_after_torn_write(self, tlc_calls, tmp_path):
        journal_path = tmp_path / "torn.jsonl"
        baseline = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
            checkpoint=journal_path,
        )
        lines = journal_path.read_text().splitlines(keepends=True)
        journal_path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])
        resumed = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
            checkpoint=journal_path,
            resume=True,
        )
        assert _stable_view(resumed) == _stable_view(baseline)

    def test_full_journal_resume_remeasures_nothing(
        self, tlc_calls, tmp_path
    ):
        journal_path = tmp_path / "full.jsonl"
        baseline = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
            checkpoint=journal_path,
        )
        resumed = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
            checkpoint=journal_path,
            resume=True,
        )
        assert resumed.resumed_calls == len(baseline.results)
        # Fully replayed: even runtimes are bitwise identical.
        assert resumed.results == baseline.results

    def test_resume_requires_checkpoint(self, tlc_calls):
        with pytest.raises(ValueError):
            run_heuristics(tlc_calls, resume=True)

    def test_fresh_run_truncates_stale_journal(self, tlc_calls, tmp_path):
        journal_path = tmp_path / "stale.jsonl"
        journal_path.write_text('{"stale": "junk"}\n')
        results = run_heuristics(
            tlc_calls,
            heuristics=HEURISTICS,
            compute_lower_bound=False,
            checkpoint=journal_path,
        )
        replay = Checkpoint(journal_path).load()
        assert len(replay) == len(results.results)
