"""Tests for the JSONL checkpoint journal and the CLI exit codes."""

import json
import os

import pytest

from repro.experiments.harness import CallResult
from repro.robust.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    record_to_result,
    result_to_record,
)


def _result(benchmark="tlc", iteration=1):
    return CallResult(
        benchmark=benchmark,
        iteration=iteration,
        f_size=17,
        onset_fraction=0.25,
        sizes={"constrain": 9, "osm_bt": None},
        runtimes={"constrain": 0.001, "osm_bt": 0.5},
        min_size=9,
        lower_bound=7,
        failures={"osm_bt": "NodeBudgetExceeded: boom"},
    )


class TestRecordRoundtrip:
    def test_roundtrip(self):
        original = _result()
        record = result_to_record(original)
        assert record["version"] == CHECKPOINT_VERSION
        replayed = record_to_result(json.loads(json.dumps(record)))
        assert replayed == original

    def test_version_mismatch(self):
        record = result_to_record(_result())
        record["version"] = 999
        with pytest.raises(CheckpointError):
            record_to_result(record)

    def test_missing_field(self):
        record = result_to_record(_result())
        del record["sizes"]
        with pytest.raises(CheckpointError):
            record_to_result(record)

    def test_non_dict_record(self):
        with pytest.raises(CheckpointError):
            record_to_result([1, 2, 3])

    def test_ill_typed_size(self):
        record = result_to_record(_result())
        record["sizes"] = {"constrain": "nine"}
        with pytest.raises(CheckpointError):
            record_to_result(record)


class TestCheckpoint:
    def test_append_and_load(self, tmp_path):
        journal = Checkpoint(tmp_path / "run.jsonl")
        first = _result(iteration=1)
        second = _result(benchmark="s344", iteration=2)
        journal.append(first)
        journal.append(second)
        completed = journal.load()
        # Keys are per-benchmark ordinals in line order, not iteration
        # numbers (iterations are not unique across call kinds).
        assert completed[("tlc", 0)] == first
        assert completed[("s344", 0)] == second
        assert len(completed) == 2

    def test_load_keys_collide_free_within_iteration(self, tmp_path):
        # Frontier and image calls share an iteration number; the
        # ordinal keying must keep both records.
        journal = Checkpoint(tmp_path / "shared.jsonl")
        journal.append(_result(iteration=3))
        journal.append(_result(iteration=3))
        completed = journal.load()
        assert set(completed) == {("tlc", 0), ("tlc", 1)}

    def test_missing_file_is_empty(self, tmp_path):
        journal = Checkpoint(tmp_path / "never-written.jsonl")
        assert not journal.has_journal()
        assert journal.load() == {}

    def test_malformed_line_names_its_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        journal = Checkpoint(path)
        journal.append(_result())
        with open(path, "a") as handle:
            handle.write("{this is not json}\n")
        with pytest.raises(CheckpointError) as info:
            journal.load()
        assert ":2:" in str(info.value)

    def test_trim_partial_drops_only_a_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        journal = Checkpoint(path)
        journal.append(_result(iteration=1))
        with open(path, "a") as handle:
            handle.write('{"version": 1, "benchm')  # killed mid-write
        assert journal.trim_partial()
        assert len(journal.load()) == 1
        # Idempotent: a clean journal is left alone.
        assert not journal.trim_partial()

    def test_trim_partial_keeps_earlier_corruption(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text("not json at all\n")
        journal = Checkpoint(path)
        assert not journal.trim_partial()  # line is complete: not a tear
        with pytest.raises(CheckpointError):
            journal.load()

    def test_truncate(self, tmp_path):
        journal = Checkpoint(tmp_path / "fresh.jsonl")
        journal.append(_result())
        journal.truncate()
        assert journal.load() == {}


class TestAtomicity:
    def test_trim_partial_rewrites_via_rename(self, tmp_path, monkeypatch):
        path = tmp_path / "torn.jsonl"
        journal = Checkpoint(path)
        journal.append(_result(iteration=1))
        with open(path, "a") as handle:
            handle.write('{"version": 1, "benchm')
        replaced = []
        real_replace = os.replace

        def spying_replace(src, dst):
            replaced.append((src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        assert journal.trim_partial()
        # The repair went through a same-directory temp file + rename,
        # never an in-place truncate-then-write.
        assert len(replaced) == 1
        src, dst = replaced[0]
        assert dst == str(path)
        assert os.path.dirname(src) == str(tmp_path)
        assert len(journal.load()) == 1

    def test_failed_trim_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "torn.jsonl"
        journal = Checkpoint(path)
        journal.append(_result(iteration=1))
        with open(path, "a") as handle:
            handle.write('{"version": 1, "benchm')
        before = path.read_text()

        def dying_replace(src, dst):
            raise OSError("disk pulled mid-rename")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError):
            journal.trim_partial()
        # A kill mid-repair must not destroy the journal: the original
        # bytes (good records + torn tail) are untouched, and no temp
        # litter survives.
        assert path.read_text() == before
        assert list(tmp_path.glob("*.tmp")) == []
        # The repair still works once the disk comes back.
        monkeypatch.undo()
        assert journal.trim_partial()
        assert len(journal.load()) == 1

    def test_truncate_is_atomic(self, tmp_path, monkeypatch):
        path = tmp_path / "fresh.jsonl"
        journal = Checkpoint(path)
        journal.append(_result())
        before = path.read_text()
        monkeypatch.setattr(
            os, "replace", lambda s, d: (_ for _ in ()).throw(OSError("no"))
        )
        with pytest.raises(OSError):
            journal.truncate()
        assert path.read_text() == before

    def test_append_fsyncs_each_record(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def spying_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spying_fsync)
        journal = Checkpoint(tmp_path / "durable.jsonl")
        journal.append(_result(iteration=1))
        journal.append(_result(iteration=2))
        assert len(synced) == 2

    def test_fsync_false_skips_syncs(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        journal = Checkpoint(tmp_path / "fast.jsonl", fsync=False)
        journal.append(_result())
        journal.truncate()
        assert synced == []


class TestCliExitCodes:
    def test_resume_without_checkpoint_is_usage_error(self):
        from repro.cli import main

        assert main(["experiments", "--quick", "--resume"]) == 2

    def test_malformed_checkpoint_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "broken.jsonl"
        path.write_text("definitely not json\n")
        code = main(
            [
                "experiments",
                "--quick",
                "--checkpoint",
                str(path),
                "--resume",
            ]
        )
        assert code == 2
        assert "checkpoint error" in capsys.readouterr().err
