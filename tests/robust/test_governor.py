"""Tests for the resource governor (budgets and the step hook)."""

import pytest

from repro.analysis.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    NodeBudgetExceeded,
    StepBudgetExceeded,
)
from repro.bdd.manager import (
    EVENT_CLEAR,
    EVENT_ITE,
    EVENT_NODE,
    Manager,
    ONE,
    ZERO,
)
from repro.robust.governor import (
    Budget,
    DEADLINE_CHECK_INTERVAL,
    Governor,
    governed,
)


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_nodes=0)
        with pytest.raises(ValueError):
            Budget(max_steps=-1)
        with pytest.raises(ValueError):
            Budget(deadline=0.0)

    def test_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_nodes=1).unlimited
        assert not Budget(deadline=1.0).unlimited

    def test_scaled(self):
        budget = Budget(max_nodes=10, max_steps=3, deadline=2.0)
        bigger = budget.scaled(4.0)
        assert bigger.max_nodes == 40
        assert bigger.max_steps == 12
        assert bigger.deadline == pytest.approx(8.0)
        # ceil: scaling never rounds a bound down to zero.
        assert Budget(max_nodes=1).scaled(1.5).max_nodes == 2
        # None bounds stay None.
        assert Budget(max_nodes=5).scaled(2.0).max_steps is None
        with pytest.raises(ValueError):
            budget.scaled(0.0)

    def test_describe(self):
        assert Budget().describe() == "unlimited"
        text = Budget(max_nodes=5, deadline=1.5).describe()
        assert "nodes<=5" in text
        assert "deadline<=1.5s" in text


class TestGovernor:
    def test_node_budget_trips(self):
        manager = Manager(var_names=["a", "b", "c", "d", "e", "f"])
        variables = [manager.var(level) for level in range(6)]
        with pytest.raises(NodeBudgetExceeded):
            with governed(manager, Budget(max_nodes=2)):
                parity = variables[0]
                for variable in variables[1:]:
                    parity = manager.xor(parity, variable)

    def test_step_budget_trips(self):
        manager = Manager(var_names=["a", "b", "c", "d"])
        variables = [manager.var(level) for level in range(4)]
        with pytest.raises(StepBudgetExceeded):
            with governed(manager, Budget(max_steps=2)):
                manager.and_many(variables)

    def test_typed_hierarchy(self):
        # Both budget trips are recoverable BudgetExceeded events.
        assert issubclass(NodeBudgetExceeded, BudgetExceeded)
        assert issubclass(StepBudgetExceeded, BudgetExceeded)
        assert issubclass(DeadlineExceeded, BudgetExceeded)

    def test_under_budget_computes_normally(self):
        manager = Manager(var_names=["a", "b"])
        a, b = manager.var(0), manager.var(1)
        with governed(manager, Budget(max_nodes=100, max_steps=100)) as gov:
            conj = manager.and_(a, b)
        assert manager.eval(conj, {0: True, 1: True})
        assert gov.nodes_created <= 100
        assert gov.ite_steps >= 1

    def test_deadline_with_fake_clock(self):
        times = {"now": 0.0}
        governor = Governor(Budget(deadline=1.0), clock=lambda: times["now"])
        # Within the deadline nothing trips, however many events fire.
        for _ in range(3 * DEADLINE_CHECK_INTERVAL):
            governor(EVENT_ITE)
        times["now"] = 2.0
        with pytest.raises(DeadlineExceeded):
            for _ in range(DEADLINE_CHECK_INTERVAL):
                governor(EVENT_ITE)

    def test_deadline_checked_every_interval(self):
        calls = {"count": 0}

        def clock():
            calls["count"] += 1
            return 0.0

        governor = Governor(Budget(deadline=5.0), clock=clock)
        start_calls = calls["count"]
        for _ in range(DEADLINE_CHECK_INTERVAL):
            governor(EVENT_NODE)
        assert calls["count"] == start_calls + 1

    def test_clear_event_resets_counters(self):
        governor = Governor(Budget(max_nodes=100))
        governor(EVENT_NODE)
        governor(EVENT_ITE)
        assert governor.nodes_created == 1
        assert governor.ite_steps == 1
        governor(EVENT_CLEAR)
        assert governor.nodes_created == 0
        assert governor.ite_steps == 0
        assert governor.resets == 1


class TestClearCaches:
    """Satellite: clear_caches empties every op cache AND resets the
    governor counters with them (the §4.1.1 fairness protocol)."""

    def test_all_caches_emptied_and_counters_reset(self):
        manager = Manager(var_names=["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        with governed(manager, Budget(max_nodes=10_000)) as governor:
            # Populate the ITE cache and a couple of named op caches.
            manager.and_(a, manager.or_(b, c))
            manager.exists(manager.and_(a, b), [0])
            manager.cache("test_scratch")["key"] = ONE
            stats = manager.statistics()
            assert stats["ite_cache"] > 0
            assert stats["cache_test_scratch"] == 1
            assert governor.nodes_created > 0 or governor.ite_steps > 0

            manager.clear_caches()

            stats = manager.statistics()
            for name, value in stats.items():
                if name == "ite_cache" or name.startswith("cache_"):
                    assert value == 0, "%s not flushed" % name
            assert governor.nodes_created == 0
            assert governor.ite_steps == 0
            assert governor.resets == 1
        # Budgets restart after the flush: the same work fits again.
        with governed(manager, Budget(max_steps=10_000)) as governor:
            manager.and_(a, b)
            manager.clear_caches()
            manager.and_(a, c)
        assert governor.resets == 1


class TestGoverned:
    def test_yields_none_without_budget(self):
        manager = Manager(var_names=["a"])
        with governed(manager, None) as governor:
            assert governor is None
            assert manager.step_hook is None
        with governed(manager, Budget()) as governor:
            assert governor is None

    def test_composes_with_previous_hook(self):
        # governed() attaches through the composing dispatcher: a
        # previously installed hook keeps firing inside the governed
        # block, and the slot is restored exactly on exit.
        manager = Manager(var_names=["a", "b"])
        events = []
        hook = events.append
        manager.install_step_hook(hook)
        with governed(manager, Budget(max_nodes=100)) as governor:
            from repro.obs.hooks import attached_hooks

            assert attached_hooks(manager) == [hook, governor]
            manager.and_(manager.var(0), manager.var(1))
            assert EVENT_ITE in events  # prior hook still observes
            assert governor.ite_steps >= 1  # and so does the governor
        assert manager.step_hook is hook
        events.clear()
        manager.xor(manager.var(0), manager.var(1))
        assert EVENT_ITE in events

    def test_nested_governors_both_count(self):
        manager = Manager(var_names=["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        with governed(manager, Budget(max_steps=10_000)) as outer:
            with governed(manager, Budget(max_steps=10_000)) as inner:
                manager.and_(a, manager.or_(b, c))
            assert inner.ite_steps >= 1
            assert outer.ite_steps >= inner.ite_steps
        assert manager.step_hook is None

    def test_restores_hook_after_trip(self):
        manager = Manager(var_names=["a", "b", "c", "d"])
        variables = [manager.var(level) for level in range(4)]
        with pytest.raises(BudgetExceeded):
            with governed(manager, Budget(max_steps=1)):
                manager.and_many(variables)
        assert manager.step_hook is None
        # The manager is fully usable after an aborted operation.
        conj = manager.and_many(variables)
        assert manager.eval(conj, {level: True for level in range(4)})
        manager.validate(conj)
