"""Tests for guarded frontier minimization in invariant checking."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.registry import HEURISTICS
from repro.fsm.machine import FsmSpec, LatchSpec, OutputSpec, compile_fsm
from repro.fsm.product import compile_product
from repro.fsm.reachability import check_equivalence
from repro.fsm.verify import (
    check_invariant,
    equivalence_counterexample_trace,
)
from repro.circuits.generators import counter, traffic_light_controller


def _tlc():
    manager = Manager()
    fsm = compile_fsm(manager, traffic_light_controller())
    both_green = manager.and_(
        fsm.output_fns["highway_go"], fsm.output_fns["farm_go"]
    )
    return manager, fsm, both_green ^ 1


class TestMinimizedInvariantCheck:
    def test_holding_invariant_same_verdict(self):
        manager, fsm, invariant = _tlc()
        exact = check_invariant(fsm, invariant)
        minimized = check_invariant(
            fsm, invariant, minimize=HEURISTICS["osm_bt"]
        )
        assert minimized.holds == exact.holds is True
        # Rings are kept exact, so the fixpoint iteration count and the
        # reached set are identical with and without minimization.
        assert minimized.iterations == exact.iterations
        assert minimized.reached == exact.reached

    def test_violation_still_yields_exact_trace(self):
        manager = Manager()
        fsm = compile_fsm(manager, counter(2))
        q0 = manager.var(fsm.current_levels[0])
        q1 = manager.var(fsm.current_levels[1])
        at_three = manager.and_(q0, q1)
        exact = check_invariant(fsm, at_three ^ 1)
        minimized = check_invariant(
            fsm, at_three ^ 1, minimize=HEURISTICS["constrain"]
        )
        assert not minimized.holds
        assert len(minimized.trace) == len(exact.trace) == 3
        assert minimized.trace.states[-1] == {"q0": True, "q1": True}

    def test_broken_minimizer_degrades_to_exact(self):
        manager, fsm, invariant = _tlc()
        exact = check_invariant(fsm, invariant)
        degraded = check_invariant(
            fsm, invariant, minimize=lambda mgr, f, c: ZERO
        )
        assert degraded.holds == exact.holds
        assert degraded.reached == exact.reached

    def test_crashing_minimizer_propagates(self):
        manager, fsm, invariant = _tlc()

        def crashes(mgr, f, c):
            raise ValueError("genuine bug")

        with pytest.raises(ValueError):
            check_invariant(fsm, invariant, minimize=crashes)


class TestMinimizedEquivalence:
    def test_self_equivalence_with_minimizer(self):
        manager = Manager()
        spec = traffic_light_controller()
        product = compile_product(manager, spec, spec)
        result = check_equivalence(product, minimize=HEURISTICS["osm_bt"])
        assert result.equivalent

    def test_counterexample_trace_with_minimizer(self):
        left = FsmSpec(
            "late",
            ("en",),
            (LatchSpec("q0", "q0 ^ en"), LatchSpec("q1", "q1 ^ (q0 & en)")),
            (OutputSpec("o", "q1"),),
        )
        right = FsmSpec(
            "early",
            ("en",),
            (LatchSpec("q0", "q0 ^ en"), LatchSpec("q1", "q1 ^ q0")),
            (OutputSpec("o", "q1"),),
        )
        manager = Manager()
        product = compile_product(manager, left, right)
        trace = equivalence_counterexample_trace(
            product, minimize=HEURISTICS["osm_bt"]
        )
        assert trace is not None
        # The minimized search finds a distinguishing run of the same
        # length as the exact one (rings, and hence BFS depth, are
        # exact either way).
        exact = equivalence_counterexample_trace(product)
        assert len(trace.inputs) == len(exact.inputs)

    def test_equivalent_machines_no_trace(self):
        manager = Manager()
        spec = traffic_light_controller()
        product = compile_product(manager, spec, spec)
        assert (
            equivalence_counterexample_trace(
                product, minimize=HEURISTICS["constrain"]
            )
            is None
        )
