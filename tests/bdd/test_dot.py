"""Smoke tests for DOT export."""

from repro.bdd.manager import Manager
from repro.bdd.dot import to_dot

import pytest


def test_dot_contains_nodes_and_edges():
    manager = Manager(["a", "b"])
    f = manager.and_(manager.var("a"), manager.var("b"))
    text = to_dot(manager, [f], names=["f"])
    assert text.startswith("digraph")
    assert text.rstrip().endswith("}")
    assert 'label="a"' in text
    assert 'label="b"' in text
    assert "r_f" in text


def test_dot_marks_complement_edges():
    manager = Manager(["a"])
    f = manager.var("a") ^ 1
    text = to_dot(manager, [f], names=["nota"])
    assert "odot" in text


def test_dot_multiple_roots_share_nodes():
    manager = Manager(["a", "b"])
    f = manager.and_(manager.var("a"), manager.var("b"))
    g = manager.or_(manager.var("a"), manager.var("b"))
    text = to_dot(manager, [f, g], names=["f", "g"])
    assert "r_f" in text and "r_g" in text


def test_dot_name_count_mismatch():
    manager = Manager(["a"])
    with pytest.raises(ValueError):
        to_dot(manager, [manager.var("a")], names=["x", "y"])


def test_dot_default_names():
    manager = Manager(["a"])
    text = to_dot(manager, [manager.var("a")])
    assert "r_f0" in text


def test_rank_same_per_level():
    manager = Manager(["a", "b", "c"])
    f = manager.ite(
        manager.var("a"),
        manager.and_(manager.var("b"), manager.var("c")),
        manager.or_(manager.var("b"), manager.var("c")),
    )
    text = to_dot(manager, [f])
    assert text.count("rank=same") >= 2
