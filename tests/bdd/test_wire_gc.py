"""Wire round-trip ↔ ``gc(compact=True)`` Remap interaction.

The canonical wire format promises byte equality iff semantic equality
over a fixed variable universe; a compacting collection renumbers every
surviving node and hands back a :class:`Remap`.  The two must compose:
serializing remapped refs after compaction yields byte-identical
payloads, for every corpus family and for heuristic results too.
"""

import pytest

from repro.bdd.cover import is_def2_cover
from repro.bdd.wire import deserialize_instance, serialize, serialize_instance
from repro.core.registry import HEURISTICS
from repro.verify.corpus import Corpus

SEEDS = (0, 7, 91)


def _instances(seed):
    return Corpus(size=2, num_vars=6, seed=seed).generate()


@pytest.mark.parametrize("seed", SEEDS)
def test_instance_payload_invariant_under_compaction(seed):
    for instance in _instances(seed):
        manager, f, c = instance.decode()
        before = serialize_instance(manager, f, c)
        # Grow garbage so compaction actually moves the survivors.
        for level in range(manager.num_vars):
            manager.xor(f, manager.var(level))
        remap = manager.gc(roots=(f, c), compact=True)
        assert remap is not None
        f2, c2 = remap(f), remap(c)
        assert serialize_instance(manager, f2, c2) == before


@pytest.mark.parametrize("seed", SEEDS)
def test_cover_payload_invariant_under_compaction(seed):
    heuristic = HEURISTICS["osm_bt"]
    for instance in _instances(seed):
        manager, f, c = instance.decode()
        g = heuristic(manager, f, c)
        before = serialize(manager, (f, c, g))
        remap = manager.gc(roots=(f, c, g), compact=True)
        f2, c2, g2 = remap(f), remap(c), remap(g)
        assert serialize(manager, (f2, c2, g2)) == before
        assert is_def2_cover(manager, f2, c2, g2)


def test_roundtrip_then_compact_then_roundtrip():
    for instance in _instances(seed=5):
        fresh, f, c = deserialize_instance(instance.payload)
        assert serialize_instance(fresh, f, c) == instance.payload
        remap = fresh.gc(roots=(f, c), compact=True)
        f2, c2 = remap(f), remap(c)
        payload = serialize_instance(fresh, f2, c2)
        assert payload == instance.payload
        again, f3, c3 = deserialize_instance(payload)
        assert serialize_instance(again, f3, c3) == instance.payload
