"""Tests for the Boolean expression parser."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression


def test_constants():
    manager = Manager()
    assert parse_expression(manager, "1") == ONE
    assert parse_expression(manager, "0") == ZERO


def test_variable_autodeclare_in_order():
    manager = Manager()
    parse_expression(manager, "b & a")
    assert manager.var_names == ("b", "a")


def test_negation_forms(defaults=None):
    manager = Manager(["a"])
    a = manager.var("a")
    assert parse_expression(manager, "!a") == a ^ 1
    assert parse_expression(manager, "~a") == a ^ 1
    assert parse_expression(manager, "a'") == a ^ 1
    assert parse_expression(manager, "~~a") == a


def test_precedence_and_over_or():
    manager = Manager(["a", "b", "c"])
    got = parse_expression(manager, "a | b & c")
    expected = manager.or_(
        manager.var("a"), manager.and_(manager.var("b"), manager.var("c"))
    )
    assert got == expected


def test_xor_precedence_between_and_and_or():
    manager = Manager(["a", "b", "c"])
    got = parse_expression(manager, "a ^ b | c")
    expected = manager.or_(
        manager.xor(manager.var("a"), manager.var("b")), manager.var("c")
    )
    assert got == expected


def test_juxtaposition_is_conjunction():
    """Cube notation: ab'c means a AND NOT b AND c."""
    manager = Manager(["a", "b", "c"])
    got = parse_expression(manager, "a b' c")
    expected = manager.and_many(
        [manager.var("a"), manager.var("b") ^ 1, manager.var("c")]
    )
    assert got == expected


def test_implication_right_associative():
    manager = Manager(["a", "b", "c"])
    got = parse_expression(manager, "a -> b -> c")
    expected = manager.implies(
        manager.var("a"), manager.implies(manager.var("b"), manager.var("c"))
    )
    assert got == expected


def test_iff():
    manager = Manager(["a", "b"])
    got = parse_expression(manager, "a <-> b")
    assert got == manager.xnor(manager.var("a"), manager.var("b"))


def test_parentheses_and_postfix_complement():
    manager = Manager(["a", "b"])
    got = parse_expression(manager, "(a | b)'")
    assert got == manager.or_(manager.var("a"), manager.var("b")) ^ 1


def test_tautology_and_contradiction():
    manager = Manager(["p"])
    assert parse_expression(manager, "p | ~p") == ONE
    assert parse_expression(manager, "p & ~p") == ZERO


def test_error_on_garbage():
    manager = Manager()
    with pytest.raises(ValueError):
        parse_expression(manager, "a @ b")
    with pytest.raises(ValueError):
        parse_expression(manager, "(a")
    with pytest.raises(ValueError):
        parse_expression(manager, "a b )")
