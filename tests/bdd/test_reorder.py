"""Tests for variable reordering: transfer, sifting, exhaustive search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.bdd.truthtable import bdd_from_leaves, leaves_from_bdd
from repro.bdd.reorder import (
    exhaustive_order_search,
    reorder,
    shared_size,
    sift,
    transfer,
)


def interleaved_vs_blocked():
    """The classic ordering example: x1·y1 + x2·y2 + x3·y3.

    Blocked order (all x then all y) is exponential; interleaved is
    linear.
    """
    manager = Manager(["x1", "x2", "x3", "y1", "y2", "y3"])
    f = parse_expression(manager, "(x1 & y1) | (x2 & y2) | (x3 & y3)")
    return manager, f


class TestTransfer:
    def test_identity_transfer(self):
        manager, f = interleaved_vs_blocked()
        target = Manager(manager.var_names)
        (copy,) = transfer(manager, target, [f])
        # Same order -> structurally identical BDD (node indices may
        # differ between managers, so compare shape, not raw refs).
        assert target.size(copy) == manager.size(f)
        assert target.level_profile(copy) == manager.level_profile(f)

    def test_semantics_preserved(self):
        manager, f = interleaved_vs_blocked()
        target = Manager(["y3", "x1", "y2", "x3", "y1", "x2"])
        (copy,) = transfer(manager, target, [f])
        # Compare via named evaluation on a few assignments.
        cases = [
            {"x1": 1, "y1": 1, "x2": 0, "y2": 0, "x3": 0, "y3": 0},
            {"x1": 1, "y1": 0, "x2": 1, "y2": 1, "x3": 0, "y3": 0},
            {"x1": 0, "y1": 0, "x2": 0, "y2": 0, "x3": 0, "y3": 0},
            {"x1": 0, "y1": 1, "x2": 0, "y2": 1, "x3": 1, "y3": 1},
        ]
        for case in cases:
            source_env = {
                manager.level_of_var(name): bool(value)
                for name, value in case.items()
            }
            target_env = {
                target.level_of_var(name): bool(value)
                for name, value in case.items()
            }
            assert manager.eval(f, source_env) == target.eval(copy, target_env)

    def test_complement_edges_transfer(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "~(a & b)")
        target = Manager(["b", "a"])
        (copy,) = transfer(manager, target, [f])
        assert target.eval(copy, {0: True, 1: True}) is False
        assert target.eval(copy, {0: False, 1: True}) is True


class TestReorder:
    def test_interleaving_shrinks(self):
        manager, f = interleaved_vs_blocked()
        good, (f_good,) = reorder(
            manager, [f], ["x1", "y1", "x2", "y2", "x3", "y3"]
        )
        assert good.size(f_good) < manager.size(f)

    def test_bad_permutation_rejected(self):
        manager, f = interleaved_vs_blocked()
        with pytest.raises(ValueError):
            reorder(manager, [f], ["x1", "x2"])
        with pytest.raises(ValueError):
            reorder(manager, [f], ["x1"] * 6)

    def test_original_untouched(self):
        manager, f = interleaved_vs_blocked()
        before = manager.size(f)
        reorder(manager, [f], list(reversed(manager.var_names)))
        assert manager.size(f) == before


class TestSift:
    def test_sift_finds_interleaved_order(self):
        manager, f = interleaved_vs_blocked()
        sifted_manager, (sifted_f,), order = sift(manager, [f])
        assert sifted_manager.size(sifted_f) < manager.size(f)
        # The linear-size orders pair each x_i with its y_i: one node
        # per variable plus the terminal (complement edges share).
        assert sifted_manager.size(sifted_f) == 7

    def test_sift_never_grows(self):
        manager = Manager(["a", "b", "c", "d"])
        f = parse_expression(manager, "(a & b) | (c & d)")
        sifted_manager, (sifted_f,), _ = sift(manager, [f])
        assert sifted_manager.size(sifted_f) <= manager.size(f)

    def test_sift_multiple_roots(self):
        manager, f = interleaved_vs_blocked()
        g = parse_expression(manager, "x1 ^ y1")
        sifted_manager, sifted_refs, _ = sift(manager, [f, g])
        assert shared_size(sifted_manager, sifted_refs) <= shared_size(
            manager, [f, g]
        )


class TestExhaustive:
    def test_matches_or_beats_sifting(self):
        manager = Manager(["x1", "x2", "y1", "y2"])
        f = parse_expression(manager, "(x1 & y1) | (x2 & y2)")
        exact_manager, (exact_f,), _ = exhaustive_order_search(manager, [f])
        sift_manager, (sift_f,), _ = sift(manager, [f])
        assert exact_manager.size(exact_f) <= sift_manager.size(sift_f)

    def test_budget_enforced(self):
        manager = Manager(["v%d" % i for i in range(9)])
        f = manager.var(0)
        with pytest.raises(ValueError):
            exhaustive_order_search(manager, [f])


class TestCompact:
    def test_dead_nodes_dropped(self):
        from repro.bdd.reorder import compact

        manager = Manager(["a", "b", "c", "d"])
        keep = parse_expression(manager, "a & b")
        # Create garbage the live function does not use.
        for _ in range(3):
            parse_expression(manager, "(a ^ b) | (c & d) | (a & ~d)")
        fresh, (copy,) = compact(manager, [keep])
        assert fresh.num_nodes < manager.num_nodes
        assert fresh.size(copy) == manager.size(keep)
        assert fresh.var_names == manager.var_names

    def test_compact_preserves_semantics(self):
        from repro.bdd.reorder import compact

        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a ^ b")
        fresh, (copy,) = compact(manager, [f])
        for a in (False, True):
            for b in (False, True):
                assert fresh.eval(copy, {0: a, 1: b}) == (a != b)


@given(st.lists(st.booleans(), min_size=16, max_size=16))
@settings(max_examples=20, deadline=None)
def test_reorder_roundtrip_semantics(table):
    """Reordering then reordering back reproduces the truth table."""
    manager = Manager()
    f = bdd_from_leaves(manager, table)
    manager.ensure_vars(4)
    names = list(manager.var_names)
    shuffled = names[::-1]
    target, (copy,) = reorder(manager, [f], shuffled)
    back, (restored,) = reorder(target, [copy], names)
    assert leaves_from_bdd(back, restored, 4) == table
