"""Unit tests for the manager's node structure and operator core."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO, TERMINAL_LEVEL


class TestConstants:
    def test_one_and_zero_are_complements(self):
        assert ONE ^ 1 == ZERO

    def test_constants_are_constant(self):
        manager = Manager()
        assert manager.is_constant(ONE)
        assert manager.is_constant(ZERO)

    def test_terminal_level_is_sentinel(self):
        manager = Manager()
        assert manager.level(ONE) == TERMINAL_LEVEL
        assert manager.level(ZERO) == TERMINAL_LEVEL


class TestVariables:
    def test_new_var_returns_positive_literal(self):
        manager = Manager()
        x = manager.new_var("x")
        assert manager.level(x) == 0
        assert manager.eval(x, {0: True})
        assert not manager.eval(x, {0: False})

    def test_var_by_name_and_level(self):
        manager = Manager(["a", "b"])
        assert manager.var("a") == manager.var(0)
        assert manager.var("b") == manager.var(1)

    def test_duplicate_name_rejected(self):
        manager = Manager(["a"])
        with pytest.raises(ValueError):
            manager.new_var("a")

    def test_unknown_name_rejected(self):
        manager = Manager(["a"])
        with pytest.raises(KeyError):
            manager.var("zz")
        with pytest.raises(IndexError):
            manager.var(5)

    def test_anonymous_names(self):
        manager = Manager()
        manager.new_var()
        manager.new_var()
        assert manager.var_names == ("x1", "x2")

    def test_ensure_vars(self):
        manager = Manager(["a"])
        manager.ensure_vars(3)
        assert manager.num_vars == 3


class TestMakeNode:
    def test_deletion_rule(self):
        manager = Manager(["a"])
        assert manager.make_node(0, ONE, ONE) == ONE
        assert manager.make_node(0, ZERO, ZERO) == ZERO

    def test_merging_rule(self):
        manager = Manager(["a", "b"])
        first = manager.make_node(1, ONE, ZERO)
        second = manager.make_node(1, ONE, ZERO)
        assert first == second

    def test_complement_normalization(self):
        """Then-edges are regular; complements move to the output."""
        manager = Manager(["a"])
        positive = manager.make_node(0, ONE, ZERO)
        negative = manager.make_node(0, ZERO, ONE)
        assert positive == negative ^ 1

    def test_negation_shares_structure(self):
        manager = Manager(["a", "b"])
        f = manager.and_(manager.var(0), manager.var(1))
        assert manager.size(f) == manager.size(f ^ 1)
        assert manager.nodes_reachable((f,)) == manager.nodes_reachable((f ^ 1,))


class TestIte:
    def test_terminal_cases(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        assert manager.ite(ONE, a, b) == a
        assert manager.ite(ZERO, a, b) == b
        assert manager.ite(a, ONE, ZERO) == a
        assert manager.ite(a, ZERO, ONE) == a ^ 1
        assert manager.ite(a, b, b) == b

    def test_basic_connectives_truth_tables(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        cases = {
            (False, False): (False, False, False),
            (False, True): (False, True, True),
            (True, False): (False, True, True),
            (True, True): (True, True, False),
        }
        for (va, vb), (and_v, or_v, xor_v) in cases.items():
            env = {0: va, 1: vb}
            assert manager.eval(manager.and_(a, b), env) == and_v
            assert manager.eval(manager.or_(a, b), env) == or_v
            assert manager.eval(manager.xor(a, b), env) == xor_v
            assert manager.eval(manager.and_(a, b) ^ 1, env) == (not and_v)

    def test_xnor_and_implies(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        assert manager.xnor(a, b) == manager.xor(a, b) ^ 1
        assert manager.implies(a, b) == manager.or_(a ^ 1, b)

    def test_ite_is_canonical(self):
        """Same function built different ways gives the same ref."""
        manager = Manager(["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        first = manager.or_(manager.and_(a, b), manager.and_(a, c))
        second = manager.and_(a, manager.or_(b, c))
        assert first == second

    def test_demorgan(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        assert manager.and_(a, b) ^ 1 == manager.or_(a ^ 1, b ^ 1)

    def test_many_variants(self):
        manager = Manager(["a", "b", "c"])
        refs = [manager.var(level) for level in range(3)]
        assert manager.and_many(refs) == manager.and_(
            refs[0], manager.and_(refs[1], refs[2])
        )
        assert manager.or_many(refs) == manager.or_(
            refs[0], manager.or_(refs[1], refs[2])
        )
        assert manager.and_many([]) == ONE
        assert manager.or_many([]) == ZERO

    def test_leq(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        ab = manager.and_(a, b)
        assert manager.leq(ab, a)
        assert not manager.leq(a, ab)
        assert manager.leq(ZERO, ab)
        assert manager.leq(ab, ONE)


class TestBranches:
    def test_branches_at_root_level(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        f = manager.ite(a, b, b ^ 1)
        then_f, else_f = manager.branches(f, 0)
        assert then_f == b
        assert else_f == b ^ 1

    def test_branches_below_level_identity(self):
        """Mirrors bdd_get_branches in Figure 2: independent var."""
        manager = Manager(["a", "b"])
        b = manager.var(1)
        assert manager.branches(b, 0) == (b, b)

    def test_branches_propagate_complement(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        f = manager.and_(a, b)
        then_f, else_f = manager.branches(f ^ 1, 0)
        assert then_f == b ^ 1
        assert else_f == ONE


class TestCofactorQuantify:
    def test_cofactor(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        f = manager.xor(a, b)
        assert manager.cofactor(f, 0, True) == b ^ 1
        assert manager.cofactor(f, 0, False) == b
        assert manager.cofactor(f, 1, True) == a ^ 1

    def test_restrict_cube(self):
        manager = Manager(["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        f = manager.and_many([a, b, c])
        assert manager.restrict_cube(f, {0: True, 1: True}) == c
        assert manager.restrict_cube(f, {0: False}) == ZERO

    def test_exists(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        f = manager.and_(a, b)
        assert manager.exists(f, [0]) == b
        assert manager.exists(f, [0, 1]) == ONE
        assert manager.exists(ZERO, [0]) == ZERO

    def test_forall(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        f = manager.or_(a, b)
        assert manager.forall(f, [0]) == b
        assert manager.forall(f, [0, 1]) == ZERO

    def test_exists_forall_duality(self):
        manager = Manager(["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        f = manager.ite(a, b, c)
        assert manager.exists(f, [1]) == (manager.forall(f ^ 1, [1]) ^ 1)

    def test_and_exists_equals_composed(self):
        manager = Manager(["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        f = manager.or_(a, b)
        g = manager.ite(b, c, a)
        expected = manager.exists(manager.and_(f, g), [1])
        assert manager.and_exists(f, g, [1]) == expected

    def test_quantify_empty_set_is_identity(self):
        manager = Manager(["a"])
        a = manager.var(0)
        assert manager.exists(a, []) == a
        assert manager.forall(a, []) == a


class TestCompose:
    def test_compose_variable(self):
        manager = Manager(["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        f = manager.and_(a, b)
        composed = manager.compose(f, 1, manager.or_(b, c))
        assert composed == manager.and_(a, manager.or_(b, c))

    def test_vector_compose_is_simultaneous(self):
        """Swapping variables must not cascade sequentially."""
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        f = manager.and_(a, b ^ 1)
        swapped = manager.vector_compose(f, {0: b, 1: a})
        assert swapped == manager.and_(b, a ^ 1)

    def test_rename(self):
        manager = Manager(["a", "b", "c", "d"])
        a, b = manager.var(0), manager.var(1)
        f = manager.and_(a, b)
        renamed = manager.rename(f, {0: 2, 1: 3})
        assert renamed == manager.and_(manager.var(2), manager.var(3))


class TestCounting:
    def test_size_includes_terminal(self):
        """The paper's |f| counts the constant node."""
        manager = Manager(["a"])
        assert manager.size(ONE) == 1
        assert manager.size(manager.var(0)) == 2

    def test_size_multi_shares(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        f = manager.and_(a, b)
        assert manager.size_multi([f, f]) == manager.size(f)
        assert manager.size_multi([f, b]) == manager.size(f)

    def test_support(self):
        manager = Manager(["a", "b", "c"])
        a, c = manager.var(0), manager.var(2)
        f = manager.xor(a, c)
        assert manager.support(f) == {0, 2}
        assert manager.support(ONE) == set()

    def test_sat_count(self):
        manager = Manager(["a", "b", "c"])
        a, b = manager.var(0), manager.var(1)
        assert manager.sat_count(ONE) == 8
        assert manager.sat_count(ZERO) == 0
        assert manager.sat_count(a) == 4
        assert manager.sat_count(manager.and_(a, b)) == 2
        assert manager.sat_count(manager.xor(a, b)) == 4

    def test_sat_count_explicit_width(self):
        manager = Manager(["a", "b"])
        assert manager.sat_count(manager.var(0), 1) == 1

    def test_nodes_below(self):
        manager = Manager(["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        f = manager.and_many([a, b, c])
        # Below level 0: the b and c nodes plus the terminal.
        assert manager.nodes_below(f, 0) == 3
        assert manager.nodes_below(f, 2) == 1  # just the terminal

    def test_level_profile(self):
        manager = Manager(["a", "b"])
        f = manager.xor(manager.var(0), manager.var(1))
        profile = manager.level_profile(f)
        assert profile[0] == 1
        assert profile[1] == 1


class TestCaches:
    def test_named_cache_identity(self):
        manager = Manager()
        assert manager.cache("x") is manager.cache("x")

    def test_clear_caches_preserves_results(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        before = manager.and_(a, b)
        manager.clear_caches()
        assert manager.and_(a, b) == before
