"""Property-based tests for ROBDD canonicity and semantics.

The central BDD invariant: two functions are semantically equal iff
their refs are identical.  We exercise it by building random truth
tables through two independent routes.
"""

from hypothesis import given, settings, strategies as st

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.truthtable import bdd_from_leaves, leaves_from_bdd

NUM_VARS = 4

leaves = st.lists(
    st.booleans(), min_size=1 << NUM_VARS, max_size=1 << NUM_VARS
)


@given(leaves)
def test_truth_table_roundtrip(table):
    manager = Manager()
    ref = bdd_from_leaves(manager, table)
    assert leaves_from_bdd(manager, ref, NUM_VARS) == table


@given(leaves)
def test_minterm_build_matches_leaf_build(table):
    """Build via OR of minterm cubes — must hit the identical ref."""
    manager = Manager()
    manager.ensure_vars(NUM_VARS)
    from_leaves = bdd_from_leaves(manager, table)
    from_minterms = ZERO
    for index, value in enumerate(table):
        if not value:
            continue
        cube = {
            level: bool((index >> (NUM_VARS - 1 - level)) & 1)
            for level in range(NUM_VARS)
        }
        from_minterms = manager.or_(from_minterms, manager.cube_ref(cube))
    assert from_leaves == from_minterms


@given(leaves, leaves)
def test_connectives_pointwise(table_f, table_g):
    manager = Manager()
    f = bdd_from_leaves(manager, table_f)
    g = bdd_from_leaves(manager, table_g)
    and_leaves = leaves_from_bdd(manager, manager.and_(f, g), NUM_VARS)
    or_leaves = leaves_from_bdd(manager, manager.or_(f, g), NUM_VARS)
    xor_leaves = leaves_from_bdd(manager, manager.xor(f, g), NUM_VARS)
    not_leaves = leaves_from_bdd(manager, f ^ 1, NUM_VARS)
    for index, (vf, vg) in enumerate(zip(table_f, table_g)):
        assert and_leaves[index] == (vf and vg)
        assert or_leaves[index] == (vf or vg)
        assert xor_leaves[index] == (vf != vg)
        assert not_leaves[index] == (not vf)


@given(leaves, leaves, leaves)
@settings(max_examples=50)
def test_ite_pointwise(table_f, table_g, table_h):
    manager = Manager()
    f = bdd_from_leaves(manager, table_f)
    g = bdd_from_leaves(manager, table_g)
    h = bdd_from_leaves(manager, table_h)
    ite_leaves = leaves_from_bdd(manager, manager.ite(f, g, h), NUM_VARS)
    for index in range(1 << NUM_VARS):
        expected = table_g[index] if table_f[index] else table_h[index]
        assert ite_leaves[index] == expected


@given(leaves)
def test_complement_edges_reduce_storage(table):
    """f and ¬f always share the exact same node set."""
    manager = Manager()
    f = bdd_from_leaves(manager, table)
    assert manager.nodes_reachable((f,)) == manager.nodes_reachable((f ^ 1,))


@given(leaves)
def test_sat_count_matches_truth_table(table):
    manager = Manager()
    f = bdd_from_leaves(manager, table)
    assert manager.sat_count(f, NUM_VARS) == sum(table)


@given(leaves, st.integers(min_value=0, max_value=NUM_VARS - 1))
def test_shannon_expansion(table, level):
    """f = x·f_x + ¬x·f_¬x for every variable."""
    manager = Manager()
    f = bdd_from_leaves(manager, table)
    x = manager.var(level)
    positive = manager.cofactor(f, level, True)
    negative = manager.cofactor(f, level, False)
    assert manager.ite(x, positive, negative) == f


@given(leaves, st.integers(min_value=0, max_value=NUM_VARS - 1))
def test_quantification_pointwise(table, level):
    manager = Manager()
    f = bdd_from_leaves(manager, table)
    exists_f = manager.exists(f, [level])
    forall_f = manager.forall(f, [level])
    positive = manager.cofactor(f, level, True)
    negative = manager.cofactor(f, level, False)
    assert exists_f == manager.or_(positive, negative)
    assert forall_f == manager.and_(positive, negative)


@given(leaves)
def test_cube_iteration_covers_onset(table):
    """Cubes partition the onset: their sat counts sum to |onset|."""
    manager = Manager()
    f = bdd_from_leaves(manager, table)
    total = 0
    for cube in manager.cubes(f):
        total += 1 << (NUM_VARS - len(cube))
    assert total == sum(table)
