"""Tests for the durable BDD wire format (repro.bdd.wire)."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.reorder import is_equiv
from repro.bdd.wire import (
    BATCH_MAGIC,
    BATCH_VERSION,
    MAX_WIRE_ITEMS,
    WIRE_MAGIC,
    WIRE_VERSION,
    WireError,
    decode_batch,
    deserialize,
    deserialize_instance,
    encode_batch,
    payload_summary,
    serialize,
    serialize_instance,
)
from tests.conftest import build_instance, instance_strategy


def _sample_instance():
    manager = Manager(["a", "b", "c", "d"])
    a, b, c, d = (manager.var(level) for level in range(4))
    f = manager.or_(manager.and_(a, b), manager.and_(c, d))
    care = manager.or_(a, b)
    return manager, f, care


class TestRoundTrip:
    def test_single_function(self):
        manager, f, _ = _sample_instance()
        target, roots = deserialize(serialize(manager, (f,)))
        assert len(roots) == 1
        assert is_equiv(manager, f, target, roots[0])
        assert target.size(roots[0]) == manager.size(f)

    def test_instance_round_trip(self):
        manager, f, care = _sample_instance()
        payload = serialize_instance(manager, f, care)
        target, f2, c2 = deserialize_instance(payload)
        assert is_equiv(manager, f, target, f2)
        assert is_equiv(manager, care, target, c2)

    def test_constants(self):
        manager, _, _ = _sample_instance()
        target, roots = deserialize(serialize(manager, (ONE, ZERO)))
        assert roots == [ONE, ZERO]

    def test_shared_dag_preserves_node_count(self):
        manager, f, care = _sample_instance()
        payload = serialize(manager, (f, care))
        target, roots = deserialize(payload)
        assert target.size_multi(roots) == manager.size_multi([f, care])

    def test_into_existing_manager(self):
        manager, f, care = _sample_instance()
        payload = serialize_instance(manager, f, care)
        target, f2, c2 = deserialize_instance(payload, manager=manager)
        assert target is manager
        assert (f2, c2) == (f, care)

    def test_extends_shorter_manager(self):
        manager, f, care = _sample_instance()
        payload = serialize_instance(manager, f, care)
        short = Manager(["a", "b"])
        target, f2, c2 = deserialize_instance(payload, manager=short)
        assert target is short
        assert short.var_names == ("a", "b", "c", "d")
        assert is_equiv(manager, f, short, f2)
        assert is_equiv(manager, care, short, c2)

    def test_variable_universe_mismatch_rejected(self):
        manager, f, care = _sample_instance()
        payload = serialize_instance(manager, f, care)
        other = Manager(["a", "x", "c", "d"])
        with pytest.raises(WireError, match="universe mismatch"):
            deserialize_instance(payload, manager=other)

    def test_deterministic_across_creation_histories(self):
        # Build the same two functions with very different manager
        # histories; the payloads must be byte-identical.
        manager, f, care = _sample_instance()
        other = Manager(["a", "b", "c", "d"])
        a, b, c, d = (other.var(level) for level in range(4))
        # Touch the unique table in a different order first.
        junk = other.and_(d, other.or_(a, c))
        other.xor(junk, b)
        g = other.or_(other.and_(a, b), other.and_(c, d))
        care2 = other.or_(a, b)
        assert serialize_instance(manager, f, care) == serialize_instance(
            other, g, care2
        )

    @settings(max_examples=30, deadline=None)
    @given(instance=instance_strategy(4))
    def test_property_round_trip(self, instance):
        manager = Manager(["x%d" % index for index in range(4)])
        f, c = build_instance(manager, *instance)
        target, f2, c2 = deserialize_instance(
            serialize_instance(manager, f, c)
        )
        assert is_equiv(manager, f, target, f2)
        assert is_equiv(manager, c, target, c2)
        assert target.size_multi([f2, c2]) == manager.size_multi([f, c])


class TestSuiteRoundTrip:
    def test_full_circuit_suite(self):
        # Every recorded minimization instance of the paper's suite
        # survives a round trip into a fresh manager: semantically
        # equal per is_equiv, with identical node counts.
        from repro.experiments.calls import collect_suite_calls

        total = 0
        for record in collect_suite_calls():
            manager = record.manager
            for call in record.calls:
                payload = serialize_instance(manager, call.f, call.c)
                target, f2, c2 = deserialize_instance(payload)
                assert is_equiv(manager, call.f, target, f2)
                assert is_equiv(manager, call.c, target, c2)
                assert target.size_multi([f2, c2]) == manager.size_multi(
                    [call.f, call.c]
                )
                total += 1
        assert total > 0


class TestRejection:
    def test_every_truncation_rejected(self):
        manager, f, care = _sample_instance()
        payload = serialize_instance(manager, f, care)
        for length in range(len(payload)):
            with pytest.raises(WireError):
                deserialize(payload[:length])

    def test_fuzzed_bit_flips_rejected(self):
        import random

        manager, f, care = _sample_instance()
        payload = serialize_instance(manager, f, care)
        rng = random.Random(20260807)
        for _ in range(200):
            corrupted = bytearray(payload)
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
            with pytest.raises(WireError):
                deserialize(bytes(corrupted))

    def test_trailing_garbage_rejected(self):
        manager, f, care = _sample_instance()
        payload = serialize_instance(manager, f, care)
        with pytest.raises(WireError, match="trailing"):
            deserialize(payload + b"\x00")

    def test_bad_magic(self):
        with pytest.raises(WireError, match="magic"):
            deserialize(b"NOPE" + b"\x00" * 16)

    def test_unknown_version(self):
        manager, f, care = _sample_instance()
        payload = bytearray(serialize_instance(manager, f, care))
        payload[4] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="version"):
            deserialize(bytes(payload))

    def test_non_bytes_rejected(self):
        with pytest.raises(WireError, match="bytes"):
            deserialize("not bytes")

    def test_oversized_count_rejected(self):
        # A corrupted count field must fail cleanly, not allocate.
        data = WIRE_MAGIC + struct.pack(
            "<BBI", WIRE_VERSION, 0, MAX_WIRE_ITEMS + 1
        )
        with pytest.raises(WireError, match="count"):
            deserialize(data + b"\x00" * 8)

    def test_root_out_of_range(self):
        manager = Manager(["a"])
        payload = serialize(manager, (manager.var(0),))
        # Patch the root wire-ref (second-to-last u32) out of range and
        # re-seal the checksum so only the structural check can fire.
        import zlib

        body = bytearray(payload[:-4])
        struct.pack_into("<I", body, len(body) - 4, 99 << 1)
        sealed = bytes(body) + struct.pack(
            "<I", zlib.crc32(bytes(body)) & 0xFFFFFFFF
        )
        with pytest.raises(WireError, match="root"):
            deserialize(sealed)

    def test_instance_needs_two_roots(self):
        manager, f, _ = _sample_instance()
        with pytest.raises(WireError, match="exactly 2 roots"):
            deserialize_instance(serialize(manager, (f,)))

    def test_serialize_rejects_foreign_ref(self):
        manager = Manager(["a"])
        with pytest.raises(WireError, match="not a ref"):
            serialize(manager, (9999,))


def _sample_batch():
    manager, f, care = _sample_instance()
    other = manager.and_(f, care)
    instances = [
        serialize_instance(manager, f, care),
        serialize_instance(manager, other, care),
    ]
    cells = [(0, "naive"), (1, "restrict"), (0, "constrain")]
    return instances, cells


class TestBatchRoundTrip:
    def test_envelope_round_trip(self):
        instances, cells = _sample_batch()
        envelope = decode_batch(encode_batch(instances, cells))
        assert envelope.instances == instances
        assert envelope.cells == cells

    def test_nested_payloads_stay_decodable(self):
        # The envelope treats instance payloads as opaque bytes; they
        # must come out byte-identical and still parse as instances.
        manager, f, care = _sample_instance()
        instances, _ = _sample_batch()
        envelope = decode_batch(encode_batch(instances, [(0, "naive")]))
        target, f2, c2 = deserialize_instance(envelope.instances[0])
        assert is_equiv(manager, f, target, f2)
        assert is_equiv(manager, care, target, c2)

    def test_shared_instance_encoded_once(self):
        # N cells over one instance must not grow the envelope by N
        # copies of the payload.
        instances, _ = _sample_batch()
        one_cell = encode_batch([instances[0]], [(0, "naive")])
        many = encode_batch(
            [instances[0]], [(0, "naive")] * 16
        )
        cell_framing = 4 + 2 + len(b"naive")
        assert len(many) - len(one_cell) == 15 * cell_framing

    def test_deterministic(self):
        instances, cells = _sample_batch()
        assert encode_batch(instances, cells) == encode_batch(
            instances, cells
        )


class TestBatchRejection:
    def test_empty_cell_list_rejected_at_encode(self):
        instances, _ = _sample_batch()
        with pytest.raises(WireError, match="at least one cell"):
            encode_batch(instances, [])

    def test_encode_rejects_out_of_range_index(self):
        instances, _ = _sample_batch()
        with pytest.raises(WireError, match="references instance"):
            encode_batch(instances, [(2, "naive")])

    def test_encode_rejects_non_bytes_instance(self):
        with pytest.raises(WireError, match="bytes"):
            encode_batch(["not bytes"], [(0, "naive")])

    def test_bad_magic(self):
        with pytest.raises(WireError, match="magic"):
            decode_batch(b"NOPE" + b"\x00" * 16)

    def test_unknown_version(self):
        instances, cells = _sample_batch()
        data = bytearray(encode_batch(instances, cells))
        data[4] = BATCH_VERSION + 1
        with pytest.raises(WireError, match="version"):
            decode_batch(bytes(data))

    def test_checksum_flip_rejected(self):
        instances, cells = _sample_batch()
        data = bytearray(encode_batch(instances, cells))
        data[-1] ^= 0x01
        with pytest.raises(WireError, match="checksum"):
            decode_batch(bytes(data))

    def test_every_truncation_rejected(self):
        instances, cells = _sample_batch()
        data = encode_batch(instances, cells)
        for length in range(len(data)):
            with pytest.raises(WireError):
                decode_batch(data[:length])

    def test_fuzzed_bit_flips_rejected(self):
        import random

        instances, cells = _sample_batch()
        data = encode_batch(instances, cells)
        rng = random.Random(20260808)
        for _ in range(200):
            corrupted = bytearray(data)
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
            try:
                envelope = decode_batch(bytes(corrupted))
            except WireError:
                continue
            # A flip inside a nested opaque payload passes envelope
            # framing (by design) but must fail instance validation.
            assert envelope.cells == cells
            changed = [
                payload
                for payload, original in zip(
                    envelope.instances, instances
                )
                if payload != original
            ]
            assert len(changed) == 1
            with pytest.raises(WireError):
                deserialize_instance(changed[0])

    def test_trailing_garbage_rejected(self):
        instances, cells = _sample_batch()
        with pytest.raises(WireError, match="trailing"):
            decode_batch(encode_batch(instances, cells) + b"\x00")

    def test_non_bytes_rejected(self):
        with pytest.raises(WireError, match="bytes"):
            decode_batch("not bytes")

    def test_oversized_counts_rejected(self):
        # Corrupted instance/cell counts must fail cleanly before any
        # allocation is attempted.
        header = BATCH_MAGIC + struct.pack("<BB", BATCH_VERSION, 0)
        data = header + struct.pack("<I", MAX_WIRE_ITEMS + 1)
        with pytest.raises(WireError, match="count"):
            decode_batch(data + b"\x00" * 8)

    def test_decode_rejects_out_of_range_index(self):
        # Hand-build an envelope whose cell references instance 1 of 1
        # and re-seal the CRC so only the structural check can fire.
        import zlib

        instances, _ = _sample_batch()
        body = bytearray(
            encode_batch([instances[0]], [(0, "naive")])[:-4]
        )
        offset = len(BATCH_MAGIC) + 2 + 4 + 4 + len(instances[0]) + 4
        struct.pack_into("<I", body, offset, 1)
        sealed = bytes(body) + struct.pack(
            "<I", zlib.crc32(bytes(body)) & 0xFFFFFFFF
        )
        with pytest.raises(WireError, match="references instance"):
            decode_batch(sealed)

    def test_zero_cells_rejected_at_decode(self):
        # Framing with num_cells == 0 is a caller bug on the wire too.
        import zlib

        instances, _ = _sample_batch()
        body = bytearray(
            encode_batch([instances[0]], [(0, "naive")])[:-4]
        )
        cells_offset = len(BATCH_MAGIC) + 2 + 4 + 4 + len(instances[0])
        struct.pack_into("<I", body, cells_offset, 0)
        trimmed = bytes(body[: cells_offset + 4])
        sealed = trimmed + struct.pack(
            "<I", zlib.crc32(trimmed) & 0xFFFFFFFF
        )
        with pytest.raises(WireError, match="no cells"):
            decode_batch(sealed)


class TestSummary:
    def test_payload_summary(self):
        manager, f, care = _sample_instance()
        payload = serialize_instance(manager, f, care)
        summary = payload_summary(payload)
        assert summary["version"] == WIRE_VERSION
        assert summary["num_vars"] == 4
        assert summary["num_roots"] == 2
        assert summary["num_nodes"] == manager.size_multi([f, care])
        assert summary["num_bytes"] == len(payload)
