"""Tests for the paper's leaf-string instance notation."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.truthtable import (
    bdd_from_leaves,
    instance_from_leaf_string,
    leaf_string,
    leaves_from_bdd,
    parse_leaf_string,
)


class TestParseLeafString:
    def test_whitespace_ignored(self):
        assert parse_leaf_string("d1 01") == ["d", "1", "0", "1"]

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            parse_leaf_string("d1 0")

    def test_invalid_characters(self):
        with pytest.raises(ValueError):
            parse_leaf_string("d1x0")


class TestLeafConvention:
    """Figure 1f: left branch is 0, right branch is 1, x1 at the root."""

    def test_leftmost_leaf_is_all_zero_assignment(self):
        manager = Manager()
        f = bdd_from_leaves(manager, [True, False, False, False])
        assert manager.eval(f, {0: False, 1: False})
        assert not manager.eval(f, {0: True, 1: True})

    def test_top_variable_is_msb(self):
        manager = Manager()
        # 0011: true exactly when x1 = 1.
        f = bdd_from_leaves(manager, [False, False, True, True])
        assert f == manager.var(0)

    def test_bottom_variable_is_lsb(self):
        manager = Manager()
        # 0101: true exactly when x2 = 1.
        f = bdd_from_leaves(manager, [False, True, False, True])
        assert f == manager.var(1)

    def test_constants(self):
        manager = Manager()
        assert bdd_from_leaves(manager, [True, True]) == ONE
        assert bdd_from_leaves(manager, [False, False]) == ZERO


class TestInstanceParsing:
    def test_dc_positions_carry_to_care_function(self):
        manager = Manager()
        f, c = instance_from_leaf_string(manager, "d1 01")
        # Care function is 0111: false only on the leftmost leaf.
        assert not manager.eval(c, {0: False, 1: False})
        assert manager.eval(c, {0: False, 1: True})
        # f is 0 on the don't-care leaf by convention.
        assert not manager.eval(f, {0: False, 1: False})
        assert manager.eval(f, {0: True, 1: True})

    def test_roundtrip_via_leaf_string(self):
        manager = Manager()
        text = "d1011d00"
        f, c = instance_from_leaf_string(manager, text)
        assert leaf_string(manager, f, c, 3) == text

    def test_paper_figure1_instance(self):
        """Figure 1: f = (1011 0100), c marks leaves 'enclosed by squares'.

        We reconstruct the instance from Figures 1a-1c: the minimum
        covers of Figures 1e/1f have 4 nodes while the plain f has more,
        and the suboptimal cover of Figure 1d sits in between.
        """
        manager = Manager()
        # A 3-variable instance exercising both merge and delete rules.
        f, c = instance_from_leaf_string(manager, "1d0d 0d00")
        size_f = manager.size(f)
        from repro.core.sibling import restrict

        cover = restrict(manager, f, c)
        assert manager.size(cover) <= size_f


class TestLeavesFromBdd:
    def test_inverse_of_build(self):
        manager = Manager()
        table = [True, False, True, True, False, False, True, False]
        ref = bdd_from_leaves(manager, table)
        assert leaves_from_bdd(manager, ref, 3) == table

    def test_rejects_bad_length(self):
        manager = Manager()
        with pytest.raises(ValueError):
            bdd_from_leaves(manager, [True, False, True])
