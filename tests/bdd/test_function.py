"""Tests for the Function wrapper layer."""

import pytest

from repro.bdd import Manager, Function


@pytest.fixture
def setup():
    manager = Manager(["a", "b", "c"])
    a = Function(manager, manager.var("a"))
    b = Function(manager, manager.var("b"))
    c = Function(manager, manager.var("c"))
    return manager, a, b, c


def test_operators(setup):
    manager, a, b, c = setup
    assert (a & b).ref == manager.and_(a.ref, b.ref)
    assert (a | b).ref == manager.or_(a.ref, b.ref)
    assert (a ^ b).ref == manager.xor(a.ref, b.ref)
    assert (~a).ref == a.ref ^ 1
    assert (a - b).ref == manager.diff(a.ref, b.ref)


def test_equality_and_hash(setup):
    manager, a, b, _ = setup
    assert a & b == b & a
    assert hash(a & b) == hash(b & a)
    assert a != b
    assert a != "not a function"


def test_constants(setup):
    manager, a, _, _ = setup
    true = Function.true(manager)
    false = Function.false(manager)
    assert (a | ~a) == true
    assert (a & ~a) == false
    assert true.is_one() and false.is_zero()
    assert true.is_constant() and not a.is_constant()


def test_truthiness_is_ambiguous(setup):
    _, a, _, _ = setup
    with pytest.raises(TypeError):
        bool(a)


def test_containment(setup):
    _, a, b, _ = setup
    assert (a & b) <= a
    assert a >= (a & b)
    assert not (a <= (a & b))


def test_call_evaluates(setup):
    _, a, b, _ = setup
    f = a & ~b
    assert f(a=True, b=False)
    assert not f(a=True, b=True)


def test_cofactor_exists_forall(setup):
    _, a, b, c = setup
    f = (a & b) | c
    assert f.cofactor(a=True) == b | c
    assert f.exists("b") == a | c
    assert f.forall("b") == c


def test_compose(setup):
    _, a, b, c = setup
    f = a & b
    assert f.compose(b=c) == a & c


def test_ite_iff_implies(setup):
    _, a, b, c = setup
    assert a.ite(b, c) == (a & b) | (~a & c)
    assert a.implies(b) == ~a | b
    assert a.iff(b) == ~(a ^ b)


def test_size_support_len(setup):
    _, a, b, _ = setup
    f = a & b
    assert f.size() == 3
    assert len(f) == 3
    assert f.support() == {"a", "b"}


def test_sat_count(setup):
    _, a, b, _ = setup
    assert (a | b).sat_count() == 6  # three vars declared


def test_cubes_named(setup):
    _, a, b, _ = setup
    cubes = list((a & ~b).cubes())
    assert cubes == [{"a": True, "b": False}]


def test_cross_manager_rejected(setup):
    _, a, _, _ = setup
    other = Manager(["a"])
    foreign = Function(other, other.var("a"))
    with pytest.raises(ValueError):
        a & foreign


def test_repr(setup):
    manager, a, _, _ = setup
    assert "TRUE" in repr(Function.true(manager))
    assert "FALSE" in repr(Function.false(manager))
    assert "support" in repr(a)
