"""Oracle stress test: random operation sequences vs truth tables.

Builds random expression DAGs over a small variable set and evaluates
each intermediate result two ways — through the BDD manager and through
plain Python truth tables — checking agreement and canonicity at every
step.  This is the broadest net over the manager's operator core.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.truthtable import bdd_from_leaves, leaves_from_bdd

NUM_VARS = 4
WIDTH = 1 << NUM_VARS
MASK = (1 << WIDTH) - 1

# Truth tables as bitmasks: bit k = value on assignment k (MSB var 0).


def _var_table(level: int) -> int:
    table = 0
    for assignment in range(WIDTH):
        if (assignment >> (NUM_VARS - 1 - level)) & 1:
            table |= 1 << assignment
    return table


OPERATIONS = ("and", "or", "xor", "not", "ite", "exists", "forall", "cofactor")


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_random_operation_sequences(seed):
    rng = random.Random(seed)
    manager = Manager()
    manager.ensure_vars(NUM_VARS)
    # Parallel stacks of (ref, truth-table-bitmask).
    refs = [manager.var(level) for level in range(NUM_VARS)]
    tables = [_var_table(level) for level in range(NUM_VARS)]
    refs += [ONE, ZERO]
    tables += [MASK, 0]
    for _ in range(25):
        operation = rng.choice(OPERATIONS)
        pick = lambda: rng.randrange(len(refs))
        if operation == "not":
            index = pick()
            refs.append(refs[index] ^ 1)
            tables.append(~tables[index] & MASK)
        elif operation in ("and", "or", "xor"):
            a, b = pick(), pick()
            if operation == "and":
                refs.append(manager.and_(refs[a], refs[b]))
                tables.append(tables[a] & tables[b])
            elif operation == "or":
                refs.append(manager.or_(refs[a], refs[b]))
                tables.append(tables[a] | tables[b])
            else:
                refs.append(manager.xor(refs[a], refs[b]))
                tables.append(tables[a] ^ tables[b])
        elif operation == "ite":
            a, b, c = pick(), pick(), pick()
            refs.append(manager.ite(refs[a], refs[b], refs[c]))
            tables.append(
                (tables[a] & tables[b]) | (~tables[a] & tables[c]) & MASK
            )
            tables[-1] &= MASK
        elif operation in ("exists", "forall"):
            index = pick()
            level = rng.randrange(NUM_VARS)
            positive = _cofactor_table(tables[index], level, True)
            negative = _cofactor_table(tables[index], level, False)
            if operation == "exists":
                refs.append(manager.exists(refs[index], [level]))
                tables.append(positive | negative)
            else:
                refs.append(manager.forall(refs[index], [level]))
                tables.append(positive & negative)
        else:  # cofactor
            index = pick()
            level = rng.randrange(NUM_VARS)
            value = rng.random() < 0.5
            refs.append(manager.cofactor(refs[index], level, value))
            tables.append(_cofactor_table(tables[index], level, value))
        # Check the newest result agrees with its oracle table, and
        # that the canonical form matches a fresh rebuild.
        leaves = leaves_from_bdd(manager, refs[-1], NUM_VARS)
        expected = [bool((tables[-1] >> k) & 1) for k in range(WIDTH)]
        assert leaves == expected
        rebuilt = bdd_from_leaves(manager, expected)
        assert rebuilt == refs[-1]


def _cofactor_table(table: int, level: int, value: bool) -> int:
    result = 0
    bit = NUM_VARS - 1 - level
    for assignment in range(WIDTH):
        forced = (assignment | (1 << bit)) if value else (assignment & ~(1 << bit))
        if (table >> forced) & 1:
            result |= 1 << assignment
    return result
