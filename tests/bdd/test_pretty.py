"""Tests for pretty-printing and the structural validator."""

import pytest
from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.bdd.pretty import format_ite, format_sop, format_table
from repro.bdd.truthtable import bdd_from_leaves

from tests.conftest import leaves_strategy


class TestFormatSop:
    def test_constants(self):
        manager = Manager(["a"])
        assert format_sop(manager, ONE) == "1"
        assert format_sop(manager, ZERO) == "0"

    def test_literals(self):
        manager = Manager(["a"])
        assert format_sop(manager, manager.var("a")) == "a"
        assert format_sop(manager, manager.var("a") ^ 1) == "a'"

    def test_products_and_sums(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a & ~b")
        assert format_sop(manager, f) == "a b'"
        g = parse_expression(manager, "a ^ b")
        assert format_sop(manager, g) in ("a b' + a' b", "a' b + a b'")

    @given(leaves_strategy(3))
    @settings(max_examples=40)
    def test_roundtrip_through_parser(self, table):
        """Printing then re-parsing reproduces the function."""
        manager = Manager(["a", "b", "c"])
        f = bdd_from_leaves(manager, table)
        text = format_sop(manager, f)
        assert parse_expression(manager, text) == f


class TestFormatIte:
    def test_structure(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a & b")
        assert format_ite(manager, f) == "ite(a, ite(b, 1, 0), 0)"

    def test_depth_cap(self):
        manager = Manager(["a", "b", "c"])
        f = parse_expression(manager, "a & b & c")
        assert "..." in format_ite(manager, f, max_depth=1)


class TestFormatTable:
    def test_small_table(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a | b")
        text = format_table(manager, f, 2)
        assert text.count("| 1") == 3
        assert text.count("| 0") == 1

    def test_too_wide_rejected(self):
        manager = Manager(["v%d" % i for i in range(7)])
        with pytest.raises(ValueError):
            format_table(manager, ONE, 7)


class TestValidate:
    @given(leaves_strategy(4))
    @settings(max_examples=30)
    def test_all_built_bdds_validate(self, table):
        manager = Manager()
        f = bdd_from_leaves(manager, table)
        manager.validate(f)
        manager.validate(f ^ 1)

    def test_validate_catches_corruption(self):
        manager = Manager(["a", "b"])
        f = parse_expression(manager, "a & b")
        # Corrupt a node in place: make the else-edge point upward.
        index = f >> 1
        saved = manager._low[index]
        manager._low[index] = f
        try:
            with pytest.raises(AssertionError):
                manager.validate(f)
        finally:
            manager._low[index] = saved
