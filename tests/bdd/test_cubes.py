"""Tests for cube utilities: iteration, construction, recognition."""

import pytest

from repro.bdd.manager import Manager, ONE, ZERO


class TestCubeRef:
    def test_single_literal(self):
        manager = Manager(["a"])
        assert manager.cube_ref({0: True}) == manager.var(0)
        assert manager.cube_ref({0: False}) == manager.var(0) ^ 1

    def test_multi_literal(self):
        manager = Manager(["a", "b", "c"])
        cube = manager.cube_ref({0: True, 2: False})
        expected = manager.and_(manager.var(0), manager.var(2) ^ 1)
        assert cube == expected

    def test_empty_cube_is_one(self):
        manager = Manager()
        assert manager.cube_ref({}) == ONE


class TestIsCube:
    def test_constants(self):
        manager = Manager(["a"])
        assert manager.is_cube(ONE)  # the empty cube
        assert not manager.is_cube(ZERO)

    def test_literals_and_products(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        assert manager.is_cube(a)
        assert manager.is_cube(a ^ 1)
        assert manager.is_cube(manager.and_(a, b ^ 1))

    def test_non_cubes(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        assert not manager.is_cube(manager.or_(a, b))
        assert not manager.is_cube(manager.xor(a, b))


class TestCubeIteration:
    def test_zero_has_no_cubes(self):
        manager = Manager(["a"])
        assert list(manager.cubes(ZERO)) == []

    def test_one_has_empty_cube(self):
        manager = Manager(["a"])
        assert list(manager.cubes(ONE)) == [{}]

    def test_xor_cubes(self):
        manager = Manager(["a", "b"])
        f = manager.xor(manager.var(0), manager.var(1))
        cubes = list(manager.cubes(f))
        assert len(cubes) == 2
        for cube in cubes:
            assert cube[0] != cube[1]

    def test_limit(self):
        manager = Manager(["a", "b", "c"])
        f = ONE
        for level in range(3):
            f = manager.and_(f, ONE)  # keep f = ONE, then build xor chain
        f = manager.xor(manager.var(0), manager.xor(manager.var(1), manager.var(2)))
        assert len(list(manager.cubes(f, limit=2))) == 2

    def test_cubes_are_disjoint_paths(self):
        """Each cube corresponds to a distinct BDD path to 1."""
        manager = Manager(["a", "b", "c"])
        a, b, c = (manager.var(level) for level in range(3))
        f = manager.or_(manager.and_(a, b), manager.and_(a ^ 1, c))
        union = ZERO
        for cube in manager.cubes(f):
            cube_ref = manager.cube_ref(cube)
            assert manager.and_(cube_ref, union) == ZERO  # disjoint
            union = manager.or_(union, cube_ref)
        assert union == f


class TestPickCube:
    def test_pick_none_for_zero(self):
        manager = Manager(["a"])
        assert manager.pick_cube(ZERO) is None

    def test_pick_satisfies(self):
        manager = Manager(["a", "b", "c"])
        a, b = manager.var(0), manager.var(1)
        f = manager.and_(a, b ^ 1)
        cube = manager.pick_cube(f)
        full = dict(cube)
        for level in range(3):
            full.setdefault(level, False)
        assert manager.eval(f, full)


class TestMinterms:
    def test_minterm_enumeration(self):
        manager = Manager(["a", "b"])
        f = manager.or_(manager.var(0), manager.var(1))
        minterms = sorted(manager.minterms(f, [0, 1]))
        assert minterms == [(False, True), (True, False), (True, True)]

    def test_minterms_reject_missing_levels(self):
        manager = Manager(["a", "b"])
        f = manager.and_(manager.var(0), manager.var(1))
        with pytest.raises(ValueError):
            list(manager.minterms(f, [0]))
