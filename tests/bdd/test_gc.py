"""Mark-and-sweep collection, protection, free lists and compaction."""

import pytest

from repro.analysis.checked import CheckedManager
from repro.analysis.errors import InvariantError
from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.wire import deserialize, serialize


def _manager(num_vars=8):
    manager = Manager()
    manager.ensure_vars(num_vars)
    return manager


def _build_garbage(manager, rounds=6):
    """Create, then abandon, a pile of distinct intermediate nodes."""
    for offset in range(rounds):
        acc = manager.var(offset % manager.num_vars)
        for level in range(manager.num_vars):
            acc = manager.xor(acc, manager.and_(
                manager.var(level), manager.var((level + offset + 1) % manager.num_vars)
            ))
    return acc


class TestProtection:
    def test_protect_is_refcounted(self):
        manager = _manager()
        f = manager.and_(manager.var(0), manager.var(1))
        assert manager.protect(f) == f
        manager.protect(f)
        assert manager.protected_refs() == (f,)
        manager.unprotect(f)
        assert manager.protected_refs() == (f,)
        manager.unprotect(f)
        assert manager.protected_refs() == ()

    def test_unprotect_unknown_ref_raises(self):
        manager = _manager()
        with pytest.raises(ValueError):
            manager.unprotect(manager.var(0))

    def test_protecting_context(self):
        manager = _manager()
        f = manager.and_(manager.var(0), manager.var(1))
        with manager.protecting(f):
            assert f in manager.protected_refs()
            manager.gc()
            assert manager.size(f) == 3
        assert manager.protected_refs() == ()

    def test_function_protect_chains(self):
        from repro.bdd.function import Function

        manager = _manager()
        func = Function(manager, manager.or_(manager.var(0), manager.var(1)))
        assert func.protect() is func
        assert func.ref in manager.protected_refs()
        assert func.unprotect() is func
        assert manager.protected_refs() == ()


class TestSweep:
    def test_reclaims_dead_nodes(self):
        manager = _manager()
        keep = manager.and_(manager.var(0), manager.var(1))
        _build_garbage(manager)
        before = manager.num_nodes
        manager.gc((keep,))
        stats = manager.statistics()
        assert stats["gc_runs"] == 1
        assert stats["nodes_reclaimed"] > 0
        # Non-compacting: the table length is unchanged, the dead
        # slots went onto the free list.
        assert manager.num_nodes == before
        assert stats["free_list"] == stats["nodes_reclaimed"]
        assert stats["live_nodes"] == before - stats["nodes_reclaimed"]

    def test_roots_and_their_cones_survive(self):
        manager = _manager()
        f = _build_garbage(manager)
        g = manager.xor(manager.var(2), manager.var(5))
        manager.gc((f, g))
        assert manager.eval(g, {2: True, 5: False})
        manager.validate((f, g))

    def test_refs_stay_canonical_after_sweep(self):
        manager = _manager()
        f = manager.and_(manager.var(0), manager.var(1))
        _build_garbage(manager)
        manager.gc((f,))
        # Rebuilding the same function must return the same ref — the
        # unique table was rebuilt consistently.
        assert manager.and_(manager.var(0), manager.var(1)) == f

    def test_free_slots_are_reused(self):
        manager = _manager()
        keep = manager.var(0)
        _build_garbage(manager)
        manager.gc((keep,))
        table_len = manager.num_nodes
        free_before = manager.statistics()["free_list"]
        assert free_before > 0
        rebuilt = _build_garbage(manager)
        assert manager.num_nodes == table_len  # grew into free slots
        assert manager.statistics()["free_list"] < free_before
        manager.validate(rebuilt)

    def test_gc_clears_caches(self):
        manager = _manager()
        f = manager.and_(manager.var(0), manager.var(1))
        assert manager.statistics()["ite_cache"] > 0
        manager.gc((f,))
        assert manager.statistics()["ite_cache"] == 0

    def test_validate_passes_after_sweep(self):
        manager = _manager()
        f = _build_garbage(manager)
        manager.protect(f)
        manager.gc()
        manager.validate(manager.protected_refs())

    def test_terminal_and_constants_survive_empty_root_set(self):
        manager = _manager()
        _build_garbage(manager)
        manager.gc()
        assert manager.statistics()["live_nodes"] == 1  # just the terminal
        # The manager is still fully usable afterwards.
        assert manager.and_(manager.var(0), manager.var(1)) not in (ONE, ZERO)


class TestCompaction:
    def test_remap_translates_live_refs(self):
        manager = _manager()
        _build_garbage(manager)
        f = manager.and_(manager.var(0), manager.var(1))
        size = manager.size(f)
        remap = manager.gc((f,), compact=True)
        assert remap is not None
        new_f = remap(f)
        assert manager.size(new_f) == size
        assert manager.eval(new_f, {0: True, 1: True})
        manager.validate(new_f)

    def test_remap_preserves_complement_bit(self):
        manager = _manager()
        _build_garbage(manager)
        f = manager.and_(manager.var(0), manager.var(1))
        remap = manager.gc((f,), compact=True)
        assert remap(f) & 1 == f & 1
        assert remap(f ^ 1) == remap(f) ^ 1

    def test_remap_rejects_dead_refs(self):
        manager = _manager()
        dead = _build_garbage(manager)
        f = manager.var(0)
        remap = manager.gc((f,), compact=True)
        if dead not in remap:
            with pytest.raises(InvariantError):
                remap(dead)

    def test_compaction_shrinks_the_table(self):
        manager = _manager()
        f = manager.and_(manager.var(0), manager.var(1))
        _build_garbage(manager)
        before = manager.num_nodes
        remap = manager.gc((f,), compact=True)
        assert manager.num_nodes < before
        assert manager.statistics()["free_list"] == 0
        assert manager.num_nodes == manager.statistics()["live_nodes"]
        manager.validate(remap(f))

    def test_protected_refs_are_remapped_automatically(self):
        manager = _manager()
        _build_garbage(manager)
        f = manager.and_(manager.var(0), manager.var(1))
        manager.protect(f)
        remap = manager.gc(compact=True)
        (new_f,) = manager.protected_refs()
        assert new_f == remap(f)
        manager.unprotect(new_f)

    def test_wire_bytes_unchanged_by_compaction(self):
        # The wire format emits canonically, so compaction — which
        # renames node indices but not the function — must not change
        # a single byte.
        manager = _manager()
        _build_garbage(manager)
        f = manager.xor(manager.and_(manager.var(0), manager.var(1)),
                        manager.var(3))
        before = serialize(manager, (f,))
        remap = manager.gc((f,), compact=True)
        after = serialize(manager, (remap(f),))
        assert before == after

    def test_wire_round_trip_after_compaction(self):
        manager = _manager()
        _build_garbage(manager)
        f = manager.or_(manager.var(2), manager.and_(manager.var(4),
                                                     manager.var(5)))
        remap = manager.gc((f,), compact=True)
        fresh, roots = deserialize(serialize(manager, (remap(f),)))
        assert fresh.size(roots[0]) == manager.size(remap(f))

    def test_function_remapped_helper(self):
        from repro.bdd.function import Function

        manager = _manager()
        _build_garbage(manager)
        func = Function(manager, manager.and_(manager.var(0),
                                              manager.var(1)))
        remap = manager.gc((func.ref,), compact=True)
        moved = func.remapped(remap)
        assert moved.ref == remap(func.ref)
        assert moved.manager.eval(moved.ref, {0: True, 1: True})


class TestCountersAndChecked:
    def test_statistics_counters_accumulate(self):
        manager = _manager()
        f = manager.var(0)
        _build_garbage(manager)
        manager.gc((f,))
        first = manager.statistics()["nodes_reclaimed"]
        _build_garbage(manager)
        manager.gc((f,), compact=True)
        stats = manager.statistics()
        assert stats["gc_runs"] == 2
        assert stats["nodes_reclaimed"] > first

    def test_checked_manager_validates_after_gc(self):
        manager = CheckedManager(check=True)
        manager.ensure_vars(8)
        f = manager.and_(manager.var(0), manager.var(1))
        _build_garbage(manager)
        checks = manager.checks_run
        remap = manager.gc((f,), compact=True)
        assert manager.checks_run > checks
        assert manager.size(remap(f)) == 3

    def test_peak_nodes_is_a_table_watermark(self):
        manager = _manager()
        keep = manager.var(0)
        _build_garbage(manager)
        peak = manager.statistics()["peak_nodes"]
        manager.gc((keep,))
        _build_garbage(manager)
        # Regrowth into free slots does not raise the watermark.
        assert manager.statistics()["peak_nodes"] == peak


class TestScheduleGc:
    def test_gc_interval_does_not_change_results(self):
        from repro.core.schedule import Schedule, scheduled_minimize

        def build(manager):
            a, b, c, d = (manager.var(level) for level in range(4))
            f = manager.or_(manager.and_(a, b), manager.and_(c, d))
            care = manager.or_many((a, b, manager.xor(c, d)))
            return f, care

        plain = Manager(var_names=list("abcd"))
        f, c = build(plain)
        expected = scheduled_minimize(plain, f, c, Schedule(window_size=1))

        collected = Manager(var_names=list("abcd"))
        f, c = build(collected)
        result = scheduled_minimize(
            collected, f, c, Schedule(window_size=1, gc_interval=1)
        )
        assert collected.statistics()["gc_runs"] > 0
        # Same function, even though the managers differ internally.
        assert collected.size(result) == plain.size(expected)
        for point in range(16):
            assignment = {
                level: bool(point >> level & 1) for level in range(4)
            }
            assert collected.eval(result, assignment) == plain.eval(
                expected, assignment
            )

    def test_gc_interval_validation(self):
        from repro.core.schedule import Schedule

        with pytest.raises(ValueError):
            Schedule(gc_interval=0)
