"""Tests for the Minato-Morreale ISOP algorithm."""

import pytest
from hypothesis import given, settings

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.parser import parse_expression
from repro.bdd.isop import cube_count, cubes_to_ref, isop, isop_of_ispec

from tests.conftest import instance_strategy, build_instance


class TestBasics:
    def test_constants(self):
        manager = Manager(["a"])
        cubes, cover = isop(manager, ZERO, ZERO)
        assert cubes == [] and cover == ZERO
        cubes, cover = isop(manager, ONE, ONE)
        assert cubes == [{}] and cover == ONE

    def test_single_literal(self):
        manager = Manager(["a"])
        a = manager.var(0)
        cubes, cover = isop(manager, a, a)
        assert cover == a
        assert cubes == [{0: True}]

    def test_completely_specified_exact(self):
        manager = Manager(["a", "b", "c"])
        f = parse_expression(manager, "(a & b) | (~a & c)")
        cubes, cover = isop(manager, f, f)
        assert cover == f
        assert cubes_to_ref(manager, cubes) == f

    def test_empty_interval_rejected(self):
        manager = Manager(["a", "b"])
        a, b = manager.var(0), manager.var(1)
        with pytest.raises(ValueError):
            isop(manager, a, manager.and_(a, b))

    def test_interval_exploited(self):
        """With don't cares, the cover can be far simpler than f·c."""
        manager = Manager(["a", "b", "c"])
        lower = parse_expression(manager, "a & b & c")
        upper = parse_expression(manager, "a")
        cubes, cover = isop(manager, lower, upper)
        assert cubes == [{0: True}]  # just "a"
        assert cover == upper


@given(instance_strategy(4, nonzero_care=True))
@settings(max_examples=60)
def test_cover_within_interval(instance):
    manager = Manager()
    f, c = build_instance(manager, *instance)
    cubes, cover = isop_of_ispec(manager, f, c)
    lower = manager.and_(f, c)
    upper = manager.or_(f, c ^ 1)
    assert manager.leq(lower, cover)
    assert manager.leq(cover, upper)
    assert cubes_to_ref(manager, cubes) == cover


@given(instance_strategy(4, nonzero_care=True))
@settings(max_examples=40)
def test_cover_is_irredundant(instance):
    """Removing any cube uncovers part of the onset."""
    manager = Manager()
    f, c = build_instance(manager, *instance)
    cubes, cover = isop_of_ispec(manager, f, c)
    lower = manager.and_(f, c)
    for index in range(len(cubes)):
        rest = cubes[:index] + cubes[index + 1 :]
        rest_ref = cubes_to_ref(manager, rest)
        assert not manager.leq(lower, rest_ref), "cube %d redundant" % index


@given(instance_strategy(4, nonzero_care=True))
@settings(max_examples=40)
def test_cubes_are_implicants(instance):
    """Every cube lies inside the upper bound (is an implicant)."""
    manager = Manager()
    f, c = build_instance(manager, *instance)
    cubes, _ = isop_of_ispec(manager, f, c)
    upper = manager.or_(f, c ^ 1)
    for cube in cubes:
        assert manager.leq(manager.cube_ref(cube), upper)


def test_cube_count_examples():
    manager = Manager(["a", "b", "c", "d"])
    xor2 = parse_expression(manager, "a ^ b")
    assert cube_count(manager, xor2) == 2
    majority = parse_expression(manager, "(a & b) | (a & c) | (b & c)")
    assert cube_count(manager, majority) == 3
