"""The iterative operator kernels: deep chains, no recursion games.

Acceptance tests for the explicit-stack rewrite of ``ite``,
``cofactor`` and ``_quantify``: a 5,000-variable chain BDD must go
through every operator under the *default* interpreter recursion limit,
``sys.setrecursionlimit`` must not appear anywhere in ``src/``, and the
balanced ``and_many``/``or_many`` must beat the old left-fold on a
conjunction engineered to blow the fold up.
"""

import pathlib
import sys

from repro.bdd.manager import Manager, ONE, ZERO

CHAIN_VARS = 5_000

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def _chain_manager():
    assert CHAIN_VARS > sys.getrecursionlimit()
    manager = Manager()
    manager.ensure_vars(CHAIN_VARS)
    return manager


def _conjunction_chain(manager, lo=0, hi=CHAIN_VARS):
    acc = ONE
    for level in range(hi - 1, lo - 1, -1):
        acc = manager.make_node(level, acc, ZERO)
    return acc


def _parity_chain(manager, lo=0, hi=CHAIN_VARS):
    acc = ZERO
    for level in range(hi - 1, lo - 1, -1):
        acc = manager.make_node(level, acc ^ 1, acc)
    return acc


class TestDeepChainKernels:
    """Every operator crosses 5,000 levels under the default limit."""

    def test_deep_ite(self):
        manager = _chain_manager()
        all_vars = _conjunction_chain(manager)
        parity = _parity_chain(manager)
        result = manager.and_(all_vars, parity)
        # all-ones is the only point of the conjunction; its parity is
        # CHAIN_VARS % 2 = 0, so the intersection is empty.
        assert result == ZERO
        assert manager.or_(all_vars, parity) != ZERO

    def test_deep_exists(self):
        manager = _chain_manager()
        parity = _parity_chain(manager)
        # Quantifying one variable out of a parity function gives TRUE.
        assert manager.exists(parity, [CHAIN_VARS - 1]) == ONE
        assert manager.forall(parity, [CHAIN_VARS - 1]) == ZERO

    def test_deep_and_exists(self):
        manager = _chain_manager()
        all_vars = _conjunction_chain(manager)
        combined = manager.and_exists(
            all_vars, manager.var(0), [CHAIN_VARS - 1]
        )
        assert combined == manager.exists(all_vars, [CHAIN_VARS - 1])

    def test_deep_cofactor(self):
        manager = _chain_manager()
        all_vars = _conjunction_chain(manager)
        deep = manager.cofactor(all_vars, CHAIN_VARS - 1, True)
        assert deep == _conjunction_chain(manager, hi=CHAIN_VARS - 1)

    def test_deep_compose(self):
        manager = _chain_manager()
        all_vars = _conjunction_chain(manager)
        composed = manager.vector_compose(all_vars, {0: ONE})
        assert composed == manager.cofactor(all_vars, 0, True)

    def test_default_recursion_limit_untouched(self):
        limit = sys.getrecursionlimit()
        manager = _chain_manager()
        manager.and_(_conjunction_chain(manager), _parity_chain(manager))
        assert sys.getrecursionlimit() == limit


class TestNoRecursionLimitJuggling:
    """The hack is gone from the source tree, not just unused."""

    def test_no_setrecursionlimit_in_src(self):
        offenders = [
            path
            for path in SRC.rglob("*.py")
            if "setrecursionlimit" in path.read_text()
        ]
        assert offenders == []

    def test_no_retry_deep_in_src(self):
        offenders = [
            path
            for path in SRC.rglob("*.py")
            if "_retry_deep" in path.read_text()
        ]
        assert offenders == []


class TestBalancedManyOps:
    """and_many/or_many reduce pairwise, not as a left fold."""

    @staticmethod
    def _fold_blowup_terms(manager, groups=24, width=6):
        """Disjoint OR-groups: a left fold of their AND carries every
        earlier group's disjunction down through each later one, while
        the balanced reduction only ever combines similar-sized
        subproducts."""
        terms = []
        for group in range(groups):
            lo = group * width
            terms.append(
                manager.or_many(
                    manager.var(level) for level in range(lo, lo + width)
                )
            )
        return terms

    def test_and_many_matches_fold_semantics(self):
        manager = Manager()
        manager.ensure_vars(24 * 6)
        terms = self._fold_blowup_terms(manager)
        balanced = manager.and_many(terms)
        folded = ONE
        for term in terms:
            folded = manager.and_(folded, term)
        assert balanced == folded

    def test_and_many_builds_fewer_nodes_than_fold(self):
        groups, width = 24, 6

        fold_manager = Manager()
        fold_manager.ensure_vars(groups * width)
        terms = self._fold_blowup_terms(fold_manager, groups, width)
        before = fold_manager.statistics()["nodes_created"]
        acc = ONE
        for term in terms:
            acc = fold_manager.and_(acc, term)
        fold_nodes = fold_manager.statistics()["nodes_created"] - before

        tree_manager = Manager()
        tree_manager.ensure_vars(groups * width)
        terms = self._fold_blowup_terms(tree_manager, groups, width)
        before = tree_manager.statistics()["nodes_created"]
        tree_manager.and_many(terms)
        tree_nodes = tree_manager.statistics()["nodes_created"] - before

        assert tree_nodes < fold_nodes

    def test_or_many_short_circuits(self):
        manager = Manager(var_names=["a", "b"])
        assert manager.or_many([manager.var(0), ONE, manager.var(1)]) == ONE
        assert manager.and_many([manager.var(0), ZERO]) == ZERO
        assert manager.and_many([]) == ONE
        assert manager.or_many([]) == ZERO

    def test_many_ops_accept_generators(self):
        manager = Manager()
        manager.ensure_vars(8)
        as_list = manager.and_many([manager.var(i) for i in range(8)])
        as_gen = manager.and_many(manager.var(i) for i in range(8))
        assert as_list == as_gen
