"""Execute every code block in docs/tutorial.md.

Documentation that does not run is documentation that rots; each
fenced ``python`` block on the tutorial page is exec'd in a fresh
namespace and must complete without raising.
"""

import pathlib
import re

import pytest

TUTORIAL = (
    pathlib.Path(__file__).resolve().parent.parent / "docs" / "tutorial.md"
)

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks():
    text = TUTORIAL.read_text()
    return _BLOCK_RE.findall(text)


def test_tutorial_has_blocks():
    assert len(_blocks()) >= 6


@pytest.mark.parametrize(
    "index,block",
    list(enumerate(_blocks())),
    ids=lambda value: ("block%d" % value) if isinstance(value, int) else None,
)
def test_tutorial_block_runs(index, block):
    namespace = {}
    exec(compile(block, "tutorial-block-%d" % index, "exec"), namespace)
