"""Smoke tests: every example script runs and prints what it promises."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    path = EXAMPLES / ("%s.py" % name)
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "exact minimum    = 2" in out
    assert "digraph" in out
    assert "constrain" in out


def test_fpga_mapping(capsys):
    _load("fpga_mapping").main()
    out = capsys.readouterr().out
    assert "TOTAL" in out
    assert "saves" in out


def test_frontier_minimization(capsys):
    _load("frontier_minimization").main()
    out = capsys.readouterr().out
    assert "reachable states=64" in out
    assert "cumulative frontier nodes" in out


def test_transition_relation_minimization(capsys):
    _load("transition_relation_minimization").main()
    out = capsys.readouterr().out
    assert "lfsr5" in out
    assert "osm_bt=" in out


def test_fsm_equivalence(capsys):
    _load("fsm_equivalence").main()
    out = capsys.readouterr().out
    assert "equivalent=True" in out
    assert "equivalent=False" in out
    assert "counterexample" in out


def test_netlist_simplification(capsys):
    _load("netlist_simplification").main()
    out = capsys.readouterr().out
    assert "total mux cost" in out
    assert "replaced" in out


def test_blif_workflow(capsys, tmp_path):
    module = _load("blif_workflow")
    module.main()
    out = capsys.readouterr().out
    assert "redc344.blif" in out
    assert "equivalent=True" in out
    # Clean the generated .opt.blif files so the repo stays pristine.
    for generated in (EXAMPLES / "data").glob("*.opt.blif"):
        generated.unlink()


@pytest.mark.slow
def test_scheduling_demo(capsys):
    _load("scheduling_demo").main()
    out = capsys.readouterr().out
    assert "scheduler parameter sweep" in out


@pytest.mark.slow
def test_run_paper_experiments_quick(capsys):
    module = _load("run_paper_experiments")
    assert module.main(["--quick", "--cube-limit", "50"]) == 0
    out = capsys.readouterr().out
    assert "TABLE 3" in out
    assert "FIGURE 3" in out
    assert "Per-benchmark breakdown" in out
