"""Unit tests for the circuit breaker and retry policy (pure, no pool)."""

from __future__ import annotations

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
    RetryPolicy,
)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker("h")
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_at_threshold(self):
        breaker = CircuitBreaker("h", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("h", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_short_circuits_for_cooldown_requests(self):
        breaker = CircuitBreaker("h", failure_threshold=1, cooldown=3)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert [breaker.allow() for _ in range(3)] == [False] * 3
        assert breaker.short_circuits == 3
        # Cooldown exhausted: the next request is the half-open probe.
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker("h", failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_full_cooldown(self):
        breaker = CircuitBreaker("h", failure_threshold=1, cooldown=2)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()

    def test_sequence_is_deterministic(self):
        # Same request sequence, same decisions — no wall clock anywhere.
        def drive():
            breaker = CircuitBreaker("h", failure_threshold=2, cooldown=2)
            trace = []
            for outcome in [False, False, None, None, True, False, False]:
                allowed = breaker.allow()
                trace.append((allowed, breaker.state))
                if not allowed or outcome is None:
                    continue
                if outcome:
                    breaker.record_success()
                else:
                    breaker.record_failure()
            return trace

        assert drive() == drive()

    def test_describe_mentions_state(self):
        breaker = CircuitBreaker("osm_bt", failure_threshold=1)
        assert "closed" in breaker.describe()
        breaker.record_failure()
        assert "open" in breaker.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("h", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("h", cooldown=0)


class TestRetryPolicy:
    def test_deadline_scaling(self):
        policy = RetryPolicy(max_attempts=3, backoff=2.0)
        assert policy.deadline_for(1.5, 0) == 1.5
        assert policy.deadline_for(1.5, 1) == 3.0
        assert policy.deadline_for(1.5, 2) == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().deadline_for(1.0, -1)


class TestBreakerBoard:
    def test_per_method_isolation(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("bad").record_failure()
        assert board.breaker("bad").state == OPEN
        assert board.breaker("good").state == CLOSED
        assert board.breaker("good").allow()

    def test_breaker_identity_is_stable(self):
        board = BreakerBoard()
        assert board.breaker("h") is board.breaker("h")

    def test_get_does_not_create(self):
        board = BreakerBoard()
        assert board.get("h") is None
        board.breaker("h")
        assert board.get("h") is not None

    def test_states_snapshot(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("a")
        board.breaker("b").record_failure()
        assert board.states() == {"a": CLOSED, "b": OPEN}

    def test_counters_sum_across_breakers(self):
        board = BreakerBoard(failure_threshold=1, cooldown=2)
        board.breaker("a").record_success()
        b = board.breaker("b")
        b.record_failure()  # trips open
        assert not b.allow()  # short-circuit 1
        totals = board.counters()
        assert totals == {
            "breaker_successes": 1,
            "breaker_failures": 1,
            "breaker_opens": 1,
            "breaker_short_circuits": 1,
        }


class TestHalfOpenInterleavings:
    """Half-open behavior under interleaved success/failure sequences."""

    def _tripped(self, cooldown=2):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=cooldown)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        # Burn the cooldown.
        for _ in range(cooldown):
            assert not breaker.allow()
        return breaker

    def test_probe_success_then_immediate_failures_retrip(self):
        breaker = self._tripped()
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        # Closing resets the consecutive count: it takes a full
        # threshold of NEW failures to trip again.
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_failure_alternation_never_trips(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=2)
        for _ in range(20):
            assert breaker.allow()
            breaker.record_failure()
            assert breaker.allow()
            breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.opens == 0

    def test_repeated_probe_failures_cycle_open_halfopen(self):
        breaker = self._tripped(cooldown=1)
        for cycle in range(3):
            assert breaker.allow()  # half-open probe
            assert breaker.state == HALF_OPEN
            breaker.record_failure()  # probe fails: full cooldown again
            assert breaker.state == OPEN
            assert not breaker.allow()  # cooldown request
        assert breaker.opens == 4  # initial trip + 3 failed probes

    def test_success_recorded_while_half_open_closes(self):
        # A late success from a request admitted before the trip can
        # land while the breaker is half-open; it must close it rather
        # than corrupt the probe accounting.
        breaker = self._tripped()
        assert breaker.allow()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        breaker.record_success()  # the probe's own success
        assert breaker.state == CLOSED


class TestThreadSafety:
    def test_concurrent_hammer_keeps_counters_consistent(self):
        import threading

        breaker = CircuitBreaker(failure_threshold=3, cooldown=4)
        per_thread = 500
        threads = 8

        def hammer(worker_index):
            for i in range(per_thread):
                allowed = breaker.allow()
                if not allowed:
                    continue
                if (worker_index + i) % 3 == 0:
                    breaker.record_failure()
                else:
                    breaker.record_success()

        pool = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        # Every allowed request recorded exactly one outcome, every
        # denied one exactly one short-circuit: nothing lost to races.
        assert (
            breaker.successes
            + breaker.failures
            + breaker.short_circuits
            == threads * per_thread
        )
        assert breaker.state in (CLOSED, OPEN, HALF_OPEN)

    def test_board_concurrent_creation_is_single_instance(self):
        import threading

        board = BreakerBoard()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(board.breaker("shared"))

        pool = [threading.Thread(target=create) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert all(breaker is seen[0] for breaker in seen)
