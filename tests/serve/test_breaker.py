"""Unit tests for the circuit breaker and retry policy (pure, no pool)."""

from __future__ import annotations

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
    RetryPolicy,
)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker("h")
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_at_threshold(self):
        breaker = CircuitBreaker("h", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("h", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_short_circuits_for_cooldown_requests(self):
        breaker = CircuitBreaker("h", failure_threshold=1, cooldown=3)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert [breaker.allow() for _ in range(3)] == [False] * 3
        assert breaker.short_circuits == 3
        # Cooldown exhausted: the next request is the half-open probe.
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker("h", failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_full_cooldown(self):
        breaker = CircuitBreaker("h", failure_threshold=1, cooldown=2)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()

    def test_sequence_is_deterministic(self):
        # Same request sequence, same decisions — no wall clock anywhere.
        def drive():
            breaker = CircuitBreaker("h", failure_threshold=2, cooldown=2)
            trace = []
            for outcome in [False, False, None, None, True, False, False]:
                allowed = breaker.allow()
                trace.append((allowed, breaker.state))
                if not allowed or outcome is None:
                    continue
                if outcome:
                    breaker.record_success()
                else:
                    breaker.record_failure()
            return trace

        assert drive() == drive()

    def test_describe_mentions_state(self):
        breaker = CircuitBreaker("osm_bt", failure_threshold=1)
        assert "closed" in breaker.describe()
        breaker.record_failure()
        assert "open" in breaker.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("h", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("h", cooldown=0)


class TestRetryPolicy:
    def test_deadline_scaling(self):
        policy = RetryPolicy(max_attempts=3, backoff=2.0)
        assert policy.deadline_for(1.5, 0) == 1.5
        assert policy.deadline_for(1.5, 1) == 3.0
        assert policy.deadline_for(1.5, 2) == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().deadline_for(1.0, -1)


class TestBreakerBoard:
    def test_per_method_isolation(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("bad").record_failure()
        assert board.breaker("bad").state == OPEN
        assert board.breaker("good").state == CLOSED
        assert board.breaker("good").allow()

    def test_breaker_identity_is_stable(self):
        board = BreakerBoard()
        assert board.breaker("h") is board.breaker("h")

    def test_get_does_not_create(self):
        board = BreakerBoard()
        assert board.get("h") is None
        board.breaker("h")
        assert board.get("h") is not None

    def test_states_snapshot(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("a")
        board.breaker("b").record_failure()
        assert board.states() == {"a": CLOSED, "b": OPEN}
