"""Tests for the process-isolated worker pool (watchdog, recycling)."""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.bdd.manager import Manager, ZERO
from repro.core.ispec import ISpec
from repro.core.registry import (
    HEURISTICS,
    register_heuristic,
    unregister_heuristic,
)
from repro.serve.pool import (
    DETERMINISTIC,
    TRANSIENT,
    MinimizationPool,
    ServeResult,
)

# The pool tests register throwaway heuristics from inside the test
# process and rely on fork inheritance to make them visible in workers.
pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool tests require the fork start method",
)

#: Short deadlines keep the kill drills fast while staying far above
#: scheduler jitter.
FAST = dict(deadline=0.4, kill_grace=0.15)


def _instance():
    manager = Manager(["a", "b", "c", "d"])
    a, b, c, d = (manager.var(level) for level in range(4))
    f = manager.or_(manager.and_(a, b), manager.and_(c, d))
    care = manager.or_(a, b)
    return manager, f, care


def _hang_forever(manager, f, c):
    # Swallows the worker's deadline alarm: models a hang the
    # cooperative in-worker deadline cannot interrupt (a blocked
    # syscall, a runaway C loop), forcing the parent watchdog's
    # SIGKILL path that these drills exercise.
    while True:
        try:
            while True:
                pass
        except Exception:
            continue


def _crash_hard(manager, f, c):
    os._exit(17)


def _non_cover(manager, f, c):
    return ZERO


def _sleep_long(manager, f, c):
    # Interruptible (unlike _hang_forever): the worker's SIGALRM
    # deadline must degrade this cleanly without any SIGKILL.
    time.sleep(30.0)
    return f


@pytest.fixture
def registered():
    """Register the pathological heuristics, clean up afterwards."""
    names = {
        "test_hang": _hang_forever,
        "test_crash": _crash_hard,
        "test_non_cover": _non_cover,
        "test_sleep": _sleep_long,
    }
    for name, heuristic in names.items():
        register_heuristic(name, heuristic, replace=True)
    yield names
    for name in names:
        unregister_heuristic(name)


class TestHealthyPath:
    def test_matches_in_process_result(self):
        manager, f, c = _instance()
        with MinimizationPool(workers=2) as pool:
            result = pool.minimize(manager, f, c, method="osm_bt")
        assert result.ok and not result.degraded
        direct = HEURISTICS["osm_bt"](manager, f, c)
        assert manager.size(result.cover) == manager.size(direct)
        assert ISpec(manager, f, c).is_cover(result.cover)

    def test_batch_results_are_index_aligned(self, registered):
        manager, f, c = _instance()
        methods = ["osm_bt", "test_hang", "constrain", "f_orig"]
        with MinimizationPool(workers=2, **FAST) as pool:
            replies = pool.run_batch(
                manager, [(m, f, c) for m in methods]
            )
        assert [reply.method for reply in replies] == methods
        assert [reply.ok for reply in replies] == [True, False, True, True]
        # The hung cell degraded alone; its neighbors are untouched.
        assert replies[1].cover == f and replies[1].killed

    def test_statistics_shape(self):
        manager, f, c = _instance()
        with MinimizationPool(workers=1) as pool:
            pool.minimize(manager, f, c)
            stats = pool.statistics()
        assert stats["requests"] == 1
        assert stats["failures"] == 0
        assert stats["workers"] == 1
        assert stats["recycles"] == 0

    def test_worker_stats_show_compacting_gc(self):
        # Every worker runs a compacting collection before shipping its
        # result, so the per-request statistics must record it.
        manager, f, c = _instance()
        with MinimizationPool(workers=1) as pool:
            result = pool.minimize(manager, f, c, method="osm_bt")
        assert result.ok
        assert result.stats is not None
        assert result.stats["gc_runs"] >= 1


class TestBatchedDispatch:
    METHODS = ["osm_bt", "constrain", "restrict", "osm_td", "f_orig"]

    def test_injected_fault_fails_only_its_own_cell(self, registered):
        # The acceptance drill: a deterministic mid-batch fault (a
        # non-cover contract violation) degrades its own cell and
        # nothing else — no kill, no restart, neighbors untouched.
        manager, f, c = _instance()
        methods = ["osm_bt", "test_non_cover", "constrain"]
        with MinimizationPool(workers=1, **FAST) as pool:
            replies = pool.run_batch(
                manager, [(m, f, c) for m in methods]
            )
            stats = pool.statistics()
        assert [reply.ok for reply in replies] == [True, False, True]
        assert replies[1].kind == DETERMINISTIC
        assert "non-cover" in replies[1].reason
        assert not any(reply.killed for reply in replies)
        assert stats["kills"] == 0
        assert stats["worker_restarts"] == 0

    def test_mid_batch_crash_keeps_streamed_results(self, registered):
        manager, f, c = _instance()
        methods = ["osm_bt", "test_crash", "constrain"]
        with MinimizationPool(workers=1, **FAST) as pool:
            replies = pool.run_batch(
                manager, [(m, f, c) for m in methods]
            )
            assert pool.crashes == 1
            # The replacement worker serves the next request.
            assert pool.minimize(manager, f, c, method="osm_bt").ok
        assert replies[0].ok
        assert replies[1].degraded and not replies[1].killed
        assert replies[1].kind == TRANSIENT
        assert "WorkerCrash" in replies[1].reason
        assert replies[2].kind == TRANSIENT
        assert "BatchAborted" in replies[2].reason

    def test_batched_matches_single_cell_bytes(self):
        # The differential acceptance check: the batched path and the
        # per-cell path must produce byte-identical canonical covers.
        from repro.bdd.wire import serialize

        manager, f, c = _instance()
        cells = [(m, f, c) for m in self.METHODS]
        with MinimizationPool(workers=2) as pool:
            batched = pool.run_batch(manager, cells, batch=True)
            single = pool.run_batch(manager, cells, batch=False)
        for one, other in zip(batched, single):
            assert one.ok and other.ok
            assert serialize(manager, (one.cover,)) == serialize(
                manager, (other.cover,)
            )

    def test_warm_manager_returns_to_baseline(self):
        # Identical batches on one warm worker must report identical
        # post-settle live_nodes — nothing leaks from batch to batch or
        # from cell to cell.
        manager, f, c = _instance()
        cells = [(m, f, c) for m in self.METHODS]
        with MinimizationPool(workers=1) as pool:
            first = pool.run_batch(manager, cells)
            second = pool.run_batch(manager, cells)
        for replies in (first, second):
            assert all(reply.ok for reply in replies)
        baseline = [reply.stats["live_nodes"] for reply in first]
        assert [
            reply.stats["live_nodes"] for reply in second
        ] == baseline

    def test_tiny_watermark_compacts_and_stays_correct(self):
        manager, f, c = _instance()
        cells = [(m, f, c) for m in self.METHODS]
        with MinimizationPool(workers=1, node_watermark=1) as pool:
            compacted = pool.run_batch(manager, cells)
            stats = pool.statistics()
        with MinimizationPool(workers=1) as pool:
            reference = pool.run_batch(manager, cells)
        # Every between-cell collection ran past the 1-node watermark.
        assert stats["warm_compactions"] >= len(cells)
        for one, other in zip(compacted, reference):
            assert one.ok and other.ok
            assert ISpec(manager, f, c).is_cover(one.cover)
            assert manager.size(one.cover) == manager.size(other.cover)

    def test_warm_reset_on_universe_change(self):
        manager, f, c = _instance()
        other = Manager(["x", "y"])
        x, y = other.var(0), other.var(1)
        g, d = other.or_(x, y), other.and_(x, y)
        with MinimizationPool(workers=1) as pool:
            first = pool.run_batch(
                manager, [(m, f, c) for m in ("osm_bt", "constrain")]
            )
            second = pool.run_batch(
                other, [(m, g, d) for m in ("osm_bt", "constrain")]
            )
            stats = pool.statistics()
        assert all(r.ok for r in first) and all(r.ok for r in second)
        assert stats["warm_resets"] >= 1


class TestAlarmDeadline:
    def test_interruptible_overrun_degrades_cleanly(self, registered):
        # The SIGALRM deadline interrupts a sleeping heuristic inside
        # the worker: clean transient degrade, no SIGKILL, the same
        # worker process keeps serving.
        manager, f, c = _instance()
        with MinimizationPool(workers=1, **FAST) as pool:
            pid_before = pool.worker_pids()[0]
            started = time.monotonic()
            result = pool.minimize(manager, f, c, method="test_sleep")
            assert time.monotonic() - started < 5.0
            assert result.degraded and not result.killed
            assert result.kind == TRANSIENT
            assert "DeadlineExceeded" in result.reason
            assert result.cover == f
            assert pool.kills == 0
            assert pool.worker_restarts == 0
            assert pool.worker_pids()[0] == pid_before
            assert pool.minimize(manager, f, c, method="osm_bt").ok

    def test_mid_batch_overrun_isolated_without_kill(self, registered):
        manager, f, c = _instance()
        methods = ["osm_bt", "test_sleep", "constrain"]
        with MinimizationPool(workers=1, **FAST) as pool:
            replies = pool.run_batch(
                manager, [(m, f, c) for m in methods]
            )
            stats = pool.statistics()
        assert [reply.ok for reply in replies] == [True, False, True]
        assert "DeadlineExceeded" in replies[1].reason
        assert not replies[1].killed
        assert stats["kills"] == 0


class TestRecycling:
    def test_workers_recycled_after_quota(self):
        manager, f, c = _instance()
        with MinimizationPool(workers=1, recycle_after=2) as pool:
            first_pid = pool.worker_pids()[0]
            for _ in range(2):
                assert pool.minimize(manager, f, c).ok
            recycled_pid = pool.worker_pids()[0]
            # The replacement still serves correctly.
            assert pool.minimize(manager, f, c).ok
            stats = pool.statistics()
        assert recycled_pid != first_pid
        assert stats["recycles"] == 1
        # Graceful recycling is not a kill or crash.
        assert stats["kills"] == 0
        assert stats["crashes"] == 0

    def test_no_recycling_by_default(self):
        manager, f, c = _instance()
        with MinimizationPool(workers=1) as pool:
            pid = pool.worker_pids()[0]
            for _ in range(3):
                pool.minimize(manager, f, c)
            assert pool.worker_pids()[0] == pid
            assert pool.statistics()["recycles"] == 0

    def test_recycle_after_validation(self):
        with pytest.raises(ValueError):
            MinimizationPool(workers=1, recycle_after=0)


class TestWatchdog:
    def test_hung_heuristic_is_killed_and_degraded(self, registered):
        # The acceptance drill: a `while True: pass` heuristic must be
        # killed within the deadline (+grace), degrade to the verified
        # identity cover with a recorded reason, recycle the worker,
        # and leave the pool healthy for the next request.
        manager, f, c = _instance()
        failures = []
        with MinimizationPool(
            workers=1, on_failure=lambda m, r: failures.append((m, r)),
            **FAST
        ) as pool:
            pids_before = pool.worker_pids()
            started = time.monotonic()
            result = pool.minimize(manager, f, c, method="test_hang")
            elapsed = time.monotonic() - started
            assert elapsed < FAST["deadline"] + FAST["kill_grace"] + 2.0
            assert result.degraded and result.killed
            assert result.kind == TRANSIENT
            assert "DeadlineExceeded" in result.reason
            assert result.cover == f
            assert ISpec(manager, f, c).is_cover(result.cover)
            assert pool.kills == 1 and pool.worker_restarts == 1
            assert pool.worker_pids() != pids_before
            assert failures == [("test_hang", result.reason)]
            # The recycled worker serves the next request normally.
            healthy = pool.minimize(manager, f, c, method="osm_bt")
            assert healthy.ok

    def test_per_request_deadline_override(self, registered):
        manager, f, c = _instance()
        with MinimizationPool(workers=1, deadline=30.0) as pool:
            started = time.monotonic()
            result = pool.minimize(
                manager, f, c, method="test_hang", deadline=0.3
            )
            assert time.monotonic() - started < 5.0
        assert result.killed


class TestCrashes:
    def test_worker_crash_degrades_and_respawns(self, registered):
        manager, f, c = _instance()
        with MinimizationPool(workers=1, **FAST) as pool:
            result = pool.minimize(manager, f, c, method="test_crash")
            assert result.degraded and not result.killed
            assert result.kind == TRANSIENT
            assert "WorkerCrash" in result.reason
            assert result.cover == f
            assert pool.crashes == 1
            healthy = pool.minimize(manager, f, c, method="osm_bt")
            assert healthy.ok

    @pytest.mark.skipif(
        not os.path.exists("/proc/self/statm"),
        reason="needs /proc to size the address-space cap",
    )
    def test_memory_hog_dies_inside_its_cap(self):
        resource = pytest.importorskip("resource")
        del resource
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[0])
        limit = pages * os.sysconf("SC_PAGE_SIZE") + (512 << 20)

        def hog(manager, f, c):
            block = bytearray(1 << 33)  # 8 GiB, far past the cap
            return f if block else f

        register_heuristic("test_hog", hog, replace=True)
        try:
            manager, f, c = _instance()
            with MinimizationPool(
                workers=1, memory_limit=limit, deadline=10.0
            ) as pool:
                result = pool.minimize(manager, f, c, method="test_hog")
            assert result.degraded
            assert result.kind == TRANSIENT
            # Either the allocation failed cleanly in-process or the
            # kernel killed the worker — both stay inside the fence.
            assert (
                "MemoryError" in result.reason
                or "WorkerCrash" in result.reason
            )
            assert result.cover == f
        finally:
            unregister_heuristic("test_hog")


class TestFailureClassification:
    def test_unknown_heuristic_is_deterministic(self):
        manager, f, c = _instance()
        with MinimizationPool(workers=1) as pool:
            result = pool.minimize(manager, f, c, method="no_such")
        assert result.kind == DETERMINISTIC and not result.transient
        assert "UnknownHeuristic" in result.reason

    def test_non_cover_is_deterministic(self, registered):
        manager, f, c = _instance()
        with MinimizationPool(workers=1) as pool:
            result = pool.minimize(manager, f, c, method="test_non_cover")
        assert result.kind == DETERMINISTIC
        assert "non-cover" in result.reason
        assert result.cover == f

    def test_budget_trip_is_transient(self):
        manager, f, c = _instance()
        with MinimizationPool(workers=1, step_budget=1) as pool:
            result = pool.minimize(manager, f, c, method="osm_bt")
        assert result.degraded and result.kind == TRANSIENT
        assert "StepBudgetExceeded" in result.reason


class TestLifecycle:
    def test_close_is_idempotent_and_final(self):
        manager, f, c = _instance()
        pool = MinimizationPool(workers=1)
        pool.minimize(manager, f, c)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.minimize(manager, f, c)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MinimizationPool(workers=0)
        with pytest.raises(ValueError):
            MinimizationPool(workers=1, deadline=0.0)
        with pytest.raises(ValueError):
            MinimizationPool(workers=1, kill_grace=-1.0)

    def test_serve_result_flags(self):
        result = ServeResult(method="osm_bt", cover=0)
        assert result.ok and not result.degraded and result.transient
        failed = ServeResult(
            method="osm_bt", cover=0, reason="x", kind=DETERMINISTIC
        )
        assert failed.degraded and not failed.transient


def _stubborn_main(conn, memory_limit):
    """A worker that reads the shutdown sentinel and ignores it."""
    while True:
        try:
            conn.recv()
        except (EOFError, OSError):
            pass
        time.sleep(3600)


class TestStopHardening:
    def test_sentinel_ignoring_worker_is_killed_within_join_budget(self):
        import multiprocessing as mp

        from repro.serve.pool import _Worker

        context = mp.get_context("fork")
        worker = _Worker(context, None, target=_stubborn_main)
        assert worker.process.is_alive()
        started = time.monotonic()
        worker.stop()
        elapsed = time.monotonic() - started
        # The sentinel is ignored, so stop() must escalate: 1s join,
        # then SIGKILL. Allow generous scheduler slack above the 1s.
        assert elapsed < 3.0
        assert not worker.process.is_alive()
        # SIGKILL, not a clean sentinel exit.
        assert worker.process.exitcode not in (0, None)
        # The parent's pipe end is closed on the escalation path too.
        assert worker.conn.closed

    def test_kill_closes_pipe(self):
        import multiprocessing as mp

        from repro.serve.pool import _Worker

        context = mp.get_context("fork")
        worker = _Worker(context, None)
        worker.kill()
        assert not worker.process.is_alive()
        assert worker.conn.closed

    def test_close_survives_stubborn_worker_in_pool(self):
        import multiprocessing as mp

        from repro.serve.pool import _Worker

        pool = MinimizationPool(workers=2)
        # Replace one idle worker with a sentinel-ignoring one.
        context = mp.get_context("fork")
        stubborn = _Worker(context, None, target=_stubborn_main)
        with pool._cv:
            victim = pool._idle.popleft()
            pool._idle.appendleft(stubborn)
        victim.stop()
        started = time.monotonic()
        pool.close()
        assert time.monotonic() - started < 5.0
        assert not stubborn.process.is_alive()


class TestProbe:
    def test_probe_reports_healthy_workers(self):
        with MinimizationPool(workers=2) as pool:
            report = pool.probe(timeout=2.0)
        assert report == {"probed": 2, "healthy": 2, "replaced": 0}

    def test_probe_replaces_killed_idle_worker(self):
        with MinimizationPool(workers=2) as pool:
            victim = pool.worker_pids()[0]
            os.kill(victim, 9)
            report = pool.probe(timeout=2.0)
            pids = pool.worker_pids()
            stats = pool.statistics()
            # The replacement serves.
            manager, f, c = _instance()
            assert pool.minimize(manager, f, c, method="f_orig").ok
        assert report["probed"] == 2
        assert report["replaced"] == 1
        assert victim not in pids
        assert len(pids) == 2
        assert stats["probe_failures"] == 1
        assert stats["worker_restarts"] == 1

    def test_probe_skips_busy_workers(self, registered):
        import threading

        manager, f, c = _instance()
        with MinimizationPool(workers=1, deadline=5.0) as pool:
            payload_done = threading.Event()
            result_box = []

            def occupy():
                result_box.append(
                    pool.minimize(manager, f, c, method="test_hang",
                                  deadline=1.0)
                )
                payload_done.set()

            thread = threading.Thread(target=occupy)
            thread.start()
            time.sleep(0.2)  # let the request check out the worker
            report = pool.probe(timeout=0.5)
            assert report["probed"] == 0
            payload_done.wait(timeout=10.0)
            thread.join(timeout=10.0)
