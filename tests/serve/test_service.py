"""Service-level tests: breakers over a real pool, retry, sweep parity."""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.bdd.manager import Manager
from repro.core.ispec import ISpec
from repro.core.registry import register_heuristic, unregister_heuristic
from repro.serve.breaker import CLOSED, OPEN, RetryPolicy
from repro.serve.pool import MinimizationPool
from repro.serve.service import MinimizationService

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="service tests require the fork start method",
)

FAST = dict(deadline=0.4, kill_grace=0.15)


def _instance():
    manager = Manager(["a", "b", "c", "d"])
    a, b, c, d = (manager.var(level) for level in range(4))
    f = manager.or_(manager.and_(a, b), manager.and_(c, d))
    care = manager.or_(a, b)
    return manager, f, care


def _flaky_while_flag(flag_path):
    """A heuristic that hangs while ``flag_path`` exists, else succeeds.

    The flag lives on disk, so the parent can heal the heuristic
    between requests even though each request runs in a (possibly
    recycled) worker process.
    """

    def flaky(manager, f, c):
        while os.path.exists(flag_path):
            try:
                time.sleep(0.01)
            except Exception:
                # Swallow the worker's deadline alarm: the fault
                # drills exercise the watchdog SIGKILL path, so the
                # hang must survive the cooperative deadline.
                continue
        return f

    return flaky


class TestServiceBasics:
    def test_healthy_request(self):
        manager, f, c = _instance()
        pool = MinimizationPool(workers=1)
        with MinimizationService(pool, own_pool=True) as service:
            result = service.minimize(manager, f, c, method="osm_bt")
        assert result.ok and result.attempts == 1
        assert ISpec(manager, f, c).is_cover(result.cover)

    def test_deterministic_failure_is_not_retried(self):
        manager, f, c = _instance()
        pool = MinimizationPool(workers=1)
        with MinimizationService(
            pool, retry=RetryPolicy(max_attempts=3), own_pool=True
        ) as service:
            result = service.minimize(manager, f, c, method="no_such")
        assert result.degraded and result.attempts == 1
        assert "UnknownHeuristic" in result.reason

    def test_retry_recovers_transient_failure(self, tmp_path):
        # First attempt hangs (flag present) and is killed; the
        # heuristic clears its own flag, so the retry succeeds.
        flag = str(tmp_path / "one_shot.flag")
        with open(flag, "w") as handle:
            handle.write("x")

        def clears_then_hangs(manager, f, c):
            if os.path.exists(flag):
                os.unlink(flag)
                while True:
                    pass
            return f

        register_heuristic("test_one_shot", clears_then_hangs, replace=True)
        try:
            manager, f, c = _instance()
            pool = MinimizationPool(workers=1, **FAST)
            with MinimizationService(
                pool, retry=RetryPolicy(max_attempts=2), own_pool=True
            ) as service:
                result = service.minimize(
                    manager, f, c, method="test_one_shot"
                )
            assert result.ok and result.attempts == 2
            assert service.breaker("test_one_shot").state == CLOSED
        finally:
            unregister_heuristic("test_one_shot")


class TestFaultDrill:
    def test_kill_trip_cooldown_probe_recovery(self, tmp_path):
        # The acceptance drill: workers killed mid-request until the
        # breaker opens, short-circuits during cooldown (no pool
        # traffic), then a half-open probe against the healed
        # heuristic closes the breaker again.
        flag = str(tmp_path / "hang.flag")
        with open(flag, "w") as handle:
            handle.write("x")
        register_heuristic(
            "test_flaky", _flaky_while_flag(flag), replace=True
        )
        try:
            manager, f, c = _instance()
            pool = MinimizationPool(workers=1, **FAST)
            with MinimizationService(
                pool,
                failure_threshold=2,
                cooldown=2,
                retry=RetryPolicy(max_attempts=1),
                own_pool=True,
            ) as service:
                breaker = service.breaker("test_flaky")
                # Two killed requests trip the breaker.
                for _ in range(2):
                    result = service.minimize(
                        manager, f, c, method="test_flaky"
                    )
                    assert result.killed and result.cover == f
                assert breaker.state == OPEN
                assert pool.kills == 2
                # Cooldown: two short-circuits, zero pool traffic.
                pool_requests = pool.requests
                for _ in range(2):
                    result = service.minimize(
                        manager, f, c, method="test_flaky"
                    )
                    assert result.short_circuited
                    assert result.attempts == 0
                    assert "CircuitOpen" in result.reason
                    assert result.cover == f
                assert pool.requests == pool_requests
                assert service.short_circuits == 2
                # Heal the heuristic, then the half-open probe closes
                # the breaker.
                os.unlink(flag)
                result = service.minimize(
                    manager, f, c, method="test_flaky"
                )
                assert result.ok
                assert breaker.state == CLOSED
                # And normal traffic flows again.
                assert service.minimize(
                    manager, f, c, method="test_flaky"
                ).ok
        finally:
            unregister_heuristic("test_flaky")

    def test_failed_probe_reopens(self, tmp_path):
        flag = str(tmp_path / "hang.flag")
        with open(flag, "w") as handle:
            handle.write("x")
        register_heuristic(
            "test_flaky2", _flaky_while_flag(flag), replace=True
        )
        try:
            manager, f, c = _instance()
            pool = MinimizationPool(workers=1, **FAST)
            with MinimizationService(
                pool,
                failure_threshold=1,
                cooldown=1,
                retry=RetryPolicy(max_attempts=1),
                own_pool=True,
            ) as service:
                breaker = service.breaker("test_flaky2")
                service.minimize(manager, f, c, method="test_flaky2")
                assert breaker.state == OPEN
                assert service.minimize(
                    manager, f, c, method="test_flaky2"
                ).short_circuited
                # Probe runs for real, still hangs, reopens.
                probe = service.minimize(
                    manager, f, c, method="test_flaky2"
                )
                assert probe.killed
                assert breaker.state == OPEN
        finally:
            unregister_heuristic("test_flaky2")


class TestSweepParity:
    def test_pooled_sweep_matches_serial(self):
        # The harness acceptance check: a parallel sweep agrees with
        # the serial one cell for cell (no failures expected on the
        # healthy quick benchmark).
        from repro.experiments.calls import collect_suite_calls
        from repro.experiments.harness import run_heuristics

        subset = ("osm_bt", "constrain", "restrict", "f_orig")
        serial = run_heuristics(
            collect_suite_calls(["tlc"]),
            heuristics=subset,
            compute_lower_bound=False,
        )
        pooled = run_heuristics(
            collect_suite_calls(["tlc"]),
            heuristics=subset,
            compute_lower_bound=False,
            parallel=2,
        )
        assert serial.total_calls == pooled.total_calls
        for left, right in zip(serial.results, pooled.results):
            for name in subset:
                # Identical modulo None cells (a pooled cell may
                # additionally degrade on wall-clock effects; none are
                # expected here, but the contract allows it).
                if left.sizes[name] is None or right.sizes[name] is None:
                    continue
                assert left.sizes[name] == right.sizes[name]
        assert pooled.failed_cells == 0

    def test_batched_sweep_matches_unbatched(self):
        # Batched dispatch (one envelope per call) is a pure transport
        # optimization: cell sizes must match the per-cell round-trip
        # path exactly.
        from repro.experiments.calls import collect_suite_calls
        from repro.experiments.harness import run_heuristics

        subset = ("osm_bt", "constrain", "restrict", "f_orig")
        batched = run_heuristics(
            collect_suite_calls(["tlc"]),
            heuristics=subset,
            compute_lower_bound=False,
            parallel=2,
            batch=True,
        )
        unbatched = run_heuristics(
            collect_suite_calls(["tlc"]),
            heuristics=subset,
            compute_lower_bound=False,
            parallel=2,
            batch=False,
        )
        assert batched.failed_cells == 0
        assert unbatched.failed_cells == 0
        for left, right in zip(batched.results, unbatched.results):
            assert left.sizes == right.sizes
        stats = batched.serve_stats
        assert stats is not None and stats["batches"] > 0

    def test_breaker_gates_harness_cells(self, tmp_path):
        # A permanently hung heuristic stops being dispatched once its
        # breaker opens, while healthy heuristics keep their cells.
        flag = str(tmp_path / "always.flag")
        with open(flag, "w") as handle:
            handle.write("x")
        register_heuristic(
            "test_always_hang", _flaky_while_flag(flag), replace=True
        )
        try:
            from repro.experiments.calls import collect_suite_calls
            from repro.experiments.harness import run_heuristics

            results = run_heuristics(
                collect_suite_calls(["minmax5"]),
                heuristics=("f_orig", "test_always_hang"),
                compute_lower_bound=False,
                parallel=2,
                serve_deadline=0.4,
            )
            reasons = [
                result.failures.get("test_always_hang", "")
                for result in results.results
            ]
            assert all(reasons), "every hung cell must record a reason"
            assert any("DeadlineExceeded" in reason for reason in reasons)
            assert any("CircuitOpen" in reason for reason in reasons)
            for result in results.results:
                assert result.sizes["f_orig"] is not None
                assert result.sizes["test_always_hang"] is None
        finally:
            unregister_heuristic("test_always_hang")
