"""Tests for the asyncio gateway: admission, deadlines, hedging, drain."""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time

import pytest

from repro.bdd.manager import Manager
from repro.bdd.wire import deserialize, deserialize_instance, serialize_instance
from repro.core.ispec import ISpec
from repro.core.registry import register_heuristic, unregister_heuristic
from repro.serve.breaker import BreakerBoard
from repro.serve.gateway import (
    DeadlineExpired,
    GatewayClosed,
    GatewayError,
    GatewayReply,
    HedgePolicy,
    MinimizationGateway,
    OverloadedError,
)
from repro.serve.pool import DETERMINISTIC, MinimizationPool, TRANSIENT

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="gateway tests require the fork start method",
)

FAST = dict(deadline=0.5, kill_grace=0.15)


def _instance():
    manager = Manager(["a", "b", "c", "d"])
    a, b, c, d = (manager.var(level) for level in range(4))
    f = manager.or_(manager.and_(a, b), manager.and_(c, d))
    care = manager.or_(a, b)
    return manager, f, care


def _payload():
    manager, f, c = _instance()
    return serialize_instance(manager, f, c)


def _run(coro):
    return asyncio.run(coro)


def _check_reply(reply: GatewayReply, request_payload: bytes) -> None:
    """Every reply's payload must decode to a valid Definition 2 cover."""
    scratch, f, c = deserialize_instance(request_payload)
    assert reply.payload is not None
    _, roots = deserialize(reply.payload, manager=scratch)
    assert ISpec(scratch, f, c).is_cover(roots[0])


class _FakeClock:
    """A manually advanced monotonic clock for exact deadline tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _hang_forever(manager, f, c):
    # Alarm-proof hang (see tests/serve/test_pool.py): exercises the
    # watchdog SIGKILL path, not the cooperative deadline.
    while True:
        try:
            while True:
                pass
        except Exception:
            continue


def _crash_hard(manager, f, c):
    os._exit(23)


@pytest.fixture
def registered():
    names = {"test_hang": _hang_forever, "test_crash": _crash_hard}
    for name, heuristic in names.items():
        register_heuristic(name, heuristic, replace=True)
    yield names
    for name in names:
        unregister_heuristic(name)


class TestHealthyPath:
    def test_submit_returns_verified_cover(self):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(pool) as gateway:
                    reply = await gateway.submit(payload, "osm_bt")
            return reply

        reply = _run(drill())
        assert reply.ok and reply.attempts == 1
        _check_reply(reply, payload)

    def test_minimize_decodes_into_caller_manager(self):
        async def drill():
            manager, f, c = _instance()
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(pool) as gateway:
                    result = await gateway.minimize(manager, f, c, "osm_bt")
            assert result.ok
            assert ISpec(manager, f, c).is_cover(result.cover)

        _run(drill())

    def test_concurrent_submissions_all_complete(self):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=2) as pool:
                async with MinimizationGateway(pool, queue_limit=32) as gw:
                    replies = await asyncio.gather(
                        *(gw.submit(payload, "osm_bt") for _ in range(12))
                    )
                    stats = gw.statistics()
            return replies, stats

        replies, stats = _run(drill())
        assert len(replies) == 12
        for reply in replies:
            assert reply.ok
            _check_reply(reply, payload)
        assert stats["completed"] == 12
        assert stats["admitted"] == 12

    def test_statistics_shape(self):
        async def drill():
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(
                    pool, board=BreakerBoard()
                ) as gateway:
                    await gateway.submit(_payload(), "osm_bt")
                    return gateway.statistics()

        stats = _run(drill())
        for key in (
            "admitted",
            "completed",
            "degraded",
            "shed_overload",
            "shed_expired",
            "shed_closed",
            "hedges",
            "hedge_wins",
            "retries",
            "breaker_successes",
            "pool",
        ):
            assert key in stats


class TestOverload:
    def test_queue_full_sheds_immediately_and_typed(self):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1, **FAST) as pool:
                gateway = MinimizationGateway(pool, queue_limit=2)
                await gateway.start()
                gateway.pause_dispatch()
                # Fill the queue without letting dispatchers drain it.
                pending = [
                    asyncio.ensure_future(gateway.submit(payload, "f_orig"))
                    for _ in range(2)
                ]
                await asyncio.sleep(0)
                started = time.monotonic()
                with pytest.raises(OverloadedError) as excinfo:
                    await gateway.submit(payload, "f_orig")
                shed_latency = time.monotonic() - started
                gateway.resume_dispatch()
                replies = await asyncio.gather(*pending)
                await gateway.close()
                return excinfo.value, shed_latency, replies, gateway

        error, shed_latency, replies, gateway = _run(drill())
        # The shed is immediate: no queue wait, no worker time.
        assert shed_latency < 0.1
        assert error.queue_depth == 2
        assert gateway.shed_overload == 1
        for reply in replies:
            assert reply.ok

    def test_shed_is_gateway_error_subclass(self):
        assert issubclass(OverloadedError, GatewayError)
        assert issubclass(DeadlineExpired, GatewayError)
        assert issubclass(GatewayClosed, GatewayError)


class TestDeadlinePropagation:
    def test_expired_in_queue_is_shed_without_dispatch(self):
        payload = _payload()
        clock = _FakeClock()

        async def drill():
            with MinimizationPool(workers=1, **FAST) as pool:
                gateway = MinimizationGateway(pool, clock=clock)
                await gateway.start()
                gateway.pause_dispatch()
                future = asyncio.ensure_future(
                    gateway.submit(payload, "osm_bt", deadline=1.0)
                )
                await asyncio.sleep(0)
                # The whole budget dies while the request sits queued.
                clock.advance(1.5)
                gateway.resume_dispatch()
                with pytest.raises(DeadlineExpired) as excinfo:
                    await future
                requests_after = pool.statistics()["requests"]
                await gateway.close()
                return excinfo.value, requests_after, gateway

        error, pool_requests, gateway = _run(drill())
        # Shed in the dispatcher, before any worker was touched.
        assert pool_requests == 0
        assert gateway.shed_expired == 1
        assert error.waited == pytest.approx(1.5)

    def test_worker_deadline_is_remaining_not_original_budget(self):
        payload = _payload()
        clock = _FakeClock()

        async def drill():
            with MinimizationPool(workers=1) as pool:
                gateway = MinimizationGateway(
                    pool, clock=clock, record_dispatches=True
                )
                await gateway.start()
                gateway.pause_dispatch()
                future = asyncio.ensure_future(
                    gateway.submit(payload, "osm_bt", deadline=2.0)
                )
                await asyncio.sleep(0)
                # 0.75s of the 2.0s budget is consumed by queueing.
                clock.advance(0.75)
                gateway.resume_dispatch()
                reply = await future
                await gateway.close()
                return reply, gateway.dispatch_log

        reply, log = _run(drill())
        assert reply.ok
        assert len(log) == 1
        seq, method, worker_deadline = log[0]
        assert (seq, method) == (0, "osm_bt")
        # Exactly the remaining budget, not the original 2.0s.
        assert worker_deadline == pytest.approx(2.0 - 0.75)
        assert reply.worker_deadline == pytest.approx(1.25)
        assert reply.queue_wait == pytest.approx(0.75)

    def test_fresh_request_gets_full_budget(self):
        payload = _payload()
        clock = _FakeClock()

        async def drill():
            with MinimizationPool(workers=1) as pool:
                gateway = MinimizationGateway(
                    pool, clock=clock, record_dispatches=True
                )
                await gateway.start()
                reply = await gateway.submit(payload, "osm_bt", deadline=3.0)
                await gateway.close()
                return reply, gateway.dispatch_log

        reply, log = _run(drill())
        assert reply.ok
        assert log[0][2] == pytest.approx(3.0)


class TestDegradation:
    def test_hung_heuristic_degrades_to_identity(self, registered):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1, **FAST) as pool:
                async with MinimizationGateway(
                    pool, retry_transient=False
                ) as gateway:
                    return await gateway.submit(
                        payload, "test_hang", deadline=0.4
                    )

        reply = _run(drill())
        assert reply.degraded
        assert reply.kind == TRANSIENT
        assert "DeadlineExceeded" in reply.reason
        # Degraded replies still carry a valid (identity) cover.
        _check_reply(reply, payload)

    def test_transient_failure_retried_within_budget(self, registered):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1, **FAST) as pool:
                async with MinimizationGateway(pool) as gateway:
                    reply = await gateway.submit(
                        payload, "test_crash", deadline=4.0
                    )
                    return reply, gateway.retries

        reply, retries = _run(drill())
        # Both the primary and the budget-funded retry crash.
        assert reply.degraded and reply.attempts == 2
        assert retries == 1
        _check_reply(reply, payload)

    def test_unknown_heuristic_is_deterministic_no_retry(self):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(pool) as gateway:
                    reply = await gateway.submit(payload, "no_such")
                    return reply, gateway.retries

        reply, retries = _run(drill())
        assert reply.degraded and reply.kind == DETERMINISTIC
        assert retries == 0
        assert "UnknownHeuristic" in reply.reason
        _check_reply(reply, payload)

    def test_corrupt_request_payload_never_raises_untyped(self):
        payload = bytearray(_payload())
        payload[-1] ^= 0xFF  # break the CRC

        async def drill():
            with MinimizationPool(workers=1, **FAST) as pool:
                async with MinimizationGateway(pool) as gateway:
                    return await gateway.submit(bytes(payload), "osm_bt")

        reply = _run(drill())
        assert reply.degraded
        assert "WireError" in reply.reason
        # The request payload itself is undecodable, so not even the
        # identity cover can be recovered from it.
        assert reply.payload is None

    def test_open_breaker_short_circuits_with_typed_reason(self):
        payload = _payload()
        board = BreakerBoard(failure_threshold=1, cooldown=4)
        board.breaker("osm_bt").record_failure()  # trip it open

        async def drill():
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(pool, board=board) as gateway:
                    reply = await gateway.submit(payload, "osm_bt")
                    return reply, pool.statistics()["requests"]

        reply, pool_requests = _run(drill())
        assert reply.degraded and reply.attempts == 0
        assert "CircuitOpen" in reply.reason
        # Short-circuited before the pool.
        assert pool_requests == 0
        _check_reply(reply, payload)


class TestHedging:
    def test_policy_eligibility_is_counter_based(self):
        policy = HedgePolicy(every=3)
        assert [policy.eligible(seq) for seq in range(6)] == [
            True, False, False, True, False, False,
        ]
        with pytest.raises(ValueError):
            HedgePolicy(every=0)
        with pytest.raises(ValueError):
            HedgePolicy(delay_fraction=1.5)

    def test_hedge_rescues_straggler(self, registered):
        # Worker 1 eats the hung primary; the hedge runs on worker 2
        # with delay_fraction=0 (hedge immediately) and wins.
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=2, deadline=2.0) as pool:
                # Prime both workers so the hedge finds an idle one.
                async with MinimizationGateway(
                    pool,
                    hedge=HedgePolicy(delay_fraction=0.0, every=1),
                    retry_transient=False,
                ) as gateway:
                    reply = await gateway.submit(
                        payload, "osm_bt", deadline=2.0
                    )
                    return reply, gateway.hedges

        reply, hedges = _run(drill())
        assert reply.ok
        assert hedges in (0, 1)  # primary may win the race outright
        if hedges:
            assert reply.hedged and reply.attempts == 2

    def test_hedge_stands_down_when_no_idle_worker(self):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1, **FAST) as pool:
                async with MinimizationGateway(
                    pool,
                    hedge=HedgePolicy(delay_fraction=0.0, every=1),
                    dispatchers=1,
                ) as gateway:
                    # One worker, so the hedge can never find an idle
                    # one: pool.execute(block=False) returns None and
                    # the primary result stands.
                    reply = await gateway.submit(payload, "osm_bt")
                    return reply, gateway.hedge_wins

        reply, hedge_wins = _run(drill())
        assert reply.ok
        assert hedge_wins == 0


class TestBatchSubmission:
    def test_submit_batch_returns_verified_covers(self):
        manager, f, c = _instance()
        g = manager.and_(f, c)
        instances = [
            serialize_instance(manager, f, c),
            serialize_instance(manager, g, c),
        ]
        cells = [(0, "osm_bt"), (1, "constrain"), (0, "restrict")]

        async def drill():
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(pool) as gateway:
                    replies = await gateway.submit_batch(instances, cells)
                    return replies, gateway.statistics()

        replies, stats = _run(drill())
        assert len(replies) == 3
        for (index, _), reply in zip(cells, replies):
            assert reply.ok
            _check_reply(reply, instances[index])
        # One admission slot for the batch; completion counts cells.
        assert stats["admitted"] == 1
        assert stats["completed"] == 3
        assert stats["degraded"] == 0

    def test_batch_cell_failure_isolated(self):
        instances = [_payload()]
        cells = [(0, "osm_bt"), (0, "no_such"), (0, "constrain")]

        async def drill():
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(pool) as gateway:
                    replies = await gateway.submit_batch(instances, cells)
                    return replies, gateway.statistics()

        replies, stats = _run(drill())
        assert [reply.ok for reply in replies] == [True, False, True]
        assert replies[1].kind == DETERMINISTIC
        assert "UnknownHeuristic" in replies[1].reason
        _check_reply(replies[1], instances[0])  # identity fallback
        assert stats["completed"] == 2
        assert stats["degraded"] == 1

    def test_batch_breaker_denied_cell_short_circuits(self):
        payload = _payload()
        board = BreakerBoard(failure_threshold=1, cooldown=4)
        board.breaker("osm_bt").record_failure()  # trip it open

        async def drill():
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(pool, board=board) as gw:
                    replies = await gw.submit_batch(
                        [payload], [(0, "osm_bt"), (0, "f_orig")]
                    )
                    return replies, pool.statistics()["requests"]

        replies, pool_requests = _run(drill())
        assert replies[0].degraded and replies[0].attempts == 0
        assert "CircuitOpen" in replies[0].reason
        _check_reply(replies[0], payload)
        assert replies[1].ok
        # Only the allowed cell reached the pool.
        assert pool_requests == 1

    def test_batch_expired_in_queue_sheds_whole_batch(self):
        payload = _payload()
        clock = _FakeClock()

        async def drill():
            with MinimizationPool(workers=1, **FAST) as pool:
                gateway = MinimizationGateway(pool, clock=clock)
                await gateway.start()
                gateway.pause_dispatch()
                future = asyncio.ensure_future(
                    gateway.submit_batch(
                        [payload],
                        [(0, "osm_bt"), (0, "f_orig")],
                        deadline=1.0,
                    )
                )
                await asyncio.sleep(0)
                clock.advance(1.5)
                gateway.resume_dispatch()
                with pytest.raises(DeadlineExpired):
                    await future
                requests_after = pool.statistics()["requests"]
                await gateway.close()
                return requests_after, gateway.shed_expired

        pool_requests, shed_expired = _run(drill())
        assert pool_requests == 0
        assert shed_expired == 1

    def test_batch_occupies_single_admission_slot(self):
        payload = _payload()
        cells = [(0, method) for method in ("osm_bt", "constrain",
                                            "restrict", "f_orig")]

        async def drill():
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(pool, queue_limit=1) as gw:
                    # Four cells fit the one-slot queue: one batch, one
                    # admission.
                    return await gw.submit_batch([payload], cells)

        replies = _run(drill())
        assert len(replies) == 4
        assert all(reply.ok for reply in replies)

    def test_full_queue_sheds_batch_typed(self):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1, **FAST) as pool:
                gateway = MinimizationGateway(pool, queue_limit=1)
                await gateway.start()
                gateway.pause_dispatch()
                pending = asyncio.ensure_future(
                    gateway.submit(payload, "f_orig")
                )
                await asyncio.sleep(0)
                with pytest.raises(OverloadedError):
                    await gateway.submit_batch(
                        [payload], [(0, "osm_bt")]
                    )
                gateway.resume_dispatch()
                reply = await pending
                await gateway.close()
                return reply

        assert _run(drill()).ok

    def test_batch_validation(self):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1) as pool:
                async with MinimizationGateway(pool) as gateway:
                    assert await gateway.submit_batch([payload], []) == []
                    with pytest.raises(ValueError):
                        await gateway.submit_batch(
                            [payload], [(1, "osm_bt")]
                        )
                    with pytest.raises(ValueError):
                        await gateway.submit_batch(
                            [payload], [(0, "osm_bt")], deadline=0.0
                        )

        _run(drill())


class TestLifecycle:
    def test_close_drains_queued_requests(self):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1) as pool:
                gateway = MinimizationGateway(pool, queue_limit=8)
                await gateway.start()
                pending = [
                    asyncio.ensure_future(gateway.submit(payload, "f_orig"))
                    for _ in range(4)
                ]
                await asyncio.sleep(0)
                await gateway.close(drain=True)
                with pytest.raises(GatewayClosed):
                    await gateway.submit(payload, "f_orig")
                return await asyncio.gather(*pending)

        replies = _run(drill())
        assert len(replies) == 4
        for reply in replies:
            assert reply.ok

    def test_forced_close_sheds_queued_typed(self):
        payload = _payload()

        async def drill():
            with MinimizationPool(workers=1, **FAST) as pool:
                gateway = MinimizationGateway(pool, queue_limit=8)
                await gateway.start()
                gateway.pause_dispatch()
                pending = [
                    asyncio.ensure_future(gateway.submit(payload, "f_orig"))
                    for _ in range(3)
                ]
                await asyncio.sleep(0)
                await gateway.close(drain=False)
                results = await asyncio.gather(
                    *pending, return_exceptions=True
                )
                return results, gateway.shed_closed

        results, shed_closed = _run(drill())
        assert shed_closed == 3
        for result in results:
            assert isinstance(result, GatewayClosed)

    def test_submit_before_start_raises_typed(self):
        async def drill():
            with MinimizationPool(workers=1) as pool:
                gateway = MinimizationGateway(pool)
                with pytest.raises(GatewayClosed):
                    await gateway.submit(_payload(), "f_orig")

        _run(drill())

    def test_own_pool_closed_with_gateway(self):
        async def drill():
            pool = MinimizationPool(workers=1)
            async with MinimizationGateway(pool, own_pool=True) as gateway:
                await gateway.submit(_payload(), "f_orig")
            with pytest.raises(RuntimeError):
                pool.execute(_payload(), "f_orig")

        _run(drill())

    def test_constructor_validation(self):
        pool = MinimizationPool(workers=1)
        try:
            with pytest.raises(ValueError):
                MinimizationGateway(pool, queue_limit=0)
            with pytest.raises(ValueError):
                MinimizationGateway(pool, dispatchers=0)
            with pytest.raises(ValueError):
                MinimizationGateway(pool, default_deadline=0.0)
            with pytest.raises(ValueError):
                MinimizationGateway(pool, probe_interval=0.0)
        finally:
            pool.close()


class TestSupervisor:
    def test_supervisor_replaces_killed_idle_worker(self):
        async def drill():
            with MinimizationPool(workers=2) as pool:
                async with MinimizationGateway(
                    pool, probe_interval=0.1, probe_timeout=1.0
                ) as gateway:
                    victim = pool.worker_pids()[0]
                    os.kill(victim, signal.SIGKILL)
                    # Wait for a probe round to notice and respawn.
                    for _ in range(100):
                        await asyncio.sleep(0.05)
                        if gateway.supervisor_restarts:
                            break
                    pids = pool.worker_pids()
                    restarts = gateway.supervisor_restarts
                    rounds = gateway.probe_rounds
                    # The pool still serves.
                    reply = await gateway.submit(_payload(), "osm_bt")
            return victim, pids, restarts, rounds, reply

        victim, pids, restarts, rounds, reply = _run(drill())
        assert restarts >= 1
        assert rounds >= 1
        assert victim not in pids
        assert len(pids) == 2
        assert reply.ok
