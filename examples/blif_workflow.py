#!/usr/bin/env python3
"""End-to-end BLIF workflow: read, analyze, optimize, write back.

Loads the sample machines under ``examples/data/``, computes their
reachable state sets, minimizes every next-state and output function
against the unreachable-state don't cares, proves the optimized machine
sequentially equivalent, and writes the optimized BLIF next to the
original.

Run:  python examples/blif_workflow.py
"""

import pathlib

from repro.bdd import Manager
from repro.fsm import (
    compile_blif,
    minimize_fsm_logic,
    parse_blif,
    reachable_states,
    sequentially_equivalent,
    write_blif,
)

DATA = pathlib.Path(__file__).resolve().parent / "data"


def main() -> None:
    for path in sorted(DATA.glob("*.blif")):
        if path.stem.endswith(".opt"):
            continue
        model = parse_blif(path.read_text())
        manager = Manager()
        fsm = compile_blif(manager, model)
        reach = reachable_states(fsm)
        report = minimize_fsm_logic(fsm, reached=reach.reached)
        equivalent = sequentially_equivalent(
            fsm, report.machine, reached=reach.reached
        )
        optimized_path = path.with_suffix(".opt.blif")
        optimized_path.write_text(write_blif(report.machine))
        print(
            "%-14s latches=%2d reachable=%4d/%-4d logic %4d -> %4d nodes "
            "(%.2fx) equivalent=%s -> %s"
            % (
                path.name,
                fsm.num_latches,
                reach.state_count(fsm),
                1 << fsm.num_latches,
                report.total_before,
                report.total_after,
                report.reduction,
                equivalent,
                optimized_path.name,
            )
        )


if __name__ == "__main__":
    main()
