#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation (§4).

Runs the full pipeline — self-equivalence traversal over the benchmark
suite, interception of every constrain call, replay through all
heuristics with cache flushing, cube lower bounds — and prints
Table 3 (all three onset buckets), Table 4 (head-to-head) and Figure 3
(robustness curves), plus the headline summary numbers quoted in the
paper's prose.

Run:  python examples/run_paper_experiments.py [--quick]
"""

import argparse
import sys
import time

from repro.circuits.suite import QUICK_SUITE
from repro.experiments import (
    run_experiment,
    render_table3,
    render_table4,
    render_figure3,
)
from repro.experiments.buckets import Bucket
from repro.experiments.figure3 import y_intercepts
from repro.experiments.summary import (
    export_csv,
    lower_bound_attainment,
    render_per_benchmark,
)
from repro.experiments.table3 import reduction_factor, table3_rows
from repro.experiments.table4 import table4_matrix


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the fast benchmark subset instead of the full suite",
    )
    parser.add_argument(
        "--cube-limit",
        type=int,
        default=1000,
        help="cubes enumerated for the lower bound (paper: 1000)",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also dump per-call raw measurements as CSV",
    )
    parser.add_argument(
        "--output-dir",
        metavar="DIR",
        help="also write each exhibit to its own text file in DIR",
    )
    args = parser.parse_args(argv)

    started = time.time()
    names = list(QUICK_SUITE) if args.quick else None
    results = run_experiment(names=names, cube_limit=args.cube_limit)
    elapsed = time.time() - started

    print(
        "%d calls measured (%d filtered as trivial) in %.1fs"
        % (results.total_calls, results.filtered_out, elapsed)
    )
    print()
    print("=" * 70)
    print("TABLE 3")
    print("=" * 70)
    print(
        render_table3(
            results, buckets=[None, Bucket.SPARSE, Bucket.MIDDLE, Bucket.DENSE]
        )
    )
    print()
    print("=" * 70)
    print("TABLE 4")
    print("=" * 70)
    print(render_table4(results))
    print()
    print(render_table4(results, bucket=Bucket.DENSE))
    print()
    print("=" * 70)
    print("FIGURE 3")
    print("=" * 70)
    print(render_figure3(results))
    print()
    print("=" * 70)
    print("HEADLINE NUMBERS (paper §4.2 prose)")
    print("=" * 70)
    rows = {row.name: row for row in table3_rows(results)}
    print(
        "min vs lower bound: %.2fx   (paper: ~3.4x)"
        % (rows["min"].total_size / max(rows["low_bd"].total_size, 1))
    )
    print(
        "f_orig reduction:   %.2fx overall, %.2fx sparse, %.2fx dense"
        % (
            reduction_factor(results),
            reduction_factor(results, Bucket.SPARSE) or 0.0,
            reduction_factor(results, Bucket.DENSE) or 0.0,
        )
    )
    matrix = table4_matrix(results)
    print(
        "min strictly beats osm_bt on %.1f%% of calls (paper: 21.9%%)"
        % matrix[("min", "osm_bt")]
    )
    intercepts = y_intercepts(results)
    print(
        "Figure 3 y-intercepts: %s"
        % "  ".join(
            "%s=%.0f%%" % (name, value)
            for name, value in intercepts.items()
        )
    )
    attainment = lower_bound_attainment(results)
    if attainment is not None:
        print(
            "lower bound attained on %.1f%% of calls (paper: 26.2%%)"
            % (100.0 * attainment)
        )
    print()
    print(render_per_benchmark(results))
    if args.csv:
        with open(args.csv, "w") as handle:
            export_csv(results, stream=handle)
        print()
        print("raw measurements written to %s" % args.csv)
    if args.output_dir:
        import pathlib

        directory = pathlib.Path(args.output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        exhibits = {
            "table3.txt": render_table3(
                results,
                buckets=[None, Bucket.SPARSE, Bucket.MIDDLE, Bucket.DENSE],
            ),
            "table4.txt": render_table4(results),
            "figure3.txt": render_figure3(results),
            "per_benchmark.txt": render_per_benchmark(results),
        }
        for filename, text in exhibits.items():
            (directory / filename).write_text(text + "\n")
        print("exhibits written to %s" % directory)
    return 0


if __name__ == "__main__":
    sys.exit(main())
