#!/usr/bin/env python3
"""Frontier-set minimization during reachability analysis.

Shows the raw vs minimized frontier BDD sizes at every BFS iteration —
the quantity the paper's minimization is designed to shrink — across
several minimizers, on a machine whose frontiers have structure
(the carry-propagate accumulator).

Run:  python examples/frontier_minimization.py
"""

from repro.bdd import Manager
from repro.circuits import carry_propagate_accumulator
from repro.core.registry import HEURISTICS
from repro.fsm import compile_fsm, reachable_states


def main() -> None:
    spec = carry_propagate_accumulator(6, 3)
    print("machine: %s" % spec.name)
    print()
    summaries = {}
    for name in ("f_orig", "constrain", "restrict", "osm_bt", "tsm_td"):
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        result = reachable_states(fsm, minimize=HEURISTICS[name])
        summaries[name] = result
        print(
            "%-10s iterations=%2d  reachable states=%d"
            % (name, result.iterations, result.state_count(fsm))
        )
        rows = zip(result.frontier_sizes, result.minimized_sizes)
        trace = "  ".join(
            "%d->%d" % (raw, small) for raw, small in rows
        )
        print("  frontier |U| -> |minimized| per iteration: %s" % trace)
        total_raw = sum(result.frontier_sizes)
        total_min = sum(result.minimized_sizes)
        print(
            "  cumulative frontier nodes: %d -> %d (%.2fx)"
            % (total_raw, total_min, total_raw / total_min)
        )
        print()


if __name__ == "__main__":
    main()
