#!/usr/bin/env python3
"""FSM equivalence checking with BDD minimization in the loop.

The application from the paper's introduction (Coudert et al.): check
two sequential machines equivalent by traversing their product machine
breadth-first, replacing each new frontier U by any set S with
U ⊆ S ⊆ R whose BDD is small.  This example verifies a benchmark
controller against itself and against a mutated copy, and shows how
the choice of frontier minimizer changes the traversal's BDD sizes.

Run:  python examples/fsm_equivalence.py
"""

from repro.bdd import Manager
from repro.circuits import benchmark_spec, random_controller
from repro.core.registry import HEURISTICS
from repro.fsm import compile_product, check_equivalence
from repro.fsm.machine import FsmSpec, LatchSpec, OutputSpec


def mutate(spec: FsmSpec) -> FsmSpec:
    """Flip the polarity of the first output — an injected bug."""
    first = spec.outputs[0]
    if not isinstance(first.fn, str):
        raise ValueError("example expects an expression-based output")
    mutated = OutputSpec(first.name, "~(%s)" % first.fn)
    return FsmSpec(
        spec.name + "_bug",
        spec.inputs,
        spec.latches,
        (mutated,) + spec.outputs[1:],
    )


def main() -> None:
    spec = benchmark_spec("s386")

    print("== self equivalence (must hold) ==")
    manager = Manager()
    product = compile_product(manager, spec, spec)
    result = check_equivalence(product)
    print(
        "equivalent=%s after %d iterations, %d BDD nodes allocated"
        % (result.equivalent, result.iterations, manager.num_nodes)
    )

    print()
    print("== injected bug (must be caught) ==")
    manager = Manager()
    product = compile_product(manager, spec, mutate(spec))
    result = check_equivalence(product)
    print("equivalent=%s" % result.equivalent)
    if result.counterexample is not None:
        state = ", ".join(
            "%s=%d" % (name, value)
            for name, value in sorted(result.counterexample.items())
        )
        print("counterexample product state: %s" % state)

    print()
    print("== effect of the frontier minimizer ==")
    print("%-12s %10s %12s" % ("minimizer", "iterations", "peak nodes"))
    for name in ("f_orig", "constrain", "restrict", "osm_bt", "sched"):
        manager = Manager()
        product = compile_product(manager, spec, spec)
        run = check_equivalence(product, minimize=HEURISTICS[name])
        print("%-12s %10d %12d" % (name, run.iterations, manager.num_nodes))


if __name__ == "__main__":
    main()
