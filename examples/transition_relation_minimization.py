#!/usr/bin/env python3
"""Minimizing a transition relation against unreachable states.

The paper's other FSM application (§1): once the reachable set R is
known, the transition relation T(s, w, s') only needs to be correct for
s ∈ R — the unreachable states form a don't-care set.  Minimizing
[T, R(s) + ...] can shrink T substantially, speeding up later model
checking.  Here the care set is R extended over inputs and next-state
variables (care where the present state is reachable).

Run:  python examples/transition_relation_minimization.py
"""

from repro.bdd import Manager
from repro.circuits import benchmark_spec
from repro.core.registry import HEURISTICS
from repro.fsm import (
    compile_fsm,
    minimize_fsm_logic,
    reachable_states,
    sequentially_equivalent,
    transition_relation,
)


def main() -> None:
    print(
        "%-10s %6s %12s  %s"
        % ("machine", "|T|", "reach/total", "minimized |T| per heuristic")
    )
    for name in ("lfsr5", "johnson4", "tlc", "arb4"):
        spec = benchmark_spec(name)
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        relation = transition_relation(fsm)
        result = reachable_states(fsm)
        # Care where the present state is reachable; unreachable
        # present states are free.
        care = result.reached
        entries = []
        for heuristic_name in ("constrain", "restrict", "osm_bt", "tsm_td"):
            cover = HEURISTICS[heuristic_name](manager, relation, care)
            # Proposition 6: heuristics can increase the size, so in
            # practice one keeps the smaller of result and original.
            size = min(manager.size(cover), manager.size(relation))
            entries.append("%s=%d" % (heuristic_name, size))
        print(
            "%-10s %6d %7d/%-4d  %s"
            % (
                name,
                manager.size(relation),
                result.state_count(fsm),
                1 << fsm.num_latches,
                "  ".join(entries),
            )
        )

    print()
    print("per-function logic minimization (minimize_fsm_logic):")
    print(
        "%-10s %12s %14s %10s %12s"
        % ("machine", "reach frac", "nodes before", "after", "equivalent?")
    )
    for name in ("lfsr5", "johnson4", "tlc", "s344"):
        spec = benchmark_spec(name)
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        report = minimize_fsm_logic(fsm, method="restrict")
        print(
            "%-10s %12.2f %14d %10d %12s"
            % (
                name,
                report.reachable_fraction,
                report.total_before,
                report.total_after,
                sequentially_equivalent(fsm, report.machine),
            )
        )


if __name__ == "__main__":
    main()
