#!/usr/bin/env python3
"""Combinational resynthesis with observability + external don't cares.

Builds a gate-level implementation of a BCD "greater than 4" detector
with some deliberately clumsy internal structure, then simplifies every
node's BDD against its observability don't cares and the external DC
set (input codes 10..15 never occur).  The per-node BDD sizes double as
mux counts under BDD-based FPGA mapping (paper §1).

Run:  python examples/netlist_simplification.py
"""

from repro.bdd import Manager
from repro.bdd.parser import parse_expression
from repro.fsm.netlist import Netlist
from repro.synth import simplify_netlist


def build_circuit() -> Netlist:
    netlist = Netlist("bcd_gt4")
    for name in ("b3", "b2", "b1", "b0"):
        netlist.add_input(name)
    # value > 4 over BCD, written with redundant structure.
    netlist.add_gate("n_upper", "OR", ["b3", "b2"])
    netlist.add_gate("n_mid", "AND", ["b2", "b0"])
    netlist.add_gate("n_midb", "AND", ["b2", "b1"])
    netlist.add_gate("n_extra", "XOR", ["b1", "b0"])  # partly unobservable
    netlist.add_gate("n_gate", "AND", ["n_extra", "b3"])
    netlist.add_gate("n_any", "OR", ["n_mid", "n_midb"])
    netlist.add_gate("n_hi", "OR", ["b3", "n_any"])
    netlist.add_gate("gt4", "OR", ["n_hi", "n_gate"])
    return netlist


def main() -> None:
    netlist = build_circuit()
    manager = Manager(["b3", "b2", "b1", "b0"])
    input_refs = {name: manager.var(name) for name in netlist.inputs}
    # External DC: BCD inputs only (value < 10).
    external = parse_expression(manager, "~(b3 & (b2 | b1))")

    report = simplify_netlist(
        netlist,
        manager,
        input_refs,
        outputs=["gt4"],
        external_care=external,
        method="osm_bt",
    )
    print("node      before  after  care%  replaced")
    for node in report.nodes:
        print(
            "%-9s %6d %6d %6.0f  %s"
            % (
                node.signal,
                node.size_before,
                node.size_after,
                100.0 * node.care_fraction,
                node.replaced,
            )
        )
    print(
        "total mux cost: %d -> %d (%d nodes replaced)"
        % (report.total_before, report.total_after, report.replaced_count)
    )


if __name__ == "__main__":
    main()
