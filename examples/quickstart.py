#!/usr/bin/env python3
"""Quickstart: minimize the paper's Figure 1 / Example 1 instance.

Builds the incompletely specified function (d1 01) from §3.2 — the
instance on which constrain is provably suboptimal — runs every
registered heuristic plus the exact minimizer, and prints the BDD
sizes and a Graphviz rendering of the best cover.

Run:  python examples/quickstart.py
"""

from repro.bdd import Manager
from repro.bdd.dot import to_dot
from repro.core import parse_instance, exact_minimize
from repro.core.registry import HEURISTICS
from repro.core.lower_bound import cube_lower_bound


def main() -> None:
    manager = Manager()
    # The paper's instance notation: leaves of the binary decision tree,
    # left to right, 'd' marking don't-care points (left branch = 0).
    spec = parse_instance(manager, "d1 01")
    print("instance [f, c] = (d1 01)")
    print("  |f| = %d, |c| = %d" % (manager.size(spec.f), manager.size(spec.c)))
    print("  cube lower bound = %d" % cube_lower_bound(manager, spec.f, spec.c))

    best_cover, best_size = exact_minimize(manager, spec.f, spec.c)
    print("  exact minimum    = %d" % best_size)
    print()
    print("%-12s %6s  %s" % ("heuristic", "|g|", "is cover?"))
    for name, heuristic in sorted(HEURISTICS.items()):
        cover = heuristic(manager, spec.f, spec.c)
        print(
            "%-12s %6d  %s"
            % (name, manager.size(cover), spec.is_cover(cover))
        )
    print()
    print("DOT for f, c and the optimal cover (paste into graphviz):")
    print(to_dot(manager, [spec.f, spec.c, best_cover], ["f", "c", "g_opt"]))


if __name__ == "__main__":
    main()
