#!/usr/bin/env python3
"""The §3.4 windowed schedule and its parameters.

Sweeps window_size and stop_top_down on instances collected from the
benchmark traversal, comparing the scheduler against the fixed
heuristics — the experiment the paper leaves as future work
("Experimental verification of what values work well for window_size
and stop_top_down remains").

Run:  python examples/scheduling_demo.py
"""

from repro.core.registry import HEURISTICS
from repro.core.schedule import Schedule, scheduled_minimize
from repro.experiments.calls import collect_suite_calls


def main() -> None:
    records = collect_suite_calls(["s386", "styr", "tlc"])
    calls = [
        (record.manager, call) for record in records for call in record.calls
    ]
    print("%d minimization instances collected" % len(calls))
    print()

    print("fixed heuristics:")
    for name in ("constrain", "restrict", "osm_bt", "tsm_td", "opt_lv"):
        total = sum(
            manager.size(HEURISTICS[name](manager, call.f, call.c))
            for manager, call in calls
        )
        print("  %-10s total size %6d" % (name, total))
    print()

    print("scheduler parameter sweep (window_size x stop_top_down):")
    print("%10s %14s %12s" % ("window", "stop_top_down", "total size"))
    for window_size in (1, 2, 4, 8):
        for stop_top_down in (0, 2, 4):
            schedule = Schedule(
                window_size=window_size, stop_top_down=stop_top_down
            )
            total = sum(
                manager.size(
                    scheduled_minimize(manager, call.f, call.c, schedule)
                )
                for manager, call in calls
            )
            print("%10d %14d %12d" % (window_size, stop_top_down, total))


if __name__ == "__main__":
    main()
