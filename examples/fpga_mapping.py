#!/usr/bin/env python3
"""Multiplexer-FPGA mapping of an incompletely specified circuit.

The paper's second application (§1): some FPGA mapping algorithms work
directly from a BDD, mapping each node to a 2:1 multiplexer cell
(Murgai et al.).  For an incompletely specified circuit, heuristically
minimizing the BDD yields a smaller implementation.

The circuit here is the classic BCD-to-7-segment decoder: input codes
10..15 never occur, so all seven segment functions carry a natural
don't-care set.  We map each segment with and without DC minimization
and report the mux counts.

Run:  python examples/fpga_mapping.py
"""

from repro.bdd import Manager, parse_expression
from repro.bdd.truthtable import bdd_from_leaves
from repro.core.registry import HEURISTICS

# Segment truth tables for digits 0..9 (a-g), 1 = lit.
SEGMENTS = {
    "a": [1, 0, 1, 1, 0, 1, 1, 1, 1, 1],
    "b": [1, 1, 1, 1, 1, 0, 0, 1, 1, 1],
    "c": [1, 1, 0, 1, 1, 1, 1, 1, 1, 1],
    "d": [1, 0, 1, 1, 0, 1, 1, 0, 1, 1],
    "e": [1, 0, 1, 0, 0, 0, 1, 0, 1, 0],
    "f": [1, 0, 0, 0, 1, 1, 1, 0, 1, 1],
    "g": [0, 0, 1, 1, 1, 1, 1, 0, 1, 1],
}


def mux_count(manager: Manager, ref: int) -> int:
    """One 2:1 mux per internal BDD node (the Murgai-style cost)."""
    return manager.size(ref) - 1  # exclude the terminal


def main() -> None:
    manager = Manager(["b3", "b2", "b1", "b0"])
    # Care set: the BCD codes 0..9 (input < 10).
    care_leaves = [index < 10 for index in range(16)]
    care = bdd_from_leaves(manager, care_leaves)
    print("BCD-to-7-segment decoder; care set = codes 0..9")
    print()
    header = ["segment", "plain"] + ["restrict", "osm_bt", "tsm_td", "opt_lv"]
    print("  ".join("%-8s" % column for column in header))
    totals = {column: 0 for column in header[1:]}
    for segment, rows in sorted(SEGMENTS.items()):
        leaves = [bool(rows[index]) if index < 10 else False for index in range(16)]
        f = bdd_from_leaves(manager, leaves)
        row = ["%-8s" % segment, "%-8d" % mux_count(manager, f)]
        totals["plain"] += mux_count(manager, f)
        for name in ("restrict", "osm_bt", "tsm_td", "opt_lv"):
            cover = HEURISTICS[name](manager, f, care)
            cost = mux_count(manager, cover)
            totals[name] += cost
            row.append("%-8d" % cost)
        print("  ".join(row))
    print("  ".join(["%-8s" % "TOTAL"] + ["%-8d" % totals[c] for c in header[1:]]))
    best = min(totals[c] for c in header[2:])
    print()
    print(
        "don't-care minimization saves %d of %d muxes (%.0f%%)"
        % (
            totals["plain"] - best,
            totals["plain"],
            100.0 * (totals["plain"] - best) / totals["plain"],
        )
    )


if __name__ == "__main__":
    main()
