"""Synthesis bench: node simplification quality per heuristic.

For a batch of random netlists with an external don't-care set,
measures the total BDD (mux) cost after DC-based resynthesis under each
minimization heuristic — the FPGA-mapping application of the paper's §1
at benchmark scale.
"""

import random

import pytest

from repro.bdd.manager import Manager
from repro.fsm.netlist import Netlist
from repro.synth.simplify import simplify_netlist


def _batch(count=6, num_inputs=5, num_gates=12, seed=77):
    rng = random.Random(seed)
    instances = []
    for index in range(count):
        netlist = Netlist("bench%d" % index)
        signals = [
            netlist.add_input("i%d" % position)
            for position in range(num_inputs)
        ]
        for position in range(num_gates):
            op = rng.choice(["AND", "OR", "XOR", "NAND", "NOR"])
            fanins = rng.sample(signals, 2)
            signals.append(netlist.add_gate("g%d" % position, op, fanins))
        outputs = signals[-2:]
        manager = Manager(["i%d" % p for p in range(num_inputs)])
        input_refs = {
            "i%d" % p: manager.var(p) for p in range(num_inputs)
        }
        # External DC: exclude a random input cube.
        excluded = manager.cube_ref(
            {p: bool(rng.getrandbits(1)) for p in range(3)}
        )
        instances.append(
            (netlist, manager, input_refs, outputs, excluded ^ 1)
        )
    return instances


@pytest.mark.parametrize(
    "method", ["constrain", "restrict", "osm_bt", "tsm_td"]
)
def test_simplify_method(benchmark, method):
    instances = _batch()

    def run():
        total = 0
        for netlist, manager, input_refs, outputs, care in instances:
            report = simplify_netlist(
                netlist,
                manager,
                input_refs,
                outputs,
                external_care=care,
                method=method,
            )
            total += report.total_after
        return total

    total = benchmark.pedantic(run, rounds=2, iterations=1)
    if not (total > 0):
        raise SystemExit('bench gate failed: total > 0')


def test_simplification_pays(capsys):
    instances = _batch()
    before = after = 0
    for netlist, manager, input_refs, outputs, care in instances:
        report = simplify_netlist(
            netlist, manager, input_refs, outputs, external_care=care
        )
        before += report.total_before
        after += report.total_after
    print()
    print("resynthesis mux cost: %d -> %d" % (before, after))
    if not (after <= before):
        raise SystemExit('bench gate failed: after <= before')
