"""Table 2: the 12 sibling-heuristic parameter points collapse to 8.

Benchmarks the generic top-down matcher at every (criterion,
match-complement, no-new-vars) point over a batch of random instances
and asserts the paper's identifications: complement matching is a
no-op for osdm (rows 3/4 = 1/2) and no-new-vars is a no-op for tsm
(rows 10/12 = 9/11).
"""

import pytest

from repro.bdd.manager import Manager
from repro.bdd.truthtable import bdd_from_leaves
from repro.core.criteria import Criterion
from repro.core.sibling import generic_td

import random

NUM_VARS = 6


def _instances(count=40, seed=2):
    rng = random.Random(seed)
    manager = Manager()
    batch = []
    for _ in range(count):
        f_leaves = [rng.random() < 0.5 for _ in range(1 << NUM_VARS)]
        c_leaves = [rng.random() < 0.7 for _ in range(1 << NUM_VARS)]
        if not any(c_leaves):
            c_leaves[0] = True
        batch.append(
            (
                bdd_from_leaves(manager, f_leaves),
                bdd_from_leaves(manager, c_leaves),
            )
        )
    return manager, batch


ALL_ROWS = [
    ("row1_constrain", Criterion.OSDM, False, False),
    ("row2_restrict", Criterion.OSDM, False, True),
    ("row3_osdm_cp", Criterion.OSDM, True, False),
    ("row4_osdm_cp_nv", Criterion.OSDM, True, True),
    ("row5_osm_td", Criterion.OSM, False, False),
    ("row6_osm_nv", Criterion.OSM, False, True),
    ("row7_osm_cp", Criterion.OSM, True, False),
    ("row8_osm_bt", Criterion.OSM, True, True),
    ("row9_tsm_td", Criterion.TSM, False, False),
    ("row10_tsm_nv", Criterion.TSM, False, True),
    ("row11_tsm_cp", Criterion.TSM, True, False),
    ("row12_tsm_cp_nv", Criterion.TSM, True, True),
]


@pytest.mark.parametrize("label,criterion,compl,nnv", ALL_ROWS)
def test_table2_row(benchmark, label, criterion, compl, nnv):
    manager, batch = _instances()

    def run():
        return [
            generic_td(
                manager,
                f,
                c,
                criterion,
                match_complement=compl,
                no_new_vars=nnv,
            )
            for f, c in batch
        ]

    covers = benchmark.pedantic(run, rounds=3, iterations=1)
    if not (len(covers) == len(batch)):
        raise SystemExit('bench gate failed: len(covers) == len(batch)')


def test_duplicate_rows_coincide():
    """Rows 3/4 equal rows 1/2; rows 10/12 equal rows 9/11."""
    manager, batch = _instances(count=60, seed=5)
    for f, c in batch:
        row1 = generic_td(manager, f, c, Criterion.OSDM)
        row3 = generic_td(manager, f, c, Criterion.OSDM, match_complement=True)
        if not (row1 == row3):
            raise SystemExit('bench gate failed: row1 == row3')
        row2 = generic_td(manager, f, c, Criterion.OSDM, no_new_vars=True)
        row4 = generic_td(
            manager, f, c, Criterion.OSDM, match_complement=True, no_new_vars=True
        )
        if not (row2 == row4):
            raise SystemExit('bench gate failed: row2 == row4')
        row9 = generic_td(manager, f, c, Criterion.TSM)
        row10 = generic_td(manager, f, c, Criterion.TSM, no_new_vars=True)
        if not (row9 == row10):
            raise SystemExit('bench gate failed: row9 == row10')
        row11 = generic_td(manager, f, c, Criterion.TSM, match_complement=True)
        row12 = generic_td(
            manager, f, c, Criterion.TSM, match_complement=True, no_new_vars=True
        )
        if not (row11 == row12):
            raise SystemExit('bench gate failed: row11 == row12')
