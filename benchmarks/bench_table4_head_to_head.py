"""Table 4: head-to-head win percentages between heuristics.

Benchmarks the matrix computation over the measured call set and
asserts the paper's qualitative reading: min is unbeaten, osm_bt is
rarely beaten by min (the paper's 21.9% figure), opt_lv is routinely
bettered overall yet unbeaten on the dense bucket.
"""

from repro.experiments.buckets import Bucket
from repro.experiments.table4 import (
    orthogonality,
    render_table4,
    table4_matrix,
)


def test_matrix_generation(benchmark, quick_results):
    matrix = benchmark(table4_matrix, quick_results)
    if not (matrix):
        raise SystemExit('bench gate failed: matrix')


def test_table4_shape_and_render(benchmark, quick_results):
    text = benchmark(render_table4, quick_results)
    print()
    print(text)
    print()
    print(render_table4(quick_results, bucket=Bucket.DENSE))
    matrix = table4_matrix(quick_results)
    names = ("f_orig", "constrain", "restrict", "osm_bt", "tsm_td", "opt_lv")
    # Diagonal is zero; nobody strictly beats min on any call.
    for name in names:
        if not (matrix[(name, name)] == 0.0):
            raise SystemExit('bench gate failed: matrix[(name, name)] == 0.0')
    for result in quick_results.results:
        if not (result.min_size <= min(result.sizes.values())):
            raise SystemExit('bench gate failed: result.min_size <= min(result.sizes.values())')
    # min beats osm_bt on a minority of calls (the paper's 21.9%).
    if not (matrix[("min", "osm_bt")] < 50.0):
        raise SystemExit('bench gate failed: matrix[("min", "osm_bt")] < 50.0')
    # Orthogonality is symmetric-sum bounded.
    if not (0.0 <= orthogonality(matrix, "constrain", "tsm_td") <= 200.0):
        raise SystemExit('bench gate failed: 0.0 <= orthogonality(matrix, "constrain", "tsm_td") <= 200.0')
    # Dense bucket: the opt_lv column is (near) all zeroes — in the
    # paper's data it is exactly zero ("always the best").
    dense = table4_matrix(quick_results, bucket=Bucket.DENSE)
    for name in names:
        if not (dense[(name, "opt_lv")] <= 5.0):
            raise SystemExit('bench gate failed: dense[(name, "opt_lv")] <= 5.0')
