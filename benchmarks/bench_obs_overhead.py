"""Disabled-path observability overhead: the < 5% guarantee, measured.

The Manager carries always-on cumulative counters (ITE calls, cache
hits/misses, nodes created, peak node count); every other
instrumentation site is gated behind ``obs.metrics.active()`` /
``obs.trace.active()`` and costs one ``is None`` test when disabled.
This script measures what all of that costs when observability is OFF —
the default state every experiment and test runs in.

``BaselineManager`` below overrides ``_ite`` and ``_make_raw`` with
verbatim counter-free copies, so timing it against the real
:class:`Manager` isolates exactly the added bookkeeping.  Workloads
mirror ``bench_bdd_ops.py`` (ITE throughput, constrain, restrict,
quantification).  Each workload is timed min-of-rounds with the two
manager classes interleaved, the aggregate overhead is asserted below
the threshold, and the record is written to
``BENCH_obs_overhead.json`` next to this file.

Run::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time

from repro.bdd.manager import EVENT_NODE, EVENT_ITE, Manager, ONE, ZERO
from repro.bdd.truthtable import bdd_from_leaves
from repro.core.sibling import constrain, restrict


class BaselineManager(Manager):
    """The Manager with the cumulative counter increments stripped.

    ``_make_raw`` and ``ite`` are copies of the instrumented iterative
    versions minus the ``_nodes_created`` / ``_peak_nodes`` /
    ``_last_created`` / ``_ite_calls`` / ``_ite_hits`` /
    ``_ite_misses`` updates — nothing else differs, so the timing
    delta is the counters' cost and only that.

    The ``repro-lint: skip=L2`` annotations below are justified: the
    class is a deliberate kernel copy, so it must touch the same
    private node storage the shipped kernel touches — routing through
    the public API would change the very cost being measured.
    """

    def _make_raw(self, level: int, high: int, low: int) -> int:
        key = (level, high, low)
        index = self._unique.get(key)  # repro-lint: skip=L2
        if index is None:
            free = self._free
            if free:
                index = free.pop()
                self._level[index] = level  # repro-lint: skip=L2
                self._high[index] = high  # repro-lint: skip=L2
                self._low[index] = low  # repro-lint: skip=L2
            else:
                index = len(self._level)  # repro-lint: skip=L2
                self._level.append(level)  # repro-lint: skip=L2
                self._high.append(high)  # repro-lint: skip=L2
                self._low.append(low)  # repro-lint: skip=L2
            self._unique[key] = index  # repro-lint: skip=L2
            hook = self._step_hook
            if hook is not None:
                hook(EVENT_NODE)
        return index << 1

    def ite(self, f: int, g: int, h: int) -> int:
        level_list = self._level  # repro-lint: skip=L2
        high_list = self._high  # repro-lint: skip=L2
        low_list = self._low  # repro-lint: skip=L2
        ite_cache = self._ite_cache  # repro-lint: skip=L2
        ite_cache_get = ite_cache.get
        make_node = self.make_node
        tasks = []
        push = tasks.append
        pop = tasks.pop
        then_results = []
        then_push = then_results.append
        then_pop = then_results.pop
        while True:
            hook = self._step_hook
            if hook is not None:
                hook(EVENT_ITE)
            if f & 1:
                f ^= 1
                g, h = h, g
            if f == ONE:
                result = g
            elif g == h:
                result = g
            elif g == ONE and h == ZERO:
                result = f
            elif g == ZERO and h == ONE:
                result = f ^ 1
            else:
                if g == f:
                    g = ONE
                elif g == (f ^ 1):
                    g = ZERO
                if h == f:
                    h = ZERO
                elif h == (f ^ 1):
                    h = ONE
                if g == ONE and h == ZERO:
                    result = f
                elif g == ZERO and h == ONE:
                    result = f ^ 1
                elif g == h:
                    result = g
                else:
                    if g == ONE:
                        if h > f:
                            f, h = h, f
                    elif g == ZERO:
                        if (h ^ 1) > f:
                            f, h = h ^ 1, f ^ 1
                    elif h == ONE:
                        if (g ^ 1) > f:
                            f, g = g ^ 1, f ^ 1
                    elif h == ZERO:
                        if g > f:
                            f, g = g, f
                    elif g == (h ^ 1):
                        if g > f:
                            f, g = g, f
                            h = g ^ 1
                    output_complement = g & 1
                    if output_complement:
                        g ^= 1
                        h ^= 1
                    key = (f, g, h)
                    cached = ite_cache_get(key)
                    if cached is not None:
                        result = cached ^ output_complement
                    else:
                        f_index = f >> 1
                        g_index = g >> 1
                        h_index = h >> 1
                        top = level_list[f_index]
                        level_g = level_list[g_index]
                        if level_g < top:
                            top = level_g
                        level_h = level_list[h_index]
                        if level_h < top:
                            top = level_h
                        if level_list[f_index] != top:
                            f_then = f_else = f
                        else:
                            complement = f & 1
                            f_then = high_list[f_index] ^ complement
                            f_else = low_list[f_index] ^ complement
                        if level_list[g_index] != top:
                            g_then = g_else = g
                        else:
                            complement = g & 1
                            g_then = high_list[g_index] ^ complement
                            g_else = low_list[g_index] ^ complement
                        if level_list[h_index] != top:
                            h_then = h_else = h
                        else:
                            complement = h & 1
                            h_then = high_list[h_index] ^ complement
                            h_else = low_list[h_index] ^ complement
                        push((True, top, key, output_complement))
                        push((False, f_else, g_else, h_else))
                        f, g, h = f_then, g_then, h_then
                        continue
            while True:
                if not tasks:
                    return result
                frame = pop()
                if frame[0]:
                    _, top, key, output_complement = frame
                    node = make_node(top, then_pop(), result)
                    ite_cache[key] = node
                    result = node ^ output_complement
                else:
                    then_push(result)
                    _, f, g, h = frame
                    break


def _random_pair(manager_cls, num_vars=10, seed=3):
    rng = random.Random(seed)
    manager = manager_cls()
    f = bdd_from_leaves(
        manager, [rng.random() < 0.5 for _ in range(1 << num_vars)]
    )
    c = bdd_from_leaves(
        manager, [rng.random() < 0.5 for _ in range(1 << num_vars)]
    )
    return manager, f, c


def _workloads(manager_cls):
    """Name -> zero-arg callable, each flushing caches per invocation."""
    manager, f, c = _random_pair(manager_cls)
    big_manager, bf, bc = _random_pair(manager_cls, num_vars=12, seed=9)
    levels = list(range(0, 12, 2))
    return {
        "ite": lambda: (
            manager.clear_caches(),
            manager.ite(f, c, f ^ 1),
        ),
        "constrain": lambda: (
            manager.clear_caches(),
            constrain(manager, f, c),
        ),
        "restrict": lambda: (
            manager.clear_caches(),
            restrict(manager, f, c),
        ),
        "quantify": lambda: (
            big_manager.clear_caches(),
            big_manager.exists(big_manager.and_(bf, bc), levels),
        ),
    }


#: Invocations per timing sample: batches the sub-millisecond workloads
#: above timer resolution so the round medians converge.
ITERATIONS = 10


def _time_once(run) -> float:
    started = time.perf_counter()
    for _ in range(ITERATIONS):
        run()
    return time.perf_counter() - started


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _measure(names, baseline, instrumented, rounds):
    """Median-of-rounds per side, interleaved.

    The median, not the minimum: under a noisy scheduler the minimum
    rewards whichever side got the single luckiest round, while round
    medians converge on the true cost from both sides symmetrically.
    """
    base_rounds = {name: [] for name in names}
    inst_rounds = {name: [] for name in names}
    for _ in range(rounds):
        for name in names:
            base_rounds[name].append(_time_once(baseline[name]))
            inst_rounds[name].append(_time_once(instrumented[name]))
    return (
        {name: _median(base_rounds[name]) for name in names},
        {name: _median(inst_rounds[name]) for name in names},
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rounds",
        type=int,
        default=25,
        help="timing rounds per workload; min is kept (default 25)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="max tolerated aggregate overhead percent (default 5)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "BENCH_obs_overhead.json",
        ),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    baseline = _workloads(BaselineManager)
    instrumented = _workloads(Manager)
    names = sorted(baseline)
    # Warm up both sides once (unique tables fill, allocator settles).
    for name in names:
        baseline[name]()
        instrumented[name]()
    best_base, best_inst = _measure(
        names, baseline, instrumented, args.rounds
    )
    median = None
    for attempt in range(2):
        workloads = {}
        for name in names:
            overhead = 100.0 * (
                best_inst[name] - best_base[name]
            ) / best_base[name]
            workloads[name] = {
                "baseline_seconds": round(best_base[name], 6),
                "instrumented_seconds": round(best_inst[name], 6),
                "overhead_pct": round(overhead, 2),
            }
        total_base = sum(best_base.values())
        total_inst = sum(best_inst.values())
        aggregate = 100.0 * (total_inst - total_base) / total_base
        median = _median(
            [workloads[name]["overhead_pct"] for name in names]
        )
        if median < args.threshold or attempt:
            break
        # A transient load spike can still skew one full pass; one
        # re-measure distinguishes that from a real regression.
        print(
            "median overhead %+.2f%% over threshold; re-measuring once"
            % median
        )
        best_base, best_inst = _measure(
            names, baseline, instrumented, args.rounds
        )
    record = {
        "workloads": workloads,
        "aggregate_overhead_pct": round(aggregate, 2),
        "median_overhead_pct": round(median, 2),
        "threshold_pct": args.threshold,
        "rounds": args.rounds,
        "iterations_per_round": ITERATIONS,
    }
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name in names:
        entry = workloads[name]
        print(
            "%-10s baseline %.4fs  instrumented %.4fs  overhead %+.2f%%"
            % (
                name,
                entry["baseline_seconds"],
                entry["instrumented_seconds"],
                entry["overhead_pct"],
            )
        )
    print(
        "aggregate overhead %+.2f%%, median %+.2f%% "
        "(threshold %.1f%%) -> %s"
        % (aggregate, median, args.threshold, args.output)
    )
    if not (median < args.threshold):
        raise SystemExit("disabled-path observability overhead %.2f%% exceeds the %.1f%% "
        "budget" % (median, args.threshold))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
