"""Kernel and collector baseline: the first recorded perf trajectory.

Five measurements, written to ``BENCH_kernel.json`` next to this file:

``ite_throughput``
    ITE kernel steps per second on a cache-cold random-function
    workload, for the shipped iterative kernel and for
    ``RecursiveKernelManager`` — a benchmark-local subclass carrying
    the old recursive ``ite`` (with the same counters), kept here as
    the reference the iterative kernel must not regress against.

``sanitizer_overhead``
    The same throughput workload on ``SanitizedManager`` — the
    ``REPRO_SANITIZE=1`` tag-and-check wrapper — against the plain
    kernel.  ``--quick`` gates the slowdown below
    ``--max-sanitizer-overhead`` (default 2.0x).

``deep_chain``
    Wall-clock seconds to push a multi-thousand-variable chain BDD
    through ``ite`` under the **default** interpreter recursion limit.
    The recursive kernel records its ``RecursionError`` instead of a
    time — that failure is the point of the rewrite.

``gc_sweep``
    A capped Table-2 sweep (quick suite) run twice through
    ``run_heuristics``: once with the §4.1.1 flush points as real
    mark-and-sweep collections (``gc=True``) and once cache-flush-only
    (``gc=False``).  Records the peak unique-table length per mode —
    the collector must run strictly flatter.

Run::

    PYTHONPATH=src python benchmarks/bench_kernel.py          # full
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick  # CI gate

``--quick`` shrinks the workloads and exits non-zero if the iterative
kernel falls below ``--min-ratio`` (default 0.9) of the recursive
throughput — the perf-smoke CI gate.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.truthtable import bdd_from_leaves


class RecursiveKernelManager(Manager):
    """The pre-rewrite recursive ITE kernel, preserved as a baseline.

    Forbidden in ``src/`` (the iterative kernels exist precisely to
    kill recursion-limit coupling) but kept here so every future run
    re-measures the rewrite's speedup instead of trusting a number in
    a commit message.  Counter updates match the shipped kernel's, so
    the comparison isolates the call-stack-versus-explicit-stack cost.

    The ``repro-lint: skip=L2`` annotations below are justified: this
    class *is* a kernel reimplementation, so touching the private node
    storage is the whole point — going through the public traversal
    API would change exactly the cost being measured.
    """

    def ite(self, f: int, g: int, h: int) -> int:
        self._ite_calls += 1
        hook = self._step_hook
        if hook is not None:
            hook("ite")
        if f & 1:
            f ^= 1
            g, h = h, g
        if f == ONE:
            return g
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        if g == ZERO and h == ONE:
            return f ^ 1
        if g == f:
            g = ONE
        elif g == (f ^ 1):
            g = ZERO
        if h == f:
            h = ZERO
        elif h == (f ^ 1):
            h = ONE
        if g == ONE and h == ZERO:
            return f
        if g == ZERO and h == ONE:
            return f ^ 1
        if g == h:
            return g
        if g == ONE:
            if h > f:
                f, h = h, f
        elif g == ZERO:
            if (h ^ 1) > f:
                f, h = h ^ 1, f ^ 1
        elif h == ONE:
            if (g ^ 1) > f:
                f, g = g ^ 1, f ^ 1
        elif h == ZERO:
            if g > f:
                f, g = g, f
        elif g == (h ^ 1):
            if g > f:
                f, g = g, f
                h = g ^ 1
        output_complement = 0
        if g & 1:
            g ^= 1
            h ^= 1
            output_complement = 1
        key = (f, g, h)
        cached = self._ite_cache.get(key)  # repro-lint: skip=L2
        if cached is not None:
            self._ite_hits += 1
            return cached ^ output_complement
        self._ite_misses += 1
        level_f = self._level[f >> 1]  # repro-lint: skip=L2
        level_g = self._level[g >> 1]  # repro-lint: skip=L2
        level_h = self._level[h >> 1]  # repro-lint: skip=L2
        top = min(level_f, level_g, level_h)
        f_then, f_else = self.branches(f, top)
        g_then, g_else = self.branches(g, top)
        h_then, h_else = self.branches(h, top)
        result = self.make_node(
            top,
            self.ite(f_then, g_then, h_then),
            self.ite(f_else, g_else, h_else),
        )
        self._ite_cache[key] = result  # repro-lint: skip=L2
        return result ^ output_complement


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


# ----------------------------------------------------------------------
# ite throughput
# ----------------------------------------------------------------------
def _random_instances(manager_cls, num_vars, count, seed=7):
    rng = random.Random(seed)
    manager = manager_cls()
    pairs = []
    for _ in range(count):
        f = bdd_from_leaves(
            manager, [rng.random() < 0.5 for _ in range(1 << num_vars)]
        )
        g = bdd_from_leaves(
            manager, [rng.random() < 0.5 for _ in range(1 << num_vars)]
        )
        pairs.append((f, g))
    return manager, pairs


def measure_ite_throughput(manager_cls, num_vars, rounds):
    """Median cache-cold ITE steps/second over ``rounds`` passes."""
    manager, pairs = _random_instances(manager_cls, num_vars, count=6)
    rates = []
    for _ in range(rounds):
        manager.clear_caches()
        steps_before = manager.statistics()["ite_calls"]
        started = time.perf_counter()
        for f, g in pairs:
            manager.ite(f, g, f ^ 1)
            manager.xor(f, g)
        elapsed = time.perf_counter() - started
        steps = manager.statistics()["ite_calls"] - steps_before
        rates.append(steps / elapsed)
    return _median(rates)


def measure_sanitizer_overhead(num_vars, rounds):
    """Plain vs ``SanitizedManager`` ite throughput (tag-and-check cost).

    Returns ``(plain_rate, sanitized_rate, slowdown)`` where slowdown is
    plain/sanitized — the factor every kernel call pays for the
    ``REPRO_SANITIZE=1`` provenance checks.  The off-path cost (sanitizer
    *not* installed) is not measured here because the plain ``Manager``
    code path is byte-identical either way; only ``gc(compact=True)``
    gained a single integer increment.
    """
    from repro.analysis.sanitize import SanitizedManager

    plain = measure_ite_throughput(Manager, num_vars, rounds)
    sanitized = measure_ite_throughput(SanitizedManager, num_vars, rounds)
    return plain, sanitized, plain / sanitized


# ----------------------------------------------------------------------
# deep chain
# ----------------------------------------------------------------------
def _chain(manager, depth):
    conj = ONE
    parity = ZERO
    for level in range(depth - 1, -1, -1):
        conj = manager.make_node(level, conj, ZERO)
        parity = manager.make_node(level, parity ^ 1, parity)
    return conj, parity


def measure_deep_chain(manager_cls, depth):
    """Seconds to AND a depth-``depth`` chain against parity, or the
    error name if the kernel cannot cross that many levels."""
    manager = manager_cls()
    manager.ensure_vars(depth)
    conj, parity = _chain(manager, depth)
    started = time.perf_counter()
    try:
        result = manager.and_(conj, parity)
    except RecursionError:
        return None, "RecursionError"
    elapsed = time.perf_counter() - started
    expected = conj if depth % 2 else ZERO
    if not (result == expected):
        raise SystemExit("deep-chain ite returned a wrong function")
    return elapsed, None


# ----------------------------------------------------------------------
# gc sweep
# ----------------------------------------------------------------------
def measure_gc_sweep(max_iterations, benchmarks=None):
    """Peak unique-table length of a capped Table-2 sweep, per gc mode."""
    from repro.circuits.suite import QUICK_SUITE
    from repro.experiments.calls import collect_suite_calls
    from repro.experiments.harness import run_heuristics

    names = list(benchmarks or QUICK_SUITE)
    out = {}
    for mode in (True, False):
        records = collect_suite_calls(
            names, max_iterations=max_iterations
        )
        started = time.perf_counter()
        run_heuristics(
            records, compute_lower_bound=False, gc=mode
        )
        elapsed = time.perf_counter() - started
        # num_nodes is the table-length watermark: with gc the free
        # list is recycled and the table stays near the live size;
        # without it every heuristic's scratch stays resident.
        peak = max(record.manager.num_nodes for record in records)
        gc_runs = sum(
            record.manager.statistics()["gc_runs"] for record in records
        )
        reclaimed = sum(
            record.manager.statistics()["nodes_reclaimed"]
            for record in records
        )
        out["with_gc" if mode else "without_gc"] = {
            "peak_num_nodes": peak,
            "sweep_seconds": round(elapsed, 3),
            "gc_runs": gc_runs,
            "nodes_reclaimed": reclaimed,
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads + enforce the throughput gate (CI)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="timing rounds for the throughput workload",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.9,
        help="minimum iterative/recursive throughput ratio (default 0.9)",
    )
    parser.add_argument(
        "--max-sanitizer-overhead",
        type=float,
        default=2.0,
        help="maximum SanitizedManager slowdown factor (default 2.0)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "BENCH_kernel.json",
        ),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)
    rounds = args.rounds or (9 if args.quick else 25)
    num_vars = 10 if args.quick else 12
    depth = 5_000 if args.quick else 20_000
    max_iterations = 1 if args.quick else 2
    benchmarks = ["s344", "tlc"] if args.quick else None

    # Interleave the two kernels round-robin at the workload level so
    # load spikes hit both sides.
    iterative = measure_ite_throughput(Manager, num_vars, rounds)
    recursive = measure_ite_throughput(
        RecursiveKernelManager, num_vars, rounds
    )
    ratio = iterative / recursive
    print(
        "ite throughput: iterative %.0f steps/s, recursive %.0f steps/s "
        "(ratio %.2fx)" % (iterative, recursive, ratio)
    )

    plain_rate, sanitized_rate, slowdown = measure_sanitizer_overhead(
        num_vars, rounds
    )
    print(
        "sanitizer overhead: plain %.0f steps/s, sanitized %.0f steps/s "
        "(%.2fx slowdown)" % (plain_rate, sanitized_rate, slowdown)
    )

    iter_chain, iter_err = measure_deep_chain(Manager, depth)
    rec_chain, rec_err = measure_deep_chain(RecursiveKernelManager, depth)
    print(
        "deep chain (%d vars, limit %d): iterative %s, recursive %s"
        % (
            depth,
            sys.getrecursionlimit(),
            "%.3fs" % iter_chain if iter_err is None else iter_err,
            "%.3fs" % rec_chain if rec_err is None else rec_err,
        )
    )

    sweep = measure_gc_sweep(max_iterations, benchmarks)
    print(
        "gc sweep peak num_nodes: %d with gc (%d collections, %d nodes "
        "reclaimed), %d without"
        % (
            sweep["with_gc"]["peak_num_nodes"],
            sweep["with_gc"]["gc_runs"],
            sweep["with_gc"]["nodes_reclaimed"],
            sweep["without_gc"]["peak_num_nodes"],
        )
    )

    record = {
        "ite_throughput": {
            "iterative_steps_per_sec": round(iterative),
            "recursive_steps_per_sec": round(recursive),
            "ratio": round(ratio, 3),
            "num_vars": num_vars,
            "rounds": rounds,
        },
        "deep_chain": {
            "depth": depth,
            "recursion_limit": sys.getrecursionlimit(),
            "iterative_seconds": (
                None if iter_err else round(iter_chain, 3)
            ),
            "iterative_error": iter_err,
            "recursive_seconds": (
                None if rec_err else round(rec_chain, 3)
            ),
            "recursive_error": rec_err,
        },
        "gc_sweep": sweep,
        "sanitizer_overhead": {
            "plain_steps_per_sec": round(plain_rate),
            "sanitized_steps_per_sec": round(sanitized_rate),
            "slowdown": round(slowdown, 3),
        },
        "quick": args.quick,
    }
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("record written to %s" % args.output)

    failed = []
    if iter_err is not None:
        failed.append(
            "iterative kernel failed the deep chain: %s" % iter_err
        )
    if ratio < args.min_ratio:
        failed.append(
            "iterative ite throughput is %.2fx the recursive baseline "
            "(gate: >= %.2fx)" % (ratio, args.min_ratio)
        )
    if slowdown >= args.max_sanitizer_overhead:
        failed.append(
            "sanitizer slowdown is %.2fx (gate: < %.2fx)"
            % (slowdown, args.max_sanitizer_overhead)
        )
    gc_peak = sweep["with_gc"]["peak_num_nodes"]
    raw_peak = sweep["without_gc"]["peak_num_nodes"]
    if gc_peak >= raw_peak:
        failed.append(
            "gc sweep peak %d is not strictly below the no-gc peak %d"
            % (gc_peak, raw_peak)
        )
    for message in failed:
        print("FAIL: %s" % message, file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
