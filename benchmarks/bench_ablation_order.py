"""Ablation: variable order vs don't-care minimization.

The paper fixes the variable order and extracts all freedom from the
don't cares.  This ablation asks how the two interact: does sifting the
order first leave less for the DC heuristics to do?  For a sample of
recorded instances we compare four pipelines:

1. original order, f as-is,
2. original order + osm_bt,
3. sifted order, f as-is,
4. sifted order + osm_bt,

measuring the total node counts of each.  The two knobs are largely
complementary: sifting reshapes the DAG, DC assignment removes care
points — combined they beat either alone.
"""

import pytest

from repro.bdd.reorder import reorder, sift, transfer
from repro.core.registry import HEURISTICS


def _sample(quick_calls, per_machine=4):
    sample = []
    for record in quick_calls:
        for call in record.calls[:per_machine]:
            sample.append((record.manager, call))
    return sample


def _pipeline(sample, use_sift, use_minimize):
    total = 0
    for manager, call in sample:
        f, c = call.f, call.c
        work_manager = manager
        if use_minimize:
            manager.clear_caches()
            f = HEURISTICS["osm_bt"](manager, call.f, call.c)
        if use_sift:
            work_manager, (f,), _ = sift(manager, [f], max_passes=1)
        total += work_manager.size(f)
    return total


@pytest.mark.parametrize(
    "label,use_sift,use_minimize",
    [
        ("baseline", False, False),
        ("minimize_only", False, True),
        ("sift_only", True, False),
        ("sift_and_minimize", True, True),
    ],
)
def test_order_vs_dc_ablation(benchmark, quick_calls, label, use_sift, use_minimize):
    sample = _sample(quick_calls)
    total = benchmark.pedantic(
        _pipeline, args=(sample, use_sift, use_minimize), rounds=1, iterations=1
    )
    if not (total > 0):
        raise SystemExit('bench gate failed: total > 0')


def test_combined_beats_either_alone(quick_calls):
    sample = _sample(quick_calls, per_machine=3)
    baseline = _pipeline(sample, False, False)
    minimize_only = _pipeline(sample, False, True)
    sift_only = _pipeline(sample, True, False)
    combined = _pipeline(sample, True, True)
    print()
    print(
        "order-vs-DC ablation: baseline=%d minimize=%d sift=%d combined=%d"
        % (baseline, minimize_only, sift_only, combined)
    )
    if not (minimize_only <= baseline):
        raise SystemExit('bench gate failed: minimize_only <= baseline')
    if not (sift_only <= baseline):
        raise SystemExit('bench gate failed: sift_only <= baseline')
    if not (combined <= minimize_only):
        raise SystemExit('bench gate failed: combined <= minimize_only')
    if not (combined <= sift_only):
        raise SystemExit('bench gate failed: combined <= sift_only')
