"""Serial vs pooled sweep wall-clock: the --parallel speedup record.

A standalone script (no pytest benches): it runs the same heuristic
sweep twice — once serially in-process, once sharded across a
``repro.serve`` worker pool — and writes the wall-clock comparison to
``BENCH_parallel_sweep.json`` next to this file.  The pooled numbers
include the full isolation overhead (wire encoding, pipe transport,
child-side verification), so the speedup honestly reports what
``repro-bdd experiments --parallel N`` buys, not an idealized bound.

Run::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.registry import PAPER_HEURISTICS
from repro.experiments.calls import collect_suite_calls
from repro.experiments.harness import run_heuristics

#: Benchmarks kept small enough that CI pays seconds, not minutes.
DEFAULT_BENCHMARKS = ("tlc", "minmax5", "s344")


def _sweep(names, heuristics, parallel):
    calls = collect_suite_calls(list(names))
    started = time.perf_counter()
    results = run_heuristics(
        calls,
        heuristics=heuristics,
        compute_lower_bound=False,
        parallel=parallel,
    )
    elapsed = time.perf_counter() - started
    return results, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="pool workers for the parallel pass (default 2)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(DEFAULT_BENCHMARKS),
        help="benchmarks to sweep (default: %s)"
        % ", ".join(DEFAULT_BENCHMARKS),
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "BENCH_parallel_sweep.json",
        ),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    heuristics = tuple(PAPER_HEURISTICS)
    serial_results, serial_seconds = _sweep(
        args.benchmarks, heuristics, parallel=None
    )
    pooled_results, pooled_seconds = _sweep(
        args.benchmarks, heuristics, parallel=args.workers
    )

    # Sanity: the pooled sweep measured the same cells and produced
    # the same sizes (modulo None cells, which the contract allows).
    if not (serial_results.total_calls == pooled_results.total_calls):
        raise SystemExit('bench gate failed: serial_results.total_calls == pooled_results.total_calls')
    agreeing = 0
    for left, right in zip(serial_results.results, pooled_results.results):
        for name in heuristics:
            if None in (left.sizes[name], right.sizes[name]):
                continue
            if not (left.sizes[name] == right.sizes[name]):
                raise SystemExit("pooled sweep diverged on %s/%s" % (left.benchmark, name))
            agreeing += 1

    record = {
        "benchmarks": list(args.benchmarks),
        "heuristics": list(heuristics),
        "cells": serial_results.total_calls * len(heuristics),
        "agreeing_cells": agreeing,
        "workers": args.workers,
        "serial_seconds": round(serial_seconds, 4),
        "pooled_seconds": round(pooled_seconds, 4),
        "speedup": round(serial_seconds / pooled_seconds, 4),
        "pooled_failed_cells": pooled_results.failed_cells,
        # Serve-layer health of the pooled pass: the record must show
        # how hard the isolation machinery worked, not just how fast.
        "serve_stats": {
            key: pooled_results.serve_stats.get(key, 0)
            for key in (
                "requests",
                "failures",
                "kills",
                "crashes",
                "worker_restarts",
                "probe_failures",
                "recycles",
                "breaker_successes",
                "breaker_failures",
                "breaker_opens",
                "breaker_short_circuits",
            )
        },
        "breaker_states": pooled_results.serve_stats.get(
            "breaker_states", {}
        ),
    }
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        "serial %.2fs vs pooled %.2fs with %d worker(s) "
        "(speedup %.2fx, %d/%d cells agree) -> %s"
        % (
            serial_seconds,
            pooled_seconds,
            args.workers,
            record["speedup"],
            agreeing,
            record["cells"],
            args.output,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
