"""Serial vs pooled sweep wall-clock: the --parallel speedup record.

A standalone script (no pytest benches): it runs the same heuristic
sweep three times — once serially in-process, once through the batched
pooled path (one envelope per call, warm worker managers, pipelined
dispatch), and once through the unbatched pooled path (one worker
round trip per cell, the pre-batching behaviour) — and writes the
wall-clock comparison to ``BENCH_parallel_sweep.json`` next to this
file.  The headline metric is explicitly

    ``speedup = serial_seconds / pooled_seconds``

so values above 1.0 mean the pooled sweep beats serial; the companion
``unbatched_speedup`` uses the same definition for the unbatched pass,
and ``batched_vs_unbatched`` is their ratio — what batching plus warm
managers buy *independent of core count*.  The pooled numbers include
the full isolation overhead (wire encoding, pipe transport, child-side
verification), so the speedup honestly reports what
``repro-bdd experiments --parallel N`` buys, not an idealized bound.

``--min-speedup`` gates the batched speedup, but only when the machine
can physically parallelize: a pool of N workers plus the reaping
parent needs more than N CPUs to beat serial, so on smaller boxes the
gate records itself as skipped (``speedup_gate.enforced = false``)
instead of failing on hardware that cannot pass.

With ``--trace PATH`` an extra pooled pass runs under distributed
tracing and writes the merged Chrome-trace timeline; the measured
tracing overhead is gated by ``--max-trace-overhead`` so the always-on
phase accounting stays honest about its cost.

Run::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py --workers 2
    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py \
        --quick --trace /tmp/sweep-trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

from repro.core.registry import PAPER_HEURISTICS
from repro.experiments.calls import collect_suite_calls
from repro.experiments.harness import run_heuristics
from repro.obs import trace as obs_trace


def _effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1

#: Benchmarks kept small enough that CI pays seconds, not minutes.
DEFAULT_BENCHMARKS = ("tlc", "minmax5", "s344")

#: The --quick subset: one mid-size benchmark, small enough that CI
#: can afford several pooled passes (untraced baselines + traced) in
#: the obs-dist job, yet with requests large enough that the pooled
#: pass is bounded by worker compute rather than pipe round-trips —
#: the regime the tracing-overhead gate is meant to measure.  The
#: micro-benchmarks (tlc, minmax5) spend most of each request on IPC,
#: where scheduler noise on the saturated pool swamps tracing cost.
QUICK_BENCHMARKS = ("s344",)


def _sweep(names, heuristics, parallel, batch=True):
    calls = collect_suite_calls(list(names))
    started = time.perf_counter()
    results = run_heuristics(
        calls,
        heuristics=heuristics,
        compute_lower_bound=False,
        parallel=parallel,
        batch=batch,
    )
    elapsed = time.perf_counter() - started
    return results, elapsed


def _sweep_traced(names, heuristics, workers, path):
    """Pooled sweep under an active tracer; merged trace written to path."""
    with obs_trace.tracing(path):
        return _sweep(names, heuristics, parallel=workers)


def _check_agreement(serial_results, pooled_results, heuristics):
    if not (serial_results.total_calls == pooled_results.total_calls):
        raise SystemExit(
            "bench gate failed: serial_results.total_calls == "
            "pooled_results.total_calls"
        )
    agreeing = 0
    for left, right in zip(serial_results.results, pooled_results.results):
        for name in heuristics:
            if None in (left.sizes[name], right.sizes[name]):
                continue
            if not (left.sizes[name] == right.sizes[name]):
                raise SystemExit(
                    "pooled sweep diverged on %s/%s" % (left.benchmark, name)
                )
            agreeing += 1
    return agreeing


def _count_process_tracks(path):
    with open(path) as handle:
        events = json.load(handle)
    return len(
        {
            event["pid"]
            for event in events
            if event.get("ph") == "M" and event.get("name") == "process_name"
        }
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="pool workers for the parallel pass (default 2)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        help="benchmarks to sweep (default: %s)"
        % ", ".join(DEFAULT_BENCHMARKS),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized sweep (%s) instead of the full default set"
        % ", ".join(QUICK_BENCHMARKS),
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the batched pooled speedup reaches X; the "
        "gate is recorded but not enforced when the machine has "
        "fewer than workers+1 CPUs (parallelism cannot beat serial "
        "there)",
    )
    parser.add_argument(
        "--no-unbatched",
        action="store_true",
        help="skip the unbatched pooled pass (faster CI runs that "
        "only need the batched numbers)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="run an extra traced pooled pass and write the merged "
        "Chrome-trace timeline here",
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        default=0.05,
        help="fail if the traced pass is slower than the untraced "
        "pooled pass by more than this fraction (default 0.05; "
        "negative disables the gate)",
    )
    parser.add_argument(
        "--trace-repeats",
        type=int,
        default=5,
        help="passes per mode for the overhead measurement; the gate "
        "compares the minimum of each side, which keeps scheduler "
        "noise out of the verdict (default 5)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "BENCH_parallel_sweep.json",
        ),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    if args.benchmarks is not None:
        benchmarks = list(args.benchmarks)
    elif args.quick:
        benchmarks = list(QUICK_BENCHMARKS)
    else:
        benchmarks = list(DEFAULT_BENCHMARKS)

    heuristics = tuple(PAPER_HEURISTICS)
    serial_results, serial_seconds = _sweep(
        benchmarks, heuristics, parallel=None
    )
    pooled_results, pooled_seconds = _sweep(
        benchmarks, heuristics, parallel=args.workers
    )

    # Sanity: the pooled sweep measured the same cells and produced
    # the same sizes (modulo None cells, which the contract allows).
    agreeing = _check_agreement(serial_results, pooled_results, heuristics)

    cpus = _effective_cpus()
    record = {
        "benchmarks": benchmarks,
        "heuristics": list(heuristics),
        "cells": serial_results.total_calls * len(heuristics),
        "agreeing_cells": agreeing,
        "workers": args.workers,
        "cpus": cpus,
        "serial_seconds": round(serial_seconds, 4),
        "pooled_seconds": round(pooled_seconds, 4),
        # The headline: speedup = serial_seconds / pooled_seconds.
        # > 1.0 means the pooled sweep beats the serial one.
        "speedup": round(serial_seconds / pooled_seconds, 4),
        "pooled_failed_cells": pooled_results.failed_cells,
        # Serve-layer health of the pooled pass: the record must show
        # how hard the isolation machinery worked, not just how fast.
        "serve_stats": {
            key: pooled_results.serve_stats.get(key, 0)
            for key in (
                "requests",
                "batches",
                "failures",
                "kills",
                "crashes",
                "worker_restarts",
                "probe_failures",
                "recycles",
                "breaker_successes",
                "breaker_failures",
                "breaker_opens",
                "breaker_short_circuits",
            )
        },
        "breaker_states": pooled_results.serve_stats.get(
            "breaker_states", {}
        ),
    }
    # Exact per-phase percentiles of the pooled pass (seconds): the
    # decode/compute/encode split every batching PR is judged against.
    record["serve_stats"]["phases"] = pooled_results.serve_stats.get(
        "phases", {}
    )

    # Ledger sanity: pool.dispatch is the pool-side overhead residual
    # (round trip minus worker-reported wall), so a healthy batched
    # sweep spends strictly less on dispatch than on compute.
    phases = record["serve_stats"]["phases"]
    dispatch_total = phases.get("pool.dispatch", {}).get("total", 0.0)
    compute_total = phases.get("worker.compute", {}).get("total", 0.0)
    if compute_total and dispatch_total >= compute_total:
        raise SystemExit(
            "bench gate failed: pool.dispatch total %.4fs is not below "
            "worker.compute total %.4fs" % (dispatch_total, compute_total)
        )

    if not args.no_unbatched:
        # The same pooled sweep through the pre-batching path: one
        # worker round trip per cell, cold per-request decode.  The
        # batched-vs-unbatched ratio isolates what batching and warm
        # managers buy, independent of how many CPUs the box has.
        unbatched_results, unbatched_seconds = _sweep(
            benchmarks, heuristics, parallel=args.workers, batch=False
        )
        _check_agreement(serial_results, unbatched_results, heuristics)
        record["pooled_unbatched_seconds"] = round(unbatched_seconds, 4)
        record["unbatched_speedup"] = round(
            serial_seconds / unbatched_seconds, 4
        )
        record["batched_vs_unbatched"] = round(
            unbatched_seconds / pooled_seconds, 4
        )

    # The speedup floor: enforced only where the hardware can pass it.
    # N workers plus the decoding/reaping parent need more than N CPUs
    # before wall-clock parallel gains are physically possible.
    if args.min_speedup is not None:
        enforced = cpus >= args.workers + 1
        record["speedup_gate"] = {
            "floor": args.min_speedup,
            "enforced": enforced,
            "reason": None
            if enforced
            else "%d CPU(s) cannot parallelize %d workers + parent"
            % (cpus, args.workers),
        }
        if enforced and record["speedup"] < args.min_speedup:
            raise SystemExit(
                "bench gate failed: speedup %.2fx below the %.2fx floor"
                % (record["speedup"], args.min_speedup)
            )
        if not enforced:
            print(
                "speedup floor %.2fx recorded but not enforced: %s"
                % (args.min_speedup, record["speedup_gate"]["reason"])
            )

    if args.trace:
        # A warmup traced pass (discarded), then alternated untraced /
        # traced passes compared min-to-min.  The quick sweep finishes
        # in a couple of seconds, where any single pair of runs is
        # dominated by scheduler noise; the minimum of each side is
        # the standard robust estimator, since noise only ever adds
        # time.  The first pooled pass above is excluded too — it paid
        # the cold worker forks.
        repeats = max(1, args.trace_repeats)
        traced_results, _ = _sweep_traced(
            benchmarks, heuristics, args.workers, args.trace
        )
        _check_agreement(serial_results, traced_results, heuristics)
        untraced_times = []
        traced_times = []
        for _ in range(repeats):
            _, elapsed = _sweep(
                benchmarks, heuristics, parallel=args.workers
            )
            untraced_times.append(elapsed)
            traced_results, elapsed = _sweep_traced(
                benchmarks, heuristics, args.workers, args.trace
            )
            _check_agreement(serial_results, traced_results, heuristics)
            traced_times.append(elapsed)
        baseline = min(untraced_times)
        traced_seconds = min(traced_times)
        overhead = traced_seconds / baseline - 1.0
        record["trace"] = {
            "path": os.path.abspath(args.trace),
            "traced_seconds": round(traced_seconds, 4),
            "baseline_seconds": round(baseline, 4),
            "repeats": repeats,
            "overhead_pct": round(overhead * 100.0, 2),
            "process_tracks": _count_process_tracks(args.trace),
        }
        print(
            "traced pooled pass %.2fs vs untraced %.2fs, best of %d "
            "(overhead %+.1f%%) -> %s"
            % (traced_seconds, baseline, repeats, overhead * 100.0,
               args.trace)
        )
        if args.max_trace_overhead >= 0 and overhead > args.max_trace_overhead:
            raise SystemExit(
                "bench gate failed: tracing overhead %.1f%% exceeds "
                "budget %.1f%%"
                % (overhead * 100.0, args.max_trace_overhead * 100.0)
            )

    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    extra = ""
    if "batched_vs_unbatched" in record:
        extra = ", batched %.2fx over unbatched pooled" % (
            record["batched_vs_unbatched"]
        )
    print(
        "serial %.2fs vs pooled %.2fs with %d worker(s) on %d CPU(s) "
        "(speedup %.2fx%s, %d/%d cells agree) -> %s"
        % (
            serial_seconds,
            pooled_seconds,
            args.workers,
            cpus,
            record["speedup"],
            extra,
            agreeing,
            record["cells"],
            args.output,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
