"""Table 1: matching-criterion property checks at scale.

Table 1 itself is a property table (verified exhaustively in
tests/core/test_criteria_properties.py); this bench times the three
match predicates on traversal-sized operands — the inner loop of every
heuristic — and re-validates the strength hierarchy on the measured
batch.
"""

import random

import pytest

from repro.bdd.manager import Manager
from repro.bdd.truthtable import bdd_from_leaves
from repro.core.criteria import (
    Criterion,
    matches,
    osdm_matches,
    osm_matches,
    tsm_matches,
)

NUM_VARS = 10


def _batch(count=50, seed=13):
    rng = random.Random(seed)
    manager = Manager()
    pairs = []
    for _ in range(count):
        refs = []
        for _ in range(4):
            leaves = [rng.random() < 0.5 for _ in range(1 << NUM_VARS)]
            refs.append(bdd_from_leaves(manager, leaves))
        pairs.append(tuple(refs))
    return manager, pairs


@pytest.mark.parametrize(
    "criterion", [Criterion.OSDM, Criterion.OSM, Criterion.TSM]
)
def test_match_predicate_throughput(benchmark, criterion):
    manager, pairs = _batch()

    def run():
        manager.clear_caches()
        return sum(
            1
            for f1, c1, f2, c2 in pairs
            if matches(criterion, manager, f1, c1, f2, c2)
        )

    benchmark(run)


def test_strength_hierarchy_on_batch():
    manager, pairs = _batch(count=200, seed=29)
    for f1, c1, f2, c2 in pairs:
        if osdm_matches(manager, f1, c1, f2, c2):
            if not (osm_matches(manager, f1, c1, f2, c2)):
                raise SystemExit('bench gate failed: osm_matches(manager, f1, c1, f2, c2)')
        if osm_matches(manager, f1, c1, f2, c2):
            if not (tsm_matches(manager, f1, c1, f2, c2)):
                raise SystemExit('bench gate failed: tsm_matches(manager, f1, c1, f2, c2)')
