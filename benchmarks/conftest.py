"""Shared session fixtures for the benchmark harness.

Collection (running the FSM traversals) happens once per session; the
individual benches then measure heuristic replay, exhibit generation,
and ablations against the same recorded call set.
"""

from __future__ import annotations

import pytest

from repro.circuits.suite import QUICK_SUITE
from repro.experiments.calls import collect_suite_calls
from repro.experiments.harness import run_heuristics


@pytest.fixture(scope="session")
def quick_calls():
    """Recorded minimization calls over the fast benchmark subset."""
    return collect_suite_calls(list(QUICK_SUITE))


@pytest.fixture(scope="session")
def quick_results(quick_calls):
    """Measured results over the fast subset (computed once)."""
    return run_heuristics(quick_calls, cube_limit=200)
