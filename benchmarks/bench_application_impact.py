"""Extension bench: application-level impact of frontier minimization.

The measurement the paper deferred to Coudert et al. / Touati et al.:
run the whole equivalence check under each frontier minimizer and
compare traversal cost.  Run with ``-s`` to see the rendered table.
"""

import pytest

from repro.bdd.manager import Manager
from repro.core.registry import HEURISTICS
from repro.fsm.product import compile_product
from repro.fsm.reachability import check_equivalence
from repro.circuits.suite import benchmark_spec
from repro.experiments.application import (
    measure_application_impact,
    render_application_impact,
)

MACHINES = ("tlc", "s386", "s344", "cbp.32.4")


@pytest.mark.parametrize(
    "minimizer", ["f_orig", "constrain", "restrict", "osm_bt", "robust"]
)
def test_traversal_under_minimizer(benchmark, minimizer):
    def run():
        total_nodes = 0
        for name in MACHINES:
            spec = benchmark_spec(name)
            manager = Manager()
            product = compile_product(manager, spec, spec)
            result = check_equivalence(
                product, minimize=HEURISTICS[minimizer]
            )
            if not (result.equivalent):
                raise SystemExit('bench gate failed: result.equivalent')
            total_nodes += manager.num_nodes
        return total_nodes

    total = benchmark.pedantic(run, rounds=2, iterations=1)
    if not (total > 0):
        raise SystemExit('bench gate failed: total > 0')


def test_application_impact_render(benchmark):
    runs = benchmark.pedantic(
        measure_application_impact,
        args=(list(MACHINES),),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_application_impact(runs))
    for run in runs:
        if not (run.equivalent):
            raise SystemExit('bench gate failed: run.equivalent')
