"""Figure 3: robustness curves (% of calls within x% of min).

Benchmarks curve generation and asserts the structural properties the
paper reads off the plot: curves increase monotonically toward 100%,
the restrict/tsm_td class out-intercepts constrain, and in the dense
bucket opt_lv's curve is pegged at 100%.
"""

from repro.experiments.buckets import Bucket
from repro.experiments.figure3 import (
    figure3_curves,
    render_figure3,
    y_intercepts,
)


def test_curve_generation(benchmark, quick_results):
    curves = benchmark(figure3_curves, quick_results)
    if not (curves):
        raise SystemExit('bench gate failed: curves')


def test_figure3_shape_and_render(benchmark, quick_results):
    text = benchmark(render_figure3, quick_results)
    print()
    print(text)
    curves = figure3_curves(quick_results)
    for series in curves.values():
        values = [value for _, value in series]
        if not (values == sorted(values)):  # monotone toward 100%
            raise SystemExit('bench gate failed: values == sorted(values)')
        if not (values[-1] <= 100.0):
            raise SystemExit('bench gate failed: values[-1] <= 100.0')
    intercepts = y_intercepts(quick_results)
    # The restrict / tsm_td class wins more often than constrain
    # ("consistently perform about 20% better than constrain").
    if not (intercepts["restrict"] > intercepts["constrain"]):
        raise SystemExit('bench gate failed: intercepts["restrict"] > intercepts["constrain"]')
    if not (intercepts["tsm_td"] > intercepts["constrain"]):
        raise SystemExit('bench gate failed: intercepts["tsm_td"] > intercepts["constrain"]')
    # Dense bucket: opt_lv's curve is pegged at (or very near) 100% —
    # the paper's data has it exactly at 100%.
    dense = y_intercepts(quick_results, bucket=Bucket.DENSE)
    if not (dense["opt_lv"] >= 95.0):
        raise SystemExit('bench gate failed: dense["opt_lv"] >= 95.0')
    if not (dense["opt_lv"] == max(dense.values())):
        raise SystemExit('bench gate failed: dense["opt_lv"] == max(dense.values())')
