"""Ablation: the two clique-cover optimizations of §3.3.2.

The paper proposes processing seed vertices in decreasing degree order
and candidate edges in ascending distance-weight order.  This bench
measures opt_lv quality (total cover size over the recorded calls)
and runtime with each optimization toggled.
"""

import pytest

from repro.core.criteria import Criterion
from repro.core.levels import opt_lv


def _total_size(calls, order_by_degree, use_distance_weights):
    total = 0
    for record in calls:
        manager = record.manager
        for call in record.calls:
            manager.clear_caches()
            cover = opt_lv(
                manager,
                call.f,
                call.c,
                order_by_degree=order_by_degree,
                use_distance_weights=use_distance_weights,
            )
            total += manager.size(cover)
    return total


@pytest.mark.parametrize(
    "label,degree,weights",
    [
        ("baseline_no_opts", False, False),
        ("degree_order_only", True, False),
        ("distance_weights_only", False, True),
        ("both_optimizations", True, True),
    ],
)
def test_clique_ablation(benchmark, quick_calls, label, degree, weights):
    total = benchmark.pedantic(
        _total_size, args=(quick_calls, degree, weights), rounds=1, iterations=1
    )
    if not (total > 0):
        raise SystemExit('bench gate failed: total > 0')


def test_optimizations_never_break_covers(quick_calls):
    """Whatever the flags, opt_lv must return covers; sizes reported."""
    from repro.core.ispec import ISpec

    sizes = {}
    for degree in (False, True):
        for weights in (False, True):
            total = 0
            for record in quick_calls:
                manager = record.manager
                for call in record.calls[:5]:
                    cover = opt_lv(
                        manager,
                        call.f,
                        call.c,
                        order_by_degree=degree,
                        use_distance_weights=weights,
                    )
                    if not (ISpec(manager, call.f, call.c).is_cover(cover)):
                        raise SystemExit('bench gate failed: ISpec(manager, call.f, call.c).is_cover(cover)')
                    total += manager.size(cover)
            sizes[(degree, weights)] = total
    print()
    print("opt_lv ablation totals (first 5 calls per machine):")
    for (degree, weights), total in sorted(sizes.items()):
        print(
            "  degree_order=%-5s distance_weights=%-5s -> %d"
            % (degree, weights, total)
        )
