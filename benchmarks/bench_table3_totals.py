"""Table 3: cumulative sizes, runtimes and ranks per heuristic.

Each bench times one heuristic's replay over the recorded call set —
the runtime column of Table 3.  The module-level assertions after
measurement verify the paper's qualitative findings hold: the
no-new-vars family leads the sparse bucket, opt_lv leads the dense
bucket, the trivial bounds trail everything, and the lower bound is
respected.  Run with ``--benchmark-only -s`` to see the rendered table.
"""

import pytest

from repro.experiments.buckets import Bucket
from repro.experiments.harness import run_heuristics
from repro.experiments.table3 import render_table3, table3_rows
from repro.core.registry import HEURISTICS


def _replay(calls, name):
    total = 0
    for record in calls:
        manager = record.manager
        heuristic = HEURISTICS[name]
        for call in record.calls:
            manager.clear_caches()
            total += manager.size(heuristic(manager, call.f, call.c))
    return total


@pytest.mark.parametrize(
    "name",
    [
        "constrain",
        "restrict",
        "osm_td",
        "osm_nv",
        "osm_cp",
        "osm_bt",
        "tsm_td",
        "tsm_cp",
        "opt_lv",
        "f_orig",
    ],
)
def test_heuristic_replay(benchmark, quick_calls, name):
    """Time one Table 3 row (cumulative minimization over all calls)."""
    total = benchmark.pedantic(
        _replay, args=(quick_calls, name), rounds=2, iterations=1
    )
    if not (total > 0):
        raise SystemExit('bench gate failed: total > 0')


def test_table3_shape_and_render(benchmark, quick_results):
    """The paper's Table 3 findings, asserted on regenerated data."""
    text = benchmark(
        render_table3,
        quick_results,
        buckets=[None, Bucket.SPARSE, Bucket.DENSE],
    )
    print()
    print(text)
    overall = {row.name: row for row in table3_rows(quick_results)}
    sparse = {
        row.name: row for row in table3_rows(quick_results, Bucket.SPARSE)
    }
    dense = {
        row.name: row for row in table3_rows(quick_results, Bucket.DENSE)
    }
    # The trivial bounds perform badly (paper §4.2).
    if not (overall["f_or_nc"].total_size >= overall["osm_bt"].total_size):
        raise SystemExit('bench gate failed: overall["f_or_nc"].total_size >= overall["osm_bt"].total_size')
    if not (overall["f_and_c"].total_size >= overall["osm_bt"].total_size):
        raise SystemExit('bench gate failed: overall["f_and_c"].total_size >= overall["osm_bt"].total_size')
    # The lower bound never exceeds min.
    if not (overall["low_bd"].total_size <= overall["min"].total_size):
        raise SystemExit('bench gate failed: overall["low_bd"].total_size <= overall["min"].total_size')
    # Sparse bucket: no-new-vars variants beat their plain counterparts.
    if not (sparse["restrict"].total_size <= sparse["constrain"].total_size):
        raise SystemExit('bench gate failed: sparse["restrict"].total_size <= sparse["constrain"].total_size')
    if not (sparse["osm_nv"].total_size <= sparse["osm_td"].total_size):
        raise SystemExit('bench gate failed: sparse["osm_nv"].total_size <= sparse["osm_td"].total_size')
    if not (sparse["osm_bt"].total_size <= sparse["osm_cp"].total_size):
        raise SystemExit('bench gate failed: sparse["osm_bt"].total_size <= sparse["osm_cp"].total_size')
    # Dense bucket: opt_lv is never out-performed (rank 1).
    if not (dense["opt_lv"].rank == 1):
        raise SystemExit('bench gate failed: dense["opt_lv"].rank == 1')
    # opt_lv is the most expensive heuristic (runtime ordering).
    slowest = max(
        (row for row in overall.values() if row.rank is not None),
        key=lambda row: row.runtime,
    )
    if not (slowest.name == "opt_lv"):
        raise SystemExit('bench gate failed: slowest.name == "opt_lv"')
