"""Ablation: window_size / stop_top_down for the §3.4 scheduler.

"Experimental verification of what values work well for window_size
and stop_top_down remains" — this bench runs that sweep, with and
without the expensive level-matching steps the paper suggests skipping
when runtime matters.
"""

import pytest

from repro.core.schedule import Schedule, scheduled_minimize


def _total_size(calls, schedule):
    total = 0
    for record in calls:
        manager = record.manager
        for call in record.calls:
            manager.clear_caches()
            cover = scheduled_minimize(manager, call.f, call.c, schedule)
            total += manager.size(cover)
    return total


@pytest.mark.parametrize("window_size", [1, 2, 4])
@pytest.mark.parametrize("stop_top_down", [0, 4])
def test_schedule_sweep(benchmark, quick_calls, window_size, stop_top_down):
    schedule = Schedule(
        window_size=window_size, stop_top_down=stop_top_down
    )
    total = benchmark.pedantic(
        _total_size, args=(quick_calls, schedule), rounds=1, iterations=1
    )
    if not (total > 0):
        raise SystemExit('bench gate failed: total > 0')


@pytest.mark.parametrize("use_level_steps", [False, True])
def test_schedule_level_steps_cost(benchmark, quick_calls, use_level_steps):
    """Steps 4-5 are the expensive ones (§3.4's runtime/quality trade)."""
    schedule = Schedule(window_size=2, use_level_steps=use_level_steps)
    total = benchmark.pedantic(
        _total_size, args=(quick_calls, schedule), rounds=1, iterations=1
    )
    if not (total > 0):
        raise SystemExit('bench gate failed: total > 0')
