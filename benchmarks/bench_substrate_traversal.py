"""Substrate bench: FSM traversal cost across image-computation methods.

Times full reachability with the monolithic relation, the clustered
relation (early quantification), and the Coudert-Madre constrain-range
method, on representative machines.  The constrain-range method is the
one the paper's application used; on machines with many latches the
clustered relation usually wins.
"""

import pytest

from repro.bdd.manager import Manager
from repro.fsm.machine import compile_fsm
from repro.fsm.image import (
    image_by_clustered_relation,
    image_by_constrain_range,
    image_by_relation,
)
from repro.fsm.reachability import reachable_states
from repro.circuits.suite import benchmark_spec

MACHINES = ("tlc", "s386", "minmax5", "cbp.32.4", "s344")
METHODS = {
    "monolithic": image_by_relation,
    "clustered": image_by_clustered_relation,
    "constrain_range": image_by_constrain_range,
}


@pytest.mark.parametrize("machine", MACHINES)
@pytest.mark.parametrize("method", sorted(METHODS))
def test_reachability_method(benchmark, machine, method):
    image = METHODS[method]

    def run():
        manager = Manager()
        fsm = compile_fsm(manager, benchmark_spec(machine))
        return reachable_states(fsm, image=image)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    if not (result.iterations > 0):
        raise SystemExit('bench gate failed: result.iterations > 0')


def test_methods_agree_on_state_counts():
    for machine in MACHINES:
        counts = set()
        for method in METHODS.values():
            manager = Manager()
            fsm = compile_fsm(manager, benchmark_spec(machine))
            result = reachable_states(fsm, image=method)
            counts.add(result.state_count(fsm))
        if not (len(counts) == 1):
            raise SystemExit(machine)
