"""Substrate micro-benchmarks: the BDD package operations.

Not a paper exhibit, but the baseline everything else stands on: ITE
throughput, image computation by both methods, and the constrain /
restrict operators on traversal-sized operands.
"""

import pytest

from repro.bdd.manager import Manager
from repro.bdd.truthtable import bdd_from_leaves
from repro.core.sibling import constrain, restrict
from repro.fsm.machine import compile_fsm
from repro.fsm.image import image_by_constrain_range, image_by_relation
from repro.circuits.generators import random_controller

import random


def _random_pair(num_vars=10, seed=3):
    rng = random.Random(seed)
    manager = Manager()
    f = bdd_from_leaves(manager, [rng.random() < 0.5 for _ in range(1 << num_vars)])
    c = bdd_from_leaves(manager, [rng.random() < 0.5 for _ in range(1 << num_vars)])
    return manager, f, c


def test_ite_throughput(benchmark):
    manager, f, c = _random_pair()

    def run():
        manager.clear_caches()
        return manager.ite(f, c, f ^ 1)

    benchmark(run)


def test_constrain_throughput(benchmark):
    manager, f, c = _random_pair()

    def run():
        manager.clear_caches()
        return constrain(manager, f, c)

    benchmark(run)


def test_restrict_throughput(benchmark):
    manager, f, c = _random_pair()

    def run():
        manager.clear_caches()
        return restrict(manager, f, c)

    benchmark(run)


@pytest.mark.parametrize(
    "method", [image_by_relation, image_by_constrain_range], ids=["relation", "range"]
)
def test_image_methods(benchmark, method):
    manager = Manager()
    fsm = compile_fsm(
        manager, random_controller(17, state_bits=6, input_bits=4)
    )
    states = fsm.init_cube
    # Grow a non-trivial state set first.
    for _ in range(2):
        states = manager.or_(states, image_by_relation(fsm, states))

    def run():
        manager.clear_caches()
        fsm._relation = None  # rebuild the relation each round
        return method(fsm, states)

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_quantification(benchmark):
    manager, f, c = _random_pair(num_vars=12, seed=9)
    levels = list(range(0, 12, 2))

    def run():
        manager.clear_caches()
        return manager.exists(manager.and_(f, c), levels)

    benchmark(run)
