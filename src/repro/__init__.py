"""Reproduction of Shiple et al., "Heuristic Minimization of BDDs Using
Don't Cares" (DAC 1994).

Subpackages
-----------

``repro.bdd``
    A from-scratch ROBDD package with complement edges (the substrate).
``repro.core``
    The paper's contribution: matching criteria, sibling- and
    level-matching heuristics, scheduling, lower bounds, exact EBM.
``repro.fsm``
    Netlists, BLIF, FSMs, image computation and the FSM-equivalence
    application that drives the experiments.
``repro.circuits``
    Synthetic benchmark machines standing in for the paper's suite.
``repro.experiments``
    The measurement harness regenerating every table and figure.
``repro.analysis``
    Codebase-specific lint pass and runtime contract auditing.
``repro.robust``
    Resource budgets, guarded execution with graceful degradation,
    checkpoint/resume for sweeps, deterministic fault injection.
``repro.serve``
    Process-isolated minimization: a worker pool with SIGKILL
    watchdogs and memory rlimits, per-heuristic circuit breakers, and
    the durable BDD wire format of ``repro.bdd.wire``.
``repro.obs``
    Observability: opt-in metrics registry, Chrome-trace-event span
    tracing, and composing step-hook dispatch across all layers.
"""

from repro.bdd import Manager, Function
from repro.core import ISpec, minimize, HEURISTICS

__version__ = "1.0.0"

__all__ = ["Manager", "Function", "ISpec", "minimize", "HEURISTICS", "__version__"]
