"""A minimal BLIF reader/writer (the benchmark interchange format).

Supported subset: ``.model``, ``.inputs``, ``.outputs``, ``.latch``
(short form: ``data_in output [init]``), ``.names`` single-output
covers, ``.end``, ``#`` comments and ``\\`` line continuations.  This is
enough to round-trip every machine in :mod:`repro.circuits` and to read
simple academic benchmark files.

``.names`` semantics follow standard BLIF: each row is an input pattern
over ``{0, 1, -}`` plus an output value; all rows of one table must
share the output value.  Value ``1`` makes the function the OR of the
row cubes; value ``0`` makes it the complement of that OR; an empty
table is constant 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.isop import isop
from repro.fsm.machine import Fsm


@dataclass
class NamesTable:
    """One ``.names`` single-output cover."""

    inputs: Tuple[str, ...]
    output: str
    rows: Tuple[Tuple[str, str], ...]  # (pattern, value)


@dataclass
class BlifModel:
    """Parsed structural content of a ``.model`` section."""

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    latches: List[Tuple[str, str, bool]] = field(default_factory=list)
    tables: List[NamesTable] = field(default_factory=list)


class BlifError(ValueError):
    """Raised on malformed BLIF input."""


def parse_blif(text: str) -> BlifModel:
    """Parse one model from BLIF text."""
    lines = _logical_lines(text)
    model: Optional[BlifModel] = None
    pending_table: Optional[List] = None

    def flush_table() -> None:
        nonlocal pending_table
        if pending_table is not None:
            signals, rows = pending_table
            model.tables.append(
                NamesTable(tuple(signals[:-1]), signals[-1], tuple(rows))
            )
            pending_table = None

    for line in lines:
        tokens = line.split()
        keyword = tokens[0]
        if keyword.startswith("."):
            if keyword != ".names":
                flush_table()
            if keyword == ".model":
                if model is not None:
                    raise BlifError("multiple .model sections")
                model = BlifModel(tokens[1] if len(tokens) > 1 else "top")
            elif model is None:
                raise BlifError("%s before .model" % keyword)
            elif keyword == ".inputs":
                model.inputs.extend(tokens[1:])
            elif keyword == ".outputs":
                model.outputs.extend(tokens[1:])
            elif keyword == ".latch":
                if len(tokens) < 3:
                    raise BlifError("malformed .latch: %r" % line)
                data_in, output = tokens[1], tokens[2]
                init = False
                if len(tokens) > 3:
                    init = tokens[-1] == "1"
                model.latches.append((data_in, output, init))
            elif keyword == ".names":
                flush_table()
                if len(tokens) < 2:
                    raise BlifError("malformed .names: %r" % line)
                pending_table = [tokens[1:], []]
            elif keyword == ".end":
                flush_table()
                break
            else:
                raise BlifError("unsupported construct %r" % keyword)
        else:
            if pending_table is None:
                raise BlifError("cover row outside .names: %r" % line)
            signals, rows = pending_table
            num_inputs = len(signals) - 1
            if num_inputs == 0:
                pattern, value = "", tokens[0]
            else:
                if len(tokens) != 2:
                    raise BlifError("malformed cover row: %r" % line)
                pattern, value = tokens
            if len(pattern) != num_inputs:
                raise BlifError(
                    "pattern %r does not match %d inputs" % (pattern, num_inputs)
                )
            if value not in ("0", "1"):
                raise BlifError("output value must be 0 or 1: %r" % line)
            rows.append((pattern, value))
    if model is None:
        raise BlifError("no .model section found")
    flush_table()
    return model


def _logical_lines(text: str) -> List[str]:
    lines: List[str] = []
    buffer = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        line = (buffer + line).strip()
        buffer = ""
        if line:
            lines.append(line)
    if buffer.strip():
        lines.append(buffer.strip())
    return lines


def compile_blif(manager: Manager, model: BlifModel, prefix: str = "") -> Fsm:
    """Compile a parsed model into a BDD :class:`Fsm`.

    Variables are allocated inputs-first, then latch current/next pairs
    in declaration order.  Tables may appear in any order; they are
    evaluated topologically.
    """
    input_levels = []
    env: Dict[str, int] = {}
    for name in model.inputs:
        ref = manager.new_var(prefix + name)
        env[name] = ref
        input_levels.append(manager.level(ref))
    current_levels, next_levels = [], []
    for _, output, _ in model.latches:
        current = manager.new_var(prefix + output)
        nxt = manager.new_var(prefix + output + "'")
        env[output] = current
        current_levels.append(manager.level(current))
        next_levels.append(manager.level(nxt))
    _evaluate_tables(manager, model, env)
    next_fns = []
    for data_in, _, _ in model.latches:
        if data_in not in env:
            raise BlifError("latch input %r is undefined" % data_in)
        next_fns.append(env[data_in])
    output_fns = {}
    for name in model.outputs:
        if name not in env:
            raise BlifError("output %r is undefined" % name)
        output_fns[name] = env[name]
    return Fsm(
        manager,
        prefix + model.name,
        model.inputs,
        input_levels,
        [output for _, output, _ in model.latches],
        current_levels,
        next_levels,
        next_fns,
        output_fns,
        [init for _, _, init in model.latches],
    )


def _evaluate_tables(
    manager: Manager, model: BlifModel, env: Dict[str, int]
) -> None:
    remaining = list(model.tables)
    progress = True
    while remaining and progress:
        progress = False
        still_remaining = []
        for table in remaining:
            if all(signal in env for signal in table.inputs):
                env[table.output] = _table_to_bdd(manager, table, env)
                progress = True
            else:
                still_remaining.append(table)
        remaining = still_remaining
    if remaining:
        missing = sorted(
            {
                signal
                for table in remaining
                for signal in table.inputs
                if signal not in env
            }
        )
        raise BlifError(
            "combinational cycle or undefined signals: %s" % ", ".join(missing)
        )


def _table_to_bdd(
    manager: Manager, table: NamesTable, env: Dict[str, int]
) -> int:
    union = ZERO
    output_value = None
    for pattern, value in table.rows:
        if output_value is None:
            output_value = value
        elif value != output_value:
            raise BlifError(
                "mixed output values in .names for %r" % table.output
            )
        term = ONE
        for signal, char in zip(table.inputs, pattern):
            if char == "1":
                term = manager.and_(term, env[signal])
            elif char == "0":
                term = manager.and_(term, env[signal] ^ 1)
            elif char != "-":
                raise BlifError("bad pattern character %r" % char)
        union = manager.or_(union, term)
    if output_value == "0":
        return union ^ 1
    return union


def write_blif(fsm: Fsm) -> str:
    """Serialize a compiled machine back to BLIF text.

    Each next-state and output function is written as a ``.names``
    cover computed by the Minato-Morreale ISOP algorithm (an
    irredundant SOP, usually far smaller than raw BDD path cubes).
    """
    manager = fsm.manager
    level_to_signal = {}
    for name, level in zip(fsm.input_names, fsm.input_levels):
        level_to_signal[level] = name
    for name, level in zip(fsm.latch_names, fsm.current_levels):
        level_to_signal[level] = name
    signal_order = fsm.input_names + fsm.latch_names

    lines = [".model %s" % fsm.name]
    if fsm.input_names:
        lines.append(".inputs %s" % " ".join(fsm.input_names))
    if fsm.output_fns:
        lines.append(".outputs %s" % " ".join(sorted(fsm.output_fns)))
    for index, name in enumerate(fsm.latch_names):
        lines.append(
            ".latch %s_next %s %d" % (name, name, int(fsm.init_values[index]))
        )
    for index, name in enumerate(fsm.latch_names):
        lines.extend(
            _cover_lines(
                manager,
                fsm.next_fns[index],
                name + "_next",
                signal_order,
                level_to_signal,
            )
        )
    for name in sorted(fsm.output_fns):
        lines.extend(
            _cover_lines(
                manager,
                fsm.output_fns[name],
                name,
                signal_order,
                level_to_signal,
            )
        )
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _cover_lines(
    manager: Manager,
    ref: int,
    output: str,
    signal_order: Sequence[str],
    level_to_signal: Dict[int, str],
) -> List[str]:
    if ref == ZERO:
        return [".names %s" % output]
    if ref == ONE:
        return [".names %s" % output, "1"]
    support_levels = sorted(manager.support(ref))
    for level in support_levels:
        if level not in level_to_signal:
            raise BlifError(
                "function depends on non-signal variable at level %d" % level
            )
    used = [
        name
        for name in signal_order
        if any(level_to_signal[level] == name for level in support_levels)
    ]
    name_to_position = {name: position for position, name in enumerate(used)}
    lines = [".names %s %s" % (" ".join(used), output)]
    cubes, _ = isop(manager, ref, ref)
    for cube in cubes:
        pattern = ["-"] * len(used)
        for level, value in cube.items():
            pattern[name_to_position[level_to_signal[level]]] = (
                "1" if value else "0"
            )
        lines.append("%s 1" % "".join(pattern))
    return lines
