"""Product machines for FSM equivalence checking.

Two machines over the same primary inputs run in lock-step; they are
equivalent iff on every reachable product state the outputs agree for
every input.  The compiler allocates the shared inputs first, then
*interleaves* the latch variables of the two machines (m1 latch 0,
m2 latch 0, m1 latch 1, ...) — with corresponding latches adjacent the
equivalence invariant ``s1_j ↔ s2_j`` has a linear-size BDD, which is
what makes self-equivalence (the paper's experiment) tractable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bdd.manager import Manager, ONE
from repro.fsm.machine import (
    Fsm,
    FsmSpec,
    _build_functions,
)


class ProductMachine:
    """The synchronous product of two compiled machines.

    ``machine`` is an :class:`Fsm` whose state is the concatenation of
    both machines' states and whose single output ``eq`` asserts that
    all paired outputs agree.  Outputs are paired by name when the
    output name sets coincide, else by position.
    """

    def __init__(self, left: Fsm, right: Fsm):
        if left.manager is not right.manager:
            raise ValueError("product machines must share a manager")
        if left.input_levels != right.input_levels:
            raise ValueError("product machines must share primary inputs")
        manager = left.manager
        self.left = left
        self.right = right
        pairs = self._pair_outputs(left, right)
        self.output_pairs = pairs
        eq = ONE
        for left_ref, right_ref in pairs:
            eq = manager.and_(eq, manager.xnor(left_ref, right_ref))
        self.outputs_equal = eq
        self.machine = Fsm(
            manager,
            "%s*%s" % (left.name, right.name),
            left.input_names,
            left.input_levels,
            [name + ".1" for name in left.latch_names]
            + [name + ".2" for name in right.latch_names],
            left.current_levels + right.current_levels,
            left.next_levels + right.next_levels,
            left.next_fns + right.next_fns,
            {"eq": eq},
            list(left.init_values) + list(right.init_values),
        )

    @staticmethod
    def _pair_outputs(left: Fsm, right: Fsm) -> List[Tuple[int, int]]:
        if set(left.output_fns) == set(right.output_fns):
            return [
                (left.output_fns[name], right.output_fns[name])
                for name in sorted(left.output_fns)
            ]
        left_refs = list(left.output_fns.values())
        right_refs = list(right.output_fns.values())
        if len(left_refs) != len(right_refs):
            raise ValueError(
                "cannot pair outputs: %d vs %d and names differ"
                % (len(left_refs), len(right_refs))
            )
        return list(zip(left_refs, right_refs))


def compile_product(
    manager: Manager, spec_left: FsmSpec, spec_right: FsmSpec
) -> ProductMachine:
    """Compile two specs into one manager with interleaved state vars.

    The specs must declare identical input name tuples (they drive the
    same testbench).  Manager-level names are prefixed ``m1.``/``m2.``;
    expressions keep using local names.
    """
    if spec_left.inputs != spec_right.inputs:
        raise ValueError("product specs must declare the same inputs")
    input_levels = []
    for name in spec_left.inputs:
        ref = manager.new_var("i." + name)
        input_levels.append(manager.level(ref))
    left_current: List[int] = []
    left_next: List[int] = []
    right_current: List[int] = []
    right_next: List[int] = []
    longest = max(len(spec_left.latches), len(spec_right.latches))
    for index in range(longest):
        if index < len(spec_left.latches):
            latch = spec_left.latches[index]
            current = manager.new_var("m1." + latch.name)
            nxt = manager.new_var("m1." + latch.name + "'")
            left_current.append(manager.level(current))
            left_next.append(manager.level(nxt))
        if index < len(spec_right.latches):
            latch = spec_right.latches[index]
            current = manager.new_var("m2." + latch.name)
            nxt = manager.new_var("m2." + latch.name + "'")
            right_current.append(manager.level(current))
            right_next.append(manager.level(nxt))
    left = _build_functions(
        manager, spec_left, "", input_levels, left_current, left_next
    )
    left.name = "m1." + spec_left.name
    right = _build_functions(
        manager, spec_right, "", input_levels, right_current, right_next
    )
    right.name = "m2." + spec_right.name
    return ProductMachine(left, right)
