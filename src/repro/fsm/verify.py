"""Invariant checking and counterexample trace generation.

Builds on the reachability engine to provide the two facilities a user
of an FSM equivalence checker actually wants when the answer is "no":

* :func:`check_invariant` — does a state predicate hold on every
  reachable state?
* full **counterexample traces**: a concrete input sequence driving the
  machine from reset to a violating state, reconstructed by walking the
  breadth-first onion rings backwards with preimages.

The frontier *rings* kept here are the exact sets whose BDDs the
paper's minimization shrinks; trace reconstruction is one of the
consumers that makes small frontier BDDs pay off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.errors import InvariantError
from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.machine import Fsm
from repro.fsm.image import image_by_relation, transition_relation
from repro.fsm.product import ProductMachine

#: One trace step: named input values applied in a named state.
TraceStep = Dict[str, bool]


@dataclass
class Trace:
    """A concrete run from reset to a target state."""

    states: List[Dict[str, bool]] = field(default_factory=list)
    inputs: List[Dict[str, bool]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.inputs)

    def render(self) -> str:
        """Human-readable step-by-step listing."""
        lines = []
        for index, state in enumerate(self.states):
            state_text = " ".join(
                "%s=%d" % (name, value) for name, value in sorted(state.items())
            )
            lines.append("state %d: %s" % (index, state_text))
            if index < len(self.inputs):
                input_text = " ".join(
                    "%s=%d" % (name, value)
                    for name, value in sorted(self.inputs[index].items())
                )
                lines.append("  inputs: %s" % (input_text or "(none)"))
        return "\n".join(lines)


@dataclass
class InvariantResult:
    """Outcome of an invariant check."""

    holds: bool
    iterations: int
    reached: int
    trace: Optional[Trace] = None

    def __bool__(self) -> bool:
        return self.holds


def _state_cube_to_names(fsm: Fsm, cube: Dict[int, bool]) -> Dict[str, bool]:
    manager = fsm.manager
    named = {}
    for name, level in zip(fsm.latch_names, fsm.current_levels):
        named[name] = bool(cube.get(level, False))
    return named


def _pick_state(fsm: Fsm, states: int) -> Dict[int, bool]:
    """A full assignment to the state variables inside ``states``."""
    cube = fsm.manager.pick_cube(states)
    if cube is None:
        raise InvariantError("pick_cube returned None on a non-empty state set")
    full = {}
    for level in fsm.current_levels:
        full[level] = cube.get(level, False)
    return full


def build_trace(fsm: Fsm, rings: List[int], target: int) -> Trace:
    """Reconstruct a run from reset to a state in ``target``.

    ``rings[k]`` must (over-)contain the states reachable in exactly
    ``k`` steps, with ``rings[0]`` the reset state; ``target`` must
    intersect the last ring.  Works backwards: at each step, pick a
    concrete current state, then find an input taking some state of the
    previous ring to it.
    """
    manager = fsm.manager
    relation = transition_relation(fsm)
    goal = manager.and_(rings[-1], target)
    if goal == ZERO:
        raise ValueError("target does not intersect the final ring")
    state = _pick_state(fsm, goal)
    states_named = [
        _state_cube_to_names(fsm, state)
    ]
    inputs_list: List[Dict[str, bool]] = []
    for ring_index in range(len(rings) - 2, -1, -1):
        # Transitions landing exactly on the chosen state.
        landing = manager.restrict_cube(
            relation,
            {
                next_level: state[current_level]
                for current_level, next_level in zip(
                    fsm.current_levels, fsm.next_levels
                )
            },
        )
        candidates = manager.and_(landing, rings[ring_index])
        if candidates == ZERO:
            raise InvariantError(
                "ring %d cannot reach the state" % ring_index
            )
        choice = manager.pick_cube(candidates)
        if choice is None:
            raise InvariantError("no transition cube despite a non-empty ring")
        previous_state = {
            level: choice.get(level, False) for level in fsm.current_levels
        }
        step_inputs = {
            name: bool(choice.get(level, False))
            for name, level in zip(fsm.input_names, fsm.input_levels)
        }
        inputs_list.append(step_inputs)
        states_named.append(_state_cube_to_names(fsm, previous_state))
        state = previous_state
    states_named.reverse()
    inputs_list.reverse()
    return Trace(states=states_named, inputs=inputs_list)


def check_invariant(
    fsm: Fsm,
    invariant: int,
    image=image_by_relation,
    max_iterations: Optional[int] = None,
    minimize=None,
) -> InvariantResult:
    """Does ``invariant`` (a predicate over state vars) hold on R?

    On failure, returns a concrete :class:`Trace` from reset to a
    violating state.  The onion rings are kept un-minimized so traces
    stay exact; ``minimize`` (a heuristic of the registry signature)
    only shrinks the frontier the *image* is taken of — any cover of
    ``[fresh, fresh + ¬reached]`` explores a superset of the fresh
    states, so the reached set stays exact.  The minimizer runs guarded
    (budget trips and contract violations degrade to the exact
    frontier), and if the over-approximated frontiers ever break ring
    adjacency during trace reconstruction, the check silently re-runs
    exactly — minimization can cost time here, never answers.
    """
    manager = fsm.manager
    if minimize is not None:
        from repro.robust.guard import guard

        minimize = guard(minimize)
    rings = [fsm.init_cube]
    reached = fsm.init_cube
    iterations = 0
    while True:
        violating = manager.diff(rings[-1], invariant)
        if violating != ZERO:
            try:
                trace = build_trace(fsm, rings, violating)
            except InvariantError:
                if minimize is None:
                    raise
                # A minimized frontier let a ring state slip in that its
                # predecessor ring cannot reach in one step.  The
                # violation itself is real (rings only contain reachable
                # states); rebuild the trace from exact rings.
                return check_invariant(
                    fsm,
                    invariant,
                    image=image,
                    max_iterations=max_iterations,
                )
            return InvariantResult(False, iterations, reached, trace)
        if max_iterations is not None and iterations >= max_iterations:
            return InvariantResult(True, iterations, reached, None)
        iterations += 1
        frontier = rings[-1]
        if minimize is not None:
            care = manager.or_(frontier, reached ^ 1)
            frontier = minimize(manager, frontier, care)
        successors = image(fsm, frontier)
        fresh = manager.diff(successors, reached)
        if fresh == ZERO:
            return InvariantResult(True, iterations, reached, None)
        reached = manager.or_(reached, fresh)
        rings.append(fresh)


def equivalence_counterexample_trace(
    product: ProductMachine,
    max_iterations: Optional[int] = None,
    minimize=None,
) -> Optional[Trace]:
    """A concrete distinguishing run for two inequivalent machines.

    Returns None when the machines are equivalent.  The trace ends in a
    product state where some input makes the paired outputs differ; the
    distinguishing input is appended as the final entry of
    ``trace.inputs``.
    """
    machine = product.machine
    manager = machine.manager
    outputs_agree = manager.forall(
        product.outputs_equal, machine.input_levels
    )
    result = check_invariant(
        machine,
        outputs_agree,
        max_iterations=max_iterations,
        minimize=minimize,
    )
    if result.holds:
        return None
    trace = result.trace
    if trace is None:
        raise InvariantError("failed invariant check carries no trace")
    # Find the distinguishing input at the violating state.
    final_state = trace.states[-1]
    assignment = {
        level: final_state[name]
        for name, level in zip(machine.latch_names, machine.current_levels)
    }
    disagreement = manager.restrict_cube(
        product.outputs_equal ^ 1, assignment
    )
    witness = manager.pick_cube(disagreement)
    if witness is None:
        raise InvariantError(
            "no distinguishing input at the violating state"
        )
    trace.inputs.append(
        {
            name: bool(witness.get(level, False))
            for name, level in zip(machine.input_names, machine.input_levels)
        }
    )
    return trace
