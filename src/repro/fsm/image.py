"""Image computation for BDD-encoded FSMs.

Two interchangeable methods:

* :func:`image_by_relation` — build the monolithic transition relation
  ``T(s, w, s') = ∏_j (s'_j ↔ δ_j(s, w))`` once (cached on the Fsm) and
  compute ``Img(S) = (∃ s, w . S·T)[s' := s]`` with an interleaved
  and-exists.
* :func:`image_by_constrain_range` — the Coudert–Berthet–Madre method
  the paper's application actually used: constrain each next-state
  function by the current state set, then compute the *range* of the
  resulting function vector by recursive output splitting.  This relies
  on the special property of constrain noted in the paper's footnote 1
  (a cover produced by an arbitrary minimizer would give a wrong image,
  which is why the experimental harness must return constrain's result
  to the traversal even while measuring other heuristics).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.sibling import constrain
from repro.fsm.machine import Fsm


def transition_relation(fsm: Fsm) -> int:
    """The monolithic transition relation, cached on the machine."""
    if fsm._relation is None:
        manager = fsm.manager
        relation = ONE
        # Conjoin deepest-variable functions first: partial products
        # stay smaller when the constrained variables are adjacent.
        for index in range(fsm.num_latches - 1, -1, -1):
            clause = manager.xnor(fsm.next_var(index), fsm.next_fns[index])
            relation = manager.and_(relation, clause)
        fsm._relation = relation
    return fsm._relation


def image_by_relation(fsm: Fsm, states: int) -> int:
    """``Img(S)`` over current-state variables, via the relation."""
    manager = fsm.manager
    relation = transition_relation(fsm)
    quantified = manager.and_exists(
        states, relation, fsm.input_levels + fsm.current_levels
    )
    return fsm.rename_next_to_current(quantified)


def preimage_by_relation(fsm: Fsm, states: int) -> int:
    """States with a one-step successor inside ``states``."""
    manager = fsm.manager
    relation = transition_relation(fsm)
    primed = fsm.rename_current_to_next(states)
    return manager.and_exists(
        primed, relation, fsm.input_levels + fsm.next_levels
    )


def image_by_clustered_relation(
    fsm: Fsm, states: int, cluster_size: int = 500
) -> int:
    """``Img(S)`` via a partitioned relation with early quantification.

    The monolithic relation can blow up even when every per-latch
    conjunct ``s'_j ↔ δ_j`` is small.  Clustering conjoins clauses
    (deepest next-state variable first) until a cluster's BDD exceeds
    ``cluster_size`` nodes, then quantifies each current-state/input
    variable as soon as no later cluster mentions it — the classic
    early-quantification schedule.
    """
    manager = fsm.manager
    if states == ZERO:
        return ZERO
    clusters = fsm.__dict__.setdefault("_clusters", {}).get(cluster_size)
    if clusters is None:
        clauses = [
            manager.xnor(fsm.next_var(index), fsm.next_fns[index])
            for index in range(fsm.num_latches - 1, -1, -1)
        ]
        clusters = []
        accumulated = ONE
        for clause in clauses:
            candidate = manager.and_(accumulated, clause)
            if (
                accumulated != ONE
                and manager.size(candidate) > cluster_size
            ):
                clusters.append(accumulated)
                accumulated = clause
            else:
                accumulated = candidate
        clusters.append(accumulated)
        fsm.__dict__["_clusters"][cluster_size] = clusters
    quantifiable = set(fsm.input_levels) | set(fsm.current_levels)
    later_supports = []
    running: set = set()
    for cluster in reversed(clusters):
        later_supports.append(set(running))
        running |= manager.support(cluster)
    later_supports.reverse()
    result = states
    for cluster, later in zip(clusters, later_supports):
        retire_now = (
            quantifiable
            & (manager.support(result) | manager.support(cluster))
        ) - later
        result = manager.and_exists(result, cluster, retire_now)
    leftovers = quantifiable & manager.support(result)
    if leftovers:
        result = manager.exists(result, leftovers)
    return fsm.rename_next_to_current(result)


def image_by_constrain_range(fsm: Fsm, states: int, constrain_hook=None) -> int:
    """``Img(S)`` as the range of the constrained next-state vector.

    ``Range([δ_1|S, ..., δ_k|S])`` is computed by the classic recursive
    output-splitting method: pick the first non-constant component f,
    then ``Range = y·Range(rest|f) + ¬y·Range(rest|¬f)`` where ``|`` is
    the constrain operator — correct *because* constrain reduces a
    vector image to a range (footnote 1 of the paper).

    ``constrain_hook(manager, f, c)`` observes every top-level
    ``constrain(δ_j, S)`` call — these are the minimization instances
    with *sparse* care sets that dominate the paper's experimental data
    (the care set is the state set S, a sliver of the whole space).
    The traversal itself always continues with constrain's result,
    since an arbitrary cover would compute a wrong image.
    """
    manager = fsm.manager
    if states == ZERO:
        return ZERO
    if constrain_hook is not None:
        for next_fn in fsm.next_fns:
            constrain_hook(manager, next_fn, states)
    constrained = tuple(
        constrain(manager, next_fn, states) for next_fn in fsm.next_fns
    )
    cache: Dict[Tuple[int, ...], int] = {}
    result = _range_of_vector(
        manager, constrained, fsm.current_levels, 0, cache
    )
    return result


def _range_of_vector(
    manager: Manager,
    vector: Tuple[int, ...],
    output_levels: Sequence[int],
    position: int,
    cache: Dict[Tuple[int, ...], int],
) -> int:
    if position == len(vector):
        return ONE
    key = vector[position:]
    cached = cache.get(key)
    if cached is not None:
        return cached
    component = vector[position]
    output = manager.var(output_levels[position])
    if component == ONE:
        result = manager.and_(
            output,
            _range_of_vector(manager, vector, output_levels, position + 1, cache),
        )
    elif component == ZERO:
        result = manager.and_(
            output ^ 1,
            _range_of_vector(manager, vector, output_levels, position + 1, cache),
        )
    else:
        rest = vector[position + 1 :]
        on_true = tuple(
            constrain(manager, entry, component) for entry in rest
        )
        on_false = tuple(
            constrain(manager, entry, component ^ 1) for entry in rest
        )
        positive = _range_of_vector(
            manager, vector[: position + 1] + on_true, output_levels, position + 1, cache
        )
        negative = _range_of_vector(
            manager, vector[: position + 1] + on_false, output_levels, position + 1, cache
        )
        result = manager.or_(
            manager.and_(output, positive),
            manager.and_(output ^ 1, negative),
        )
    cache[key] = result
    return result
