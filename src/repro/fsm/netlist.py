"""Combinational gate-level netlists evaluated to BDDs.

A :class:`Netlist` is a DAG of named signals: primary inputs plus gates
over earlier signals.  ``to_bdds`` evaluates every signal symbolically
given BDD refs for the inputs — the standard way a logic-synthesis
system builds the BDDs of a circuit's next-state and output functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import Manager, ONE, ZERO

#: Supported gate operators and their arities (None = any arity >= 1).
GATE_ARITY = {
    "AND": None,
    "OR": None,
    "NAND": None,
    "NOR": None,
    "XOR": None,
    "XNOR": None,
    "NOT": 1,
    "BUF": 1,
    "MUX": 3,  # MUX(select, then, else)
    "CONST0": 0,
    "CONST1": 0,
}


@dataclass
class Gate:
    """One gate: ``output = op(fanins...)``."""

    output: str
    op: str
    fanins: Tuple[str, ...]


class Netlist:
    """A combinational netlist with named signals."""

    def __init__(self, name: str = "netlist"):
        self.name = name
        self.inputs: List[str] = []
        self.gates: List[Gate] = []
        self._defined: Dict[str, str] = {}

    def add_input(self, name: str) -> str:
        """Declare a primary input signal."""
        self._declare(name, "input")
        self.inputs.append(name)
        return name

    def add_gate(self, output: str, op: str, fanins: Sequence[str]) -> str:
        """Add a gate; fanins must already be defined (the DAG rule)."""
        op = op.upper()
        arity = GATE_ARITY.get(op)
        if op not in GATE_ARITY:
            raise ValueError("unknown gate operator %r" % op)
        if arity is not None and len(fanins) != arity:
            raise ValueError(
                "%s takes %d fanins, got %d" % (op, arity, len(fanins))
            )
        if arity is None and not fanins:
            raise ValueError("%s needs at least one fanin" % op)
        for fanin in fanins:
            if fanin not in self._defined:
                raise ValueError("fanin %r is not defined yet" % fanin)
        self._declare(output, "gate")
        self.gates.append(Gate(output, op, tuple(fanins)))
        return output

    def _declare(self, name: str, kind: str) -> None:
        if name in self._defined:
            raise ValueError(
                "signal %r already defined as %s" % (name, self._defined[name])
            )
        self._defined[name] = kind

    @property
    def signals(self) -> List[str]:
        """All defined signal names, inputs first, in definition order."""
        return self.inputs + [gate.output for gate in self.gates]

    def to_bdds(
        self,
        manager: Manager,
        input_refs: Dict[str, int],
        overrides: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Evaluate every signal to a BDD ref.

        ``input_refs`` supplies a ref for each primary input (typically
        a fresh variable, but any function works — that is how latches
        feed state variables into next-state logic).  ``overrides``
        forces internal signals to given refs instead of their gate
        functions — the device observability analysis uses to cut a
        signal and replace it with a free variable.
        """
        if overrides is None:
            overrides = {}
        values: Dict[str, int] = {}
        for name in self.inputs:
            if name not in input_refs:
                raise KeyError("no ref supplied for input %r" % name)
            values[name] = overrides.get(name, input_refs[name])
        for gate in self.gates:
            if gate.output in overrides:
                values[gate.output] = overrides[gate.output]
                continue
            args = [values[fanin] for fanin in gate.fanins]
            values[gate.output] = _apply_gate(manager, gate.op, args)
        return values


def _apply_gate(manager: Manager, op: str, args: List[int]) -> int:
    if op == "AND":
        return manager.and_many(args)
    if op == "OR":
        return manager.or_many(args)
    if op == "NAND":
        return manager.and_many(args) ^ 1
    if op == "NOR":
        return manager.or_many(args) ^ 1
    if op == "XOR":
        result = ZERO
        for arg in args:
            result = manager.xor(result, arg)
        return result
    if op == "XNOR":
        result = ZERO
        for arg in args:
            result = manager.xor(result, arg)
        return result ^ 1
    if op == "NOT":
        return args[0] ^ 1
    if op == "BUF":
        return args[0]
    if op == "MUX":
        return manager.ite(args[0], args[1], args[2])
    if op == "CONST0":
        return ZERO
    if op == "CONST1":
        return ONE
    raise ValueError("unknown gate operator %r" % op)
