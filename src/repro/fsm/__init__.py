"""Finite state machines over BDDs — the paper's application substrate.

The experiments in the paper intercept BDD minimization calls made by
the SIS command ``verify_fsm -m product`` while it checks equivalence of
two FSMs by breadth-first traversal of their product machine (Coudert,
Berthet, Madre; Touati et al.).  This package rebuilds that stack:

* :mod:`~repro.fsm.netlist` — combinational gate-level netlists.
* :mod:`~repro.fsm.blif` — a minimal BLIF subset reader/writer.
* :mod:`~repro.fsm.machine` — declarative :class:`FsmSpec` and the
  compiled BDD :class:`Fsm` (interleaved current/next state variables).
* :mod:`~repro.fsm.image` — image computation, both by transition
  relation and by Coudert–Madre range-of-constrained-functions (the
  "special property" of constrain from the paper's footnote 1).
* :mod:`~repro.fsm.reachability` — breadth-first reachability with
  frontier-set minimization and the product-machine equivalence check,
  with an interception hook for the experiment harness.
"""

from repro.fsm.netlist import Netlist
from repro.fsm.machine import FsmSpec, LatchSpec, OutputSpec, Fsm, compile_fsm
from repro.fsm.product import compile_product, ProductMachine
from repro.fsm.image import (
    transition_relation,
    image_by_relation,
    image_by_clustered_relation,
    image_by_constrain_range,
)
from repro.fsm.optimize import (
    LogicMinimizationReport,
    minimize_fsm_logic,
    sequentially_equivalent,
)
from repro.fsm.reachability import (
    ReachabilityResult,
    EquivalenceResult,
    reachable_states,
    check_equivalence,
)
from repro.fsm.blif import parse_blif, compile_blif, write_blif
from repro.fsm.verify import (
    Trace,
    InvariantResult,
    check_invariant,
    build_trace,
    equivalence_counterexample_trace,
)

__all__ = [
    "Netlist",
    "FsmSpec",
    "LatchSpec",
    "OutputSpec",
    "Fsm",
    "compile_fsm",
    "compile_product",
    "ProductMachine",
    "transition_relation",
    "image_by_relation",
    "image_by_clustered_relation",
    "image_by_constrain_range",
    "LogicMinimizationReport",
    "minimize_fsm_logic",
    "sequentially_equivalent",
    "ReachabilityResult",
    "EquivalenceResult",
    "reachable_states",
    "check_equivalence",
    "parse_blif",
    "compile_blif",
    "write_blif",
    "Trace",
    "InvariantResult",
    "check_invariant",
    "build_trace",
    "equivalence_counterexample_trace",
]
