"""Declarative FSM specifications and their compiled BDD form.

A :class:`FsmSpec` is manager-independent: named inputs, latches with
reset values and next-state functions, and named outputs.  Next-state
and output functions are given either as expression strings (parsed by
:mod:`repro.bdd.parser` against the machine's signals) or as Python
callables receiving a ``{name: Function}`` environment — convenient for
generated arithmetic circuits.

Compilation allocates BDD variables in an order that keeps image
computation cheap: primary inputs first, then for each latch its
current-state and next-state variable adjacently.  For product machines
(:mod:`repro.fsm.product`) the latches of the two machines are
interleaved, the standard ordering for equivalence checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.function import Function
from repro.bdd.parser import parse_expression

#: A logic function in a spec: expression string or env -> Function.
SpecFn = Union[str, Callable[[Dict[str, Function]], Function]]


@dataclass(frozen=True)
class LatchSpec:
    """One state element: reset value and next-state function."""

    name: str
    next: SpecFn
    init: bool = False


@dataclass(frozen=True)
class OutputSpec:
    """One named primary output."""

    name: str
    fn: SpecFn


@dataclass(frozen=True)
class FsmSpec:
    """A manager-independent FSM description."""

    name: str
    inputs: Tuple[str, ...]
    latches: Tuple[LatchSpec, ...]
    outputs: Tuple[OutputSpec, ...]

    def __post_init__(self) -> None:
        names = list(self.inputs) + [latch.name for latch in self.latches]
        if len(names) != len(set(names)):
            raise ValueError("duplicate signal names in FSM spec")
        output_names = [output.name for output in self.outputs]
        if len(output_names) != len(set(output_names)):
            raise ValueError("duplicate output names in FSM spec")

    @property
    def num_state_bits(self) -> int:
        return len(self.latches)


def _compile_fn(
    manager: Manager, fn: SpecFn, env_refs: Dict[str, int]
) -> int:
    """Evaluate a spec function to a BDD ref against named signals."""
    if isinstance(fn, str):
        return parse_expression(manager, fn, env=env_refs)
    env = {name: Function(manager, ref) for name, ref in env_refs.items()}
    result = fn(env)
    if not isinstance(result, Function):
        raise TypeError(
            "FSM callable must return a Function, got %r" % type(result)
        )
    if result.manager is not manager:
        raise ValueError("FSM callable returned a foreign-manager Function")
    return result.ref


class Fsm:
    """A compiled FSM: every function is a BDD ref in one manager.

    Attributes
    ----------
    input_levels / current_levels / next_levels:
        Variable levels of the primary inputs, current-state and
        next-state variables (index-aligned with ``latch_names``).
    next_fns:
        Next-state functions over input and current-state variables.
    output_fns:
        ``{name: ref}`` output functions over the same support.
    init_cube:
        BDD of the single reset state (over current-state variables).
    """

    def __init__(
        self,
        manager: Manager,
        name: str,
        input_names: Sequence[str],
        input_levels: Sequence[int],
        latch_names: Sequence[str],
        current_levels: Sequence[int],
        next_levels: Sequence[int],
        next_fns: Sequence[int],
        output_fns: Dict[str, int],
        init_values: Sequence[bool],
    ):
        self.manager = manager
        self.name = name
        self.input_names = list(input_names)
        self.input_levels = list(input_levels)
        self.latch_names = list(latch_names)
        self.current_levels = list(current_levels)
        self.next_levels = list(next_levels)
        self.next_fns = list(next_fns)
        self.output_fns = dict(output_fns)
        self.init_values = tuple(bool(value) for value in init_values)
        self.init_cube = manager.cube_ref(
            dict(zip(self.current_levels, self.init_values))
        )
        self._relation: Optional[int] = None

    @property
    def num_latches(self) -> int:
        return len(self.latch_names)

    @property
    def num_inputs(self) -> int:
        return len(self.input_names)

    def current_var(self, index: int) -> int:
        """Ref of the index-th current-state variable."""
        return self.manager.var(self.current_levels[index])

    def next_var(self, index: int) -> int:
        """Ref of the index-th next-state variable."""
        return self.manager.var(self.next_levels[index])

    def rename_next_to_current(self, ref: int) -> int:
        """Substitute current-state for next-state variables."""
        return self.manager.rename(
            ref, dict(zip(self.next_levels, self.current_levels))
        )

    def rename_current_to_next(self, ref: int) -> int:
        """Substitute next-state for current-state variables."""
        return self.manager.rename(
            ref, dict(zip(self.current_levels, self.next_levels))
        )

    def simulate(
        self, input_sequence: Sequence[Dict[str, bool]]
    ) -> List[Dict[str, bool]]:
        """Explicit-state simulation from reset; returns output traces.

        Mostly used by tests to cross-validate the symbolic machinery.
        """
        state = {
            level: value
            for level, value in zip(self.current_levels, self.init_values)
        }
        trace = []
        for step_inputs in input_sequence:
            assignment = dict(state)
            for name, value in step_inputs.items():
                try:
                    position = self.input_names.index(name)
                except ValueError:
                    raise KeyError(
                        "unknown input %r (machine inputs: %s)"
                        % (name, ", ".join(self.input_names))
                    ) from None
                assignment[self.input_levels[position]] = bool(value)
            outputs = {
                name: self.manager.eval(ref, assignment)
                for name, ref in self.output_fns.items()
            }
            trace.append(outputs)
            state = {
                level: self.manager.eval(next_fn, assignment)
                for level, next_fn in zip(self.current_levels, self.next_fns)
            }
        return trace

    def __repr__(self) -> str:
        return "<Fsm %s: %d inputs, %d latches, %d outputs>" % (
            self.name,
            self.num_inputs,
            self.num_latches,
            len(self.output_fns),
        )


def compile_fsm(
    manager: Manager, spec: FsmSpec, prefix: str = ""
) -> Fsm:
    """Compile a spec: allocate variables and build every function.

    ``prefix`` namespaces the manager-level variable names (used by the
    product compiler); expressions always use the spec's local names.
    """
    input_levels = _allocate_inputs(manager, spec, prefix)
    current_levels, next_levels = _allocate_latches(manager, spec, prefix)
    return _build_functions(
        manager, spec, prefix, input_levels, current_levels, next_levels
    )


def _allocate_inputs(
    manager: Manager, spec: FsmSpec, prefix: str
) -> List[int]:
    levels = []
    for name in spec.inputs:
        ref = manager.new_var(prefix + name)
        levels.append(manager.level(ref))
    return levels


def _allocate_latches(
    manager: Manager, spec: FsmSpec, prefix: str
) -> Tuple[List[int], List[int]]:
    current_levels, next_levels = [], []
    for latch in spec.latches:
        current = manager.new_var(prefix + latch.name)
        nxt = manager.new_var(prefix + latch.name + "'")
        current_levels.append(manager.level(current))
        next_levels.append(manager.level(nxt))
    return current_levels, next_levels


def _build_functions(
    manager: Manager,
    spec: FsmSpec,
    prefix: str,
    input_levels: Sequence[int],
    current_levels: Sequence[int],
    next_levels: Sequence[int],
) -> Fsm:
    env_refs: Dict[str, int] = {}
    for name, level in zip(spec.inputs, input_levels):
        env_refs[name] = manager.var(level)
    for latch, level in zip(spec.latches, current_levels):
        env_refs[latch.name] = manager.var(level)
    next_fns = [
        _compile_fn(manager, latch.next, env_refs) for latch in spec.latches
    ]
    output_fns = {
        output.name: _compile_fn(manager, output.fn, env_refs)
        for output in spec.outputs
    }
    return Fsm(
        manager,
        (prefix + spec.name) if prefix else spec.name,
        spec.inputs,
        input_levels,
        [latch.name for latch in spec.latches],
        current_levels,
        next_levels,
        next_fns,
        output_fns,
        [latch.init for latch in spec.latches],
    )
