"""Breadth-first reachability and FSM equivalence checking.

This is the application the paper instruments (SIS ``verify_fsm -m
product``).  At each BFS iteration the new frontier ``U`` may be
replaced by any set ``S`` with ``U ⊆ S ⊆ R`` (re-exploring reached
states is harmless), i.e. by any cover of the incompletely specified
function ``[f = U, c = U + ¬R]`` — the minimization instance of the
paper's introduction.  A ``minimize`` hook receives every such instance;
the experiment harness intercepts it to record the calls, exactly as
the paper intercepts SIS's calls to constrain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.sibling import constrain
from repro.fsm.machine import Fsm
from repro.fsm.image import image_by_relation, image_by_constrain_range
from repro.fsm.product import ProductMachine

#: Hook signature: (manager, f, c) -> cover of [f, c].
Minimizer = Callable[[Manager, int, int], int]

#: Image method signature.
ImageFn = Callable[[Fsm, int], int]


@dataclass
class ReachabilityResult:
    """Outcome of a breadth-first traversal."""

    reached: int
    iterations: int
    frontier_sizes: List[int] = field(default_factory=list)
    minimized_sizes: List[int] = field(default_factory=list)

    def state_count(self, fsm: Fsm) -> int:
        """Number of reachable states (over the state variables)."""
        manager = fsm.manager
        total_vars = manager.num_vars
        count = manager.sat_count(self.reached, total_vars)
        irrelevant = total_vars - len(fsm.current_levels)
        return count >> irrelevant


def reachable_states(
    fsm: Fsm,
    minimize: Optional[Minimizer] = None,
    image: ImageFn = image_by_relation,
    max_iterations: Optional[int] = None,
) -> ReachabilityResult:
    """All states reachable from reset, with frontier minimization.

    ``minimize`` receives ``(manager, U, U + ¬R)`` for each non-empty
    new frontier ``U`` and must return a cover (``U ⊆ S ⊆ R``); it
    defaults to the constrain operator, matching the SIS behaviour the
    paper instruments.  A caller-supplied minimizer runs guarded: on a
    budget trip or contract violation the frontier degrades to the
    exact new-state set and the traversal stays exact.
    """
    if minimize is None:
        minimize = constrain
    else:
        from repro.robust.guard import guard

        minimize = guard(minimize)
    manager = fsm.manager
    reached = fsm.init_cube
    frontier = fsm.init_cube
    frontier_sizes = [manager.size(frontier)]
    minimized_sizes = [manager.size(frontier)]
    iterations = 0
    while frontier != ZERO:
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1
        successors = image(fsm, frontier)
        new_states = manager.diff(successors, reached)
        reached = manager.or_(reached, successors)
        if new_states == ZERO:
            break
        care = manager.or_(new_states, reached ^ 1)
        frontier = minimize(manager, new_states, care)
        _check_frontier(manager, frontier, new_states, reached, minimize)
        frontier_sizes.append(manager.size(new_states))
        minimized_sizes.append(manager.size(frontier))
    return ReachabilityResult(
        reached, iterations, frontier_sizes, minimized_sizes
    )


def _check_frontier(
    manager: Manager, frontier: int, new_states: int, reached: int, minimize
) -> None:
    if not manager.leq(new_states, frontier) or not manager.leq(
        frontier, reached
    ):
        raise ValueError(
            "minimizer %r returned a non-cover: frontier must satisfy "
            "U <= S <= R" % (getattr(minimize, "__name__", minimize),)
        )


@dataclass
class EquivalenceResult:
    """Outcome of a product-machine equivalence check."""

    equivalent: bool
    iterations: int
    reached: int
    counterexample: Optional[dict] = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    product: ProductMachine,
    minimize: Optional[Minimizer] = None,
    image: ImageFn = image_by_relation,
    max_iterations: Optional[int] = None,
) -> EquivalenceResult:
    """``verify_fsm -m product``: BFS over the product machine.

    At every frontier, verify the outputs agree for all inputs; on
    failure return a counterexample product state.  The ``minimize``
    hook sees the same ``[U, U + ¬R]`` instances as in
    :func:`reachable_states`, and likewise runs guarded.
    """
    if minimize is None:
        minimize = constrain
    else:
        from repro.robust.guard import guard

        minimize = guard(minimize)
    machine = product.machine
    manager = machine.manager
    outputs_agree = manager.forall(
        product.outputs_equal, machine.input_levels
    )
    reached = machine.init_cube
    frontier = machine.init_cube
    iterations = 0
    while frontier != ZERO:
        violating = manager.diff(frontier, outputs_agree)
        if violating != ZERO:
            cube = manager.pick_cube(violating)
            named = {
                manager.name_of_level(level): value
                for level, value in cube.items()
            }
            return EquivalenceResult(False, iterations, reached, named)
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1
        successors = image(machine, frontier)
        new_states = manager.diff(successors, reached)
        reached = manager.or_(reached, successors)
        if new_states == ZERO:
            break
        care = manager.or_(new_states, reached ^ 1)
        frontier = minimize(manager, new_states, care)
        _check_frontier(manager, frontier, new_states, reached, minimize)
    return EquivalenceResult(True, iterations, reached, None)
