"""Sequential logic optimization with unreachable-state don't cares.

The paper's introduction names two FSM applications of BDD
minimization: shrinking frontier sets during traversal (handled in
:mod:`repro.fsm.reachability`) and "minimizing the transition relation
of an FSM with respect to the unreachable states".  This module makes
the latter a first-class operation: once the reachable set ``R`` is
known, every next-state and output function only needs to be correct
for states in ``R`` — the rest is a don't-care set the heuristics can
spend.

The result is a new machine that is *sequentially equivalent* to the
original (same behaviour from reset) but whose function BDDs are
smaller; :func:`minimize_fsm_logic` guards every replacement with the
Proposition 6 remedy, so no function ever grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.bdd.manager import Manager, ZERO
from repro.core.registry import get_heuristic
from repro.fsm.machine import Fsm
from repro.fsm.reachability import reachable_states


@dataclass
class LogicMinimizationReport:
    """Size accounting for one machine optimization."""

    machine: Fsm
    reachable_fraction: float
    next_before: int
    next_after: int
    outputs_before: int
    outputs_after: int

    @property
    def total_before(self) -> int:
        return self.next_before + self.outputs_before

    @property
    def total_after(self) -> int:
        return self.next_after + self.outputs_after

    @property
    def reduction(self) -> float:
        if not self.total_after:
            return 1.0
        return self.total_before / self.total_after


def minimize_fsm_logic(
    fsm: Fsm,
    method: str = "restrict",
    reached: Optional[int] = None,
) -> LogicMinimizationReport:
    """Minimize every next-state and output function against ``¬R``.

    ``reached`` may be supplied (e.g. from a previous traversal);
    otherwise it is computed.  Returns a report wrapping a **new**
    :class:`Fsm` that shares the manager and variables but carries the
    minimized functions.  Each function is individually guarded so it
    never grows (Proposition 6).
    """
    manager = fsm.manager
    if reached is None:
        reached = reachable_states(fsm).reached
    heuristic = get_heuristic(method)

    def shrink(ref: int) -> int:
        cover = heuristic(manager, ref, reached)
        if manager.size(cover) < manager.size(ref):
            return cover
        return ref

    new_next = [shrink(ref) for ref in fsm.next_fns]
    new_outputs = {name: shrink(ref) for name, ref in fsm.output_fns.items()}
    optimized = Fsm(
        manager,
        fsm.name + ".opt",
        fsm.input_names,
        fsm.input_levels,
        fsm.latch_names,
        fsm.current_levels,
        fsm.next_levels,
        new_next,
        new_outputs,
        fsm.init_values,
    )
    state_bits = len(fsm.current_levels)
    total_vars = manager.num_vars
    reachable_count = manager.sat_count(reached, total_vars) >> (
        total_vars - state_bits
    )
    return LogicMinimizationReport(
        machine=optimized,
        reachable_fraction=reachable_count / (1 << state_bits),
        next_before=manager.size_multi(fsm.next_fns),
        next_after=manager.size_multi(new_next),
        outputs_before=manager.size_multi(fsm.output_fns.values()),
        outputs_after=manager.size_multi(new_outputs.values()),
    )


def sequentially_equivalent(
    original: Fsm, optimized: Fsm, reached: Optional[int] = None
) -> bool:
    """Check the two machines agree on every reachable state and input.

    The machines must share manager, variables and reset state (the
    shape :func:`minimize_fsm_logic` produces).  Verifies that on
    ``R × inputs`` every next-state function and every output function
    coincide — the precise guarantee unreachable-state don't cares
    preserve.
    """
    manager = original.manager
    if original.current_levels != optimized.current_levels:
        raise ValueError("machines do not share state variables")
    if reached is None:
        reached = reachable_states(original).reached
    for before, after in zip(original.next_fns, optimized.next_fns):
        disagrees = manager.and_(manager.xor(before, after), reached)
        if disagrees != ZERO:
            return False
    for name, before in original.output_fns.items():
        after = optimized.output_fns[name]
        disagrees = manager.and_(manager.xor(before, after), reached)
        if disagrees != ZERO:
            return False
    return True
