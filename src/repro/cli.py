"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------

``minimize``
    Minimize a paper-notation instance (``"d1 01"``) or an
    expression pair, with one heuristic or all of them.
``experiments``
    Run the §4 pipeline and print Tables 3/4 and Figure 3
    (the same driver as ``examples/run_paper_experiments.py``).
``equivalence``
    Self-check a benchmark machine (or compare two) with
    ``verify_fsm``-style product traversal.
``blif``
    Parse a BLIF file, report machine shape, optionally compute the
    reachable state count.
``lint``
    Run ``repro-lint``, the codebase-specific AST lint pass (rules
    L1–L5 plus, with ``--flow``, the cross-module ref-flow rules
    F1–F4; see ``docs/analysis.md``), over the given paths (default:
    the installed ``repro`` package plus ``benchmarks/`` and
    ``examples/``).  Supports ``--format json|sarif`` and baseline
    files (``--baseline`` / ``--write-baseline``).
``audit``
    Replay circuit-suite minimization instances against every
    registered heuristic and check the advertised contracts (cover
    containment, no-new-vars, never-grow, Theorem-7 cube bound).
``inject``
    Fault-injection drill: run a heuristic on a manager that fails on
    schedule (budget trip, recursion failure, cache corruption) and
    report whether the guard degraded gracefully.
``serve``
    Process-isolated minimization service: JSON-lines requests on
    stdin, one JSON result per line on stdout, every heuristic call
    running in a worker process under an OS-level watchdog with
    per-heuristic circuit breakers (see ``docs/serving.md``).
``metrics``
    Run a capped Table-2-style sweep with observability enabled and
    print the BDD-engine counters (ITE calls, cache hits/misses,
    nodes created) per heuristic plus every collected metric (see
    ``docs/observability.md``).

Observability flags (``minimize`` and ``experiments``): ``--metrics``
collects and prints engine/heuristic counters for the run;
``--trace FILE`` writes a Chrome trace-event JSON of the run, viewable
in Perfetto or ``chrome://tracing``.

Resource flags (``minimize`` and ``experiments``): ``--node-budget``,
``--step-budget`` and ``--deadline`` bound each heuristic call; a call
exceeding them degrades to the identity cover and is reported, never
crashed on.  ``experiments --checkpoint FILE`` journals completed calls
to JSONL; ``--resume`` continues an interrupted sweep from the journal
(a malformed journal exits with status 2).  ``experiments --parallel N``
shards heuristic cells across an ``N``-worker pool, batching each
call's cells into one envelope per worker checkout (``--no-batch``
restores per-cell round trips); ``minimize --isolate`` runs each
heuristic in a worker process, so even a hung heuristic is SIGKILLed
and degraded instead of hanging the CLI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bdd.manager import Manager
from repro.bdd.parser import parse_expression


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--node-budget",
        type=int,
        help="max BDD nodes created per heuristic call",
    )
    parser.add_argument(
        "--step-budget",
        type=int,
        help="max ITE recursion steps per heuristic call",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        help="wall-clock seconds allowed per heuristic call",
    )


def _budget_from_args(args: argparse.Namespace):
    """Build a Budget from the CLI flags, or None when none given."""
    if (
        args.node_budget is None
        and args.step_budget is None
        and args.deadline is None
    ):
        return None
    from repro.robust.governor import Budget

    return Budget(
        max_nodes=args.node_budget,
        max_steps=args.step_budget,
        deadline=args.deadline,
    )


def _print_registry(registry) -> None:
    """Dump a metrics registry in stable, greppable text form."""
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    if counters:
        print("\ncounters:")
        for name in sorted(counters):
            print("  %-44s %d" % (name, counters[name]))
    gauges = snapshot["gauges"]
    if gauges:
        print("gauges:")
        for name in sorted(gauges):
            print("  %-44s %g" % (name, gauges[name]))
    histograms = snapshot["histograms"]
    if histograms:
        print("histograms (count / total / min / max):")
        for name in sorted(histograms):
            summary = histograms[name]
            print(
                "  %-44s %d / %g / %g / %g"
                % (
                    name,
                    summary["count"],
                    summary["total"],
                    summary["min"],
                    summary["max"],
                )
            )


def _obs_stack(args: argparse.Namespace, manager: Optional[Manager] = None):
    """ExitStack with --metrics / --trace scopes entered, plus registry.

    Returns ``(stack, registry)``; the registry is ``None`` unless
    ``--metrics`` was given.  With a ``manager`` its engine counters
    are attached too, so ``manager.*`` deltas land in the registry when
    the stack unwinds.
    """
    import contextlib

    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    stack = contextlib.ExitStack()
    registry = None
    if getattr(args, "metrics", False):
        registry = stack.enter_context(obs_metrics.collecting())
        if manager is not None:
            manager.attach_metrics(registry)
            stack.callback(manager.detach_metrics)
    if getattr(args, "trace", None):
        stack.enter_context(obs_trace.tracing(args.trace))
    return stack, registry


def _cmd_minimize(args: argparse.Namespace) -> int:
    manager = Manager()
    if args.expression:
        if args.care is None:
            print("--care is required with --expression", file=sys.stderr)
            return 2
        f = parse_expression(manager, args.instance)
        c = parse_expression(manager, args.care)
        from repro.core.ispec import ISpec

        spec = ISpec(manager, f, c)
    else:
        from repro.core.ispec import parse_instance

        spec = parse_instance(manager, args.instance)
    from repro.core.registry import HEURISTICS, get_heuristic
    from repro.core.lower_bound import cube_lower_bound

    print("|f| = %d  |c| = %d" % (manager.size(spec.f), manager.size(spec.c)))
    print(
        "cube lower bound = %d"
        % cube_lower_bound(manager, spec.f, spec.c, cube_limit=args.cube_limit)
    )
    budget = _budget_from_args(args)
    if args.all:
        names = sorted(HEURISTICS)
    else:
        names = [args.method]
    stack, registry = _obs_stack(args, manager)
    with stack:
        if args.isolate:
            from repro.serve.pool import DEFAULT_DEADLINE, MinimizationPool
            from repro.serve.service import MinimizationService

            pool = MinimizationPool(
                workers=1,
                deadline=(
                    args.deadline if args.deadline else DEFAULT_DEADLINE
                ),
                node_budget=args.node_budget,
                step_budget=args.step_budget,
            )
            with MinimizationService(pool, own_pool=True) as service:
                for name in names:
                    result = service.minimize(
                        manager, spec.f, spec.c, method=name
                    )
                    note = (
                        "  (degraded: %s)" % result.reason
                        if result.reason
                        else ""
                    )
                    print(
                        "%-12s |g| = %d%s"
                        % (name, manager.size(result.cover), note)
                    )
        else:
            for name in names:
                heuristic = get_heuristic(name, budget=budget)
                cover = heuristic(manager, spec.f, spec.c)
                failure = getattr(heuristic, "last_failure", None)
                note = "  (degraded: %s)" % failure if failure else ""
                print("%-12s |g| = %d%s" % (name, manager.size(cover), note))
    if args.trace:
        print("trace written to %s" % args.trace)
    if registry is not None:
        _print_registry(registry)
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    from repro.circuits.suite import QUICK_SUITE
    from repro.experiments import (
        run_experiment,
        render_table3,
        render_table4,
        render_figure3,
        render_per_benchmark,
        export_csv,
    )
    from repro.experiments.buckets import Bucket
    from repro.experiments.summary import render_stats

    from repro.robust.checkpoint import CheckpointError

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    names = list(QUICK_SUITE) if args.quick else None
    stack, registry = _obs_stack(args)
    try:
        with stack:
            results = run_experiment(
                names=names,
                cube_limit=args.cube_limit,
                budget=_budget_from_args(args),
                checkpoint=args.checkpoint,
                resume=args.resume,
                parallel=args.parallel,
                serve_memory_limit=args.memory_limit,
                gc=not args.no_gc,
                batch=not args.no_batch,
            )
    except CheckpointError as error:
        print("checkpoint error: %s" % error, file=sys.stderr)
        return 2
    print(
        "%d calls measured (%d filtered as trivial)"
        % (results.total_calls, results.filtered_out)
    )
    if results.resumed_calls:
        print(
            "%d call(s) replayed from checkpoint %s"
            % (results.resumed_calls, args.checkpoint)
        )
    if results.failed_cells:
        print(
            "%d heuristic cell(s) failed under the resource budget "
            "(recorded, not crashed)" % results.failed_cells
        )
    print()
    print(
        render_table3(
            results, buckets=[None, Bucket.SPARSE, Bucket.DENSE]
        )
    )
    print()
    print(render_table4(results))
    print()
    print(render_figure3(results))
    print()
    print(render_per_benchmark(results))
    if args.metrics:
        print()
        print(render_stats(results))
    if args.csv:
        with open(args.csv, "w") as handle:
            export_csv(results, stream=handle)
        print("raw measurements written to %s" % args.csv)
    if args.trace:
        print("trace written to %s" % args.trace)
    if registry is not None:
        _print_registry(registry)
    return 0


def _cmd_equivalence(args: argparse.Namespace) -> int:
    from repro.circuits.suite import benchmark_spec
    from repro.fsm import (
        compile_product,
        check_equivalence,
        equivalence_counterexample_trace,
    )

    manager = Manager()
    left = benchmark_spec(args.left)
    right = benchmark_spec(args.right or args.left)
    product = compile_product(manager, left, right)
    result = check_equivalence(product)
    print(
        "%s vs %s: %s (%d iterations, %d nodes)"
        % (
            args.left,
            args.right or args.left,
            "EQUIVALENT" if result.equivalent else "NOT EQUIVALENT",
            result.iterations,
            manager.num_nodes,
        )
    )
    if result.counterexample is not None:
        state = ", ".join(
            "%s=%d" % (name, value)
            for name, value in sorted(result.counterexample.items())
        )
        print("counterexample state: %s" % state)
        if args.trace:
            trace = equivalence_counterexample_trace(product)
            if trace is not None:
                print("distinguishing run:")
                print(trace.render())
    return 0 if result.equivalent else 1


def _cmd_blif(args: argparse.Namespace) -> int:
    from repro.fsm.blif import parse_blif, compile_blif
    from repro.fsm.reachability import reachable_states

    with open(args.path) as handle:
        model = parse_blif(handle.read())
    print(
        "model %s: %d inputs, %d outputs, %d latches, %d tables"
        % (
            model.name,
            len(model.inputs),
            len(model.outputs),
            len(model.latches),
            len(model.tables),
        )
    )
    manager = Manager()
    fsm = compile_blif(manager, model)
    if args.reachable:
        result = reachable_states(fsm)
        print(
            "reachable states: %d of %d (%d iterations)"
            % (
                result.state_count(fsm),
                1 << fsm.num_latches,
                result.iterations,
            )
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import main as lint_main

    argv = list(args.paths)
    if args.flow:
        argv.append("--flow")
    if args.output_format != "text":
        argv.extend(["--format", args.output_format])
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.write_baseline:
        argv.extend(["--write-baseline", args.write_baseline])
    return lint_main(argv)


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis.contracts import audit_suite
    from repro.circuits.suite import (
        BENCHMARK_SUITE,
        QUICK_SUITE,
        benchmark_spec,
    )

    if args.benchmarks:
        benchmarks = args.benchmarks
    elif args.full:
        benchmarks = list(BENCHMARK_SUITE)
    else:
        benchmarks = list(QUICK_SUITE)
    names = args.heuristics or None
    try:
        for benchmark in benchmarks:  # fail fast on typos, before replay
            benchmark_spec(benchmark)
        report = audit_suite(
            benchmarks=benchmarks,
            names=names,
            max_calls_per_benchmark=args.max_calls,
        )
    except KeyError as error:
        message = error.args[0] if error.args else str(error)
        print("error: %s" % message, file=sys.stderr)
        return 2
    print(
        "audited %d instance(s), %d contract check(s)"
        % (report.instances, report.checks)
    )
    if not report.ok:
        for message in report.failures:
            print("FAIL: %s" % message, file=sys.stderr)
        print("%d violation(s)" % len(report.failures), file=sys.stderr)
        return 1
    print("all contracts hold")
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    """Fault-injection drill: prove the degradation path by breaking it."""
    import random

    from repro.core.ispec import ISpec
    from repro.core.registry import HEURISTICS
    from repro.robust.faults import FaultPlan, FaultyManager
    from repro.robust.guard import guard

    if args.heuristic not in HEURISTICS:
        print(
            "unknown heuristic %r; available: %s"
            % (args.heuristic, ", ".join(sorted(HEURISTICS))),
            file=sys.stderr,
        )
        return 2
    plan = FaultPlan(args.fault, args.at, repeat=args.repeat)
    manager = FaultyManager(plan=plan, armed=False)
    # Deterministic pseudo-random DNF instance: seeded, so every drill
    # with the same flags replays the same fault at the same operation.
    rng = random.Random(args.seed)
    levels = [manager.new_var("x%d" % index) for index in range(args.vars)]

    def random_dnf(cubes: int) -> int:
        result = None
        for _ in range(cubes):
            chosen = rng.sample(levels, k=min(3, len(levels)))
            cube = None
            for literal in chosen:
                literal = literal if rng.random() < 0.5 else literal ^ 1
                cube = literal if cube is None else manager.and_(cube, literal)
            result = cube if result is None else manager.or_(result, cube)
        return result

    f = random_dnf(args.vars)
    c = random_dnf(args.vars)
    spec = ISpec(manager, f, c)
    setup_operations = manager.operations
    manager.clear_caches()
    manager.armed = True
    guarded = guard(
        HEURISTICS[args.heuristic],
        name=args.heuristic,
        flush_before_verify=True,
    )
    cover = guarded(manager, f, c)
    manager.armed = False
    manager.clear_caches()
    print(
        "fault plan: %s at operation %d%s (setup used %d operations)"
        % (
            plan.kind,
            plan.at_operation,
            " repeating" if plan.repeat else "",
            setup_operations,
        )
    )
    print("faults fired: %d" % manager.faults_fired)
    if guarded.last_failure:
        print("guard degraded: %s" % guarded.last_failure)
    else:
        print("heuristic completed despite the fault")
    print(
        "|f| = %d  |g| = %d  cover valid: %s"
        % (manager.size(f), manager.size(cover), spec.is_cover(cover))
    )
    if not spec.is_cover(cover):
        print("FAIL: guarded result is not a cover", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """JSON-lines minimization service over stdin/stdout."""
    import json

    from repro.core.ispec import parse_instance
    from repro.serve.breaker import RetryPolicy
    from repro.serve.pool import MinimizationPool
    from repro.serve.service import MinimizationService

    pool = MinimizationPool(
        workers=args.workers,
        deadline=args.deadline,
        memory_limit=args.memory_limit,
        recycle_after=args.recycle_after,
    )
    served = 0
    stream = open(args.input) if args.input else sys.stdin
    with MinimizationService(
        pool,
        retry=RetryPolicy(max_attempts=args.retries + 1),
        own_pool=True,
    ) as service:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            manager = Manager()
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                if "instance" in request:
                    spec = parse_instance(manager, request["instance"])
                    f, c = spec.f, spec.c
                elif "f" in request:
                    f = parse_expression(manager, request["f"])
                    c = parse_expression(manager, request.get("care", "1"))
                else:
                    raise ValueError(
                        'request needs "instance" or "f" (+ optional '
                        '"care")'
                    )
            except Exception as error:  # noqa: BLE001 — a service loop
                # must answer malformed requests, never die on them.
                print(
                    json.dumps(
                        {
                            "ok": False,
                            "error": "bad request: %s" % error,
                        }
                    ),
                    flush=True,
                )
                continue
            result = service.minimize(
                manager, f, c, method=request.get("method", "osm_bt")
            )
            reply = {
                "method": result.method,
                "ok": result.ok,
                "f_size": manager.size(f),
                "size": manager.size(result.cover),
                "runtime": round(result.runtime, 6),
            }
            if result.reason:
                reply["reason"] = result.reason
            print(json.dumps(reply), flush=True)
            served += 1
    if stream is not sys.stdin:
        stream.close()
    stats = service.statistics()
    print(
        "served %d request(s): %d failure(s), %d short-circuit(s), "
        "%d worker kill(s)"
        % (
            served,
            stats["failures"],
            stats["short_circuits"],
            stats["kills"],
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Chaos load drill: gateway + pool under seeded fault schedules.

    Runs the closed-loop load generator of :mod:`repro.robust.chaos`
    against every requested fault schedule, asserts the serve-layer
    invariants (every completed response is a valid cover, every
    rejection is typed and bounded in time), and records the results
    in ``benchmarks/BENCH_serve_load.json``.  Exit status 1 on any
    invariant violation — this is the CI gate behind ``load-smoke``.
    """
    import contextlib
    import json
    import multiprocessing

    from repro.obs import trace as obs_trace
    from repro.robust.chaos import (
        FAULT_SCHEDULES,
        LoadConfig,
        named_schedule,
        run_loadtest,
    )

    if "fork" not in multiprocessing.get_all_start_methods():
        print("loadtest requires the fork start method", file=sys.stderr)
        return 2
    if args.quick:
        config = LoadConfig(
            requests=args.requests or 80,
            concurrency=args.concurrency or 6,
            workers=args.workers,
            deadline=args.deadline or 1.5,
            seed=args.seed,
            stall_seconds=0.3,
            spike_bytes=32 << 20,
        )
        names = args.schedule or ["mixed"]
    else:
        config = LoadConfig(
            requests=args.requests or 200,
            concurrency=args.concurrency or 8,
            workers=args.workers,
            deadline=args.deadline or 2.0,
            seed=args.seed,
        )
        names = args.schedule or sorted(FAULT_SCHEDULES)
    for name in names:
        if name not in FAULT_SCHEDULES:
            print(
                "unknown schedule %r; available: %s"
                % (name, ", ".join(sorted(FAULT_SCHEDULES))),
                file=sys.stderr,
            )
            return 2
    all_violations: List[str] = []
    records = []
    trace_stack = contextlib.ExitStack()
    if getattr(args, "trace", None):
        trace_stack.enter_context(obs_trace.tracing(args.trace))
    with trace_stack:
        for name in names:
            schedule = named_schedule(name, config.seed, config.requests)
            report = run_loadtest(config, schedule)
            record = report.to_record()
            records.append(record)
            violations = report.violations(
                max_p99=args.max_p99, max_shed_rate=args.max_shed_rate
            )
            all_violations.extend(violations)
            print(
                "%-8s %4d req: %4d ok, %3d degraded, %3d shed "
                "(p50 %.3fs, p99 %.3fs, %.0f req/s)%s"
                % (
                    name,
                    report.requests,
                    report.completed_ok,
                    report.degraded,
                    report.shed,
                    report.p50,
                    report.p99,
                    report.throughput,
                    "  FAIL" if violations else "",
                )
            )
            for message in violations:
                print("  violation: %s" % message, file=sys.stderr)
    if args.output:
        payload = {
            "quick": bool(args.quick),
            "seed": config.seed,
            "requests_per_schedule": config.requests,
            "concurrency": config.concurrency,
            "workers": config.workers,
            "schedules": records,
            "violations": all_violations,
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.output)
    if all_violations:
        print(
            "%d invariant violation(s)" % len(all_violations),
            file=sys.stderr,
        )
        return 1
    print("all serve-layer invariants held under every schedule")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: seeded corpora, oracle pack, serving lanes.

    Generates deterministic ``[f, c]`` corpora, checks the paper's
    theorems as metamorphic oracles over every requested heuristic,
    pushes every instance through the requested serving lanes
    (asserting byte-level cover agreement and typed degradations), and
    optionally delta-debugs any failure down to a minimal reproducer
    plus a pytest regression stub.  Exit status 1 on any finding or
    violation — the CI gate behind ``fuzz-smoke``.
    """
    import json

    from repro.obs import metrics as obs_metrics
    from repro.verify import FuzzConfig, run_fuzz
    from repro.verify.corpus import DEFAULT_FAMILIES, FAMILIES
    from repro.verify.driver import DEFAULT_METHODS
    from repro.verify.lanes import LANE_NAMES
    from repro.verify.oracles import ORACLE_NAMES

    for family in args.families or ():
        if family not in FAMILIES:
            print(
                "unknown family %r; available: %s"
                % (family, ", ".join(sorted(FAMILIES))),
                file=sys.stderr,
            )
            return 2
    for lane in args.lanes:
        if lane not in LANE_NAMES:
            print(
                "unknown lane %r; available: %s"
                % (lane, ", ".join(LANE_NAMES)),
                file=sys.stderr,
            )
            return 2
    for oracle in args.oracles or ():
        if oracle not in ORACLE_NAMES:
            print(
                "unknown oracle %r; available: %s"
                % (oracle, ", ".join(ORACLE_NAMES)),
                file=sys.stderr,
            )
            return 2
    config = FuzzConfig(
        seed=args.seed,
        rounds=args.rounds,
        size=args.size,
        num_vars=args.num_vars,
        families=tuple(args.families) if args.families else DEFAULT_FAMILIES,
        methods=tuple(args.methods) if args.methods else DEFAULT_METHODS,
        lanes=tuple(args.lanes),
        oracles=tuple(args.oracles) if args.oracles else None,
        shrink=args.shrink,
        deadline=args.deadline,
        output_dir=args.reproducer_dir if args.shrink else None,
    )
    with obs_metrics.collecting() as registry:
        report = run_fuzz(config, log=print)
    print(
        "%d instance(s), %d oracle check(s), %d lane request(s) over %s"
        % (
            report.instances,
            report.oracle_checks,
            report.lane_requests,
            ", ".join(config.lanes),
        )
    )
    for lane, counts in sorted(report.lane_status_counts.items()):
        print(
            "  %-9s %s"
            % (
                lane,
                " ".join(
                    "%s=%d" % item for item in sorted(counts.items())
                ),
            )
        )
    for record in report.oracle_findings:
        print(
            "finding: %s/%s on %s: %s"
            % (
                record["oracle"],
                record["heuristic"] or "-",
                record["instance"],
                record["message"],
            ),
            file=sys.stderr,
        )
    for message in report.lane_violations:
        print("violation: %s" % message, file=sys.stderr)
    for record in report.shrunk:
        print(
            "shrunk %s/%s to %d variable(s)%s"
            % (
                record["oracle"],
                record["heuristic"] or "-",
                record["num_vars"],
                ": %s" % ", ".join(record["artifacts"])
                if "artifacts" in record
                else "",
            )
        )
    print("report fingerprint: %s" % report.fingerprint())
    if args.metrics:
        _print_registry(registry)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.output)
    if not report.ok:
        print(
            "%d oracle finding(s), %d lane violation(s)"
            % (len(report.oracle_findings), len(report.lane_violations)),
            file=sys.stderr,
        )
        return 1
    print("all oracles and lanes conformed")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Capped sweep with observability fully on; print every counter."""
    from repro.circuits.suite import QUICK_SUITE
    from repro.experiments import run_experiment
    from repro.experiments.summary import aggregate_stats, render_stats
    from repro.core.registry import PAPER_HEURISTICS
    from repro.obs import dist as obs_dist
    from repro.obs import metrics as obs_metrics

    names = args.benchmarks or list(QUICK_SUITE)
    heuristics = tuple(args.heuristics) if args.heuristics else (
        PAPER_HEURISTICS
    )
    obs_dist.GLOBAL_PHASES.reset()
    with obs_metrics.collecting() as registry:
        results = run_experiment(
            names=names,
            heuristics=heuristics,
            compute_lower_bound=False,
            max_iterations=args.max_iterations,
        )
        if args.parallel:
            # Drive the serve stack too, so the pool/gateway supervisor
            # counters (serve.* / gateway.*) land in the same registry.
            from repro.verify.corpus import Corpus
            from repro.verify.lanes import GatewayLane, PoolLane

            instances = Corpus(
                families=("random_dnf",), size=4, num_vars=6, seed=0
            ).generate()
            lane_results = PoolLane(workers=args.parallel).run(
                instances, ["osm_bt"]
            )
            lane_results += GatewayLane(workers=args.parallel).run(
                instances, ["osm_bt"]
            )
            registry.inc("verify.lane_requests", len(lane_results))
            # The merged parallel view exports the *complete*
            # serve-path key set — a counter that only appears once
            # something sheds or hedges is invisible exactly when a
            # dashboard is being built against this output.
            obs_dist.ensure_serve_counters(registry)
    print(
        "%d calls measured over %s (max %d iterations each)"
        % (results.total_calls, ", ".join(names), args.max_iterations)
    )
    print()
    print(render_stats(results))
    totals = aggregate_stats(results)
    print()
    print(
        "total ite calls: %d"
        % sum(cell.get("ite_calls", 0) for cell in totals.values())
    )
    print(
        "total ite cache hits: %d"
        % sum(cell.get("ite_cache_hits", 0) for cell in totals.values())
    )
    _print_registry(registry)
    phase_summary = obs_dist.GLOBAL_PHASES.summary()
    if phase_summary:
        print("\nphase percentiles (count / p50 / p95 / p99, seconds):")
        for name in sorted(phase_summary):
            entry = phase_summary[name]
            print(
                "  %-44s %d / %.6f / %.6f / %.6f"
                % (
                    name,
                    entry["count"],
                    entry["p50"],
                    entry["p95"],
                    entry["p99"],
                )
            )
    return 0


def _cmd_perf_report(args: argparse.Namespace) -> int:
    """Aggregate a merged trace into its phase-breakdown table."""
    from repro.obs import dist as obs_dist

    try:
        events = obs_dist.load_trace(args.trace)
    except (OSError, ValueError) as error:
        print("unreadable trace %s: %s" % (args.trace, error),
              file=sys.stderr)
        return 2
    breakdown = obs_dist.phase_breakdown(events)
    if breakdown["requests"] == 0:
        print(
            "no pool request spans in %s (was the sweep run with "
            "--trace and --parallel?)" % args.trace,
            file=sys.stderr,
        )
        return 1
    print(
        "%d request(s), %.3f ms total wall"
        % (breakdown["requests"], breakdown["wall_us"] / 1e3)
    )
    print()
    print(obs_dist.render_phase_table(breakdown))
    if args.collapsed:
        lines = obs_dist.collapsed_stacks(events)
        with open(args.collapsed, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        print("\nwrote %d collapsed stack(s) to %s"
              % (len(lines), args.collapsed))
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(breakdown, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Benchmark history ledger: record, compare, list."""
    import datetime

    from repro.obs import hist

    if not (args.record or args.compare or args.list):
        print("nothing to do: pass --record, --compare and/or --list",
              file=sys.stderr)
        return 2
    ledger_path = args.ledger
    try:
        if args.record:
            recorded_at = datetime.datetime.now(
                datetime.timezone.utc
            ).strftime("%Y-%m-%dT%H:%M:%SZ")
            entries = hist.record(
                args.dir, ledger_path=ledger_path, recorded_at=recorded_at
            )
            for entry in entries:
                print(
                    "recorded %-16s %s"
                    % (
                        entry["bench"],
                        " ".join(
                            "%s=%g" % (metric, value["value"])
                            for metric, value in sorted(
                                entry["metrics"].items()
                            )
                        ),
                    )
                )
            if not entries:
                print("no BENCH_*.json records in %s" % args.dir,
                      file=sys.stderr)
                return 2
        if args.list:
            entries = hist.load_ledger(
                ledger_path
                or "%s/%s" % (args.dir, hist.LEDGER_NAME)
            )
            for entry in entries:
                print(
                    "%-20s %-16s %s"
                    % (
                        entry.get("recorded_at") or "-",
                        entry["bench"],
                        " ".join(
                            "%s=%g" % (metric, value["value"])
                            for metric, value in sorted(
                                entry["metrics"].items()
                            )
                        ),
                    )
                )
            print("%d ledger entr%s" % (
                len(entries), "y" if len(entries) == 1 else "ies"))
        if args.compare:
            outcome = hist.compare(
                args.dir,
                ledger_path=ledger_path,
                tolerance=args.tolerance,
            )
            for skip in outcome["skipped"]:
                print(
                    "skipped %s: %s" % (skip["bench"], skip["reason"])
                )
            for regression in outcome["regressions"]:
                print(
                    "REGRESSION %s.%s: %g -> %g (%+.1f%%, %s is "
                    "better, tolerance %.0f%%)"
                    % (
                        regression["bench"],
                        regression["metric"],
                        regression["baseline"],
                        regression["current"],
                        regression["relative_change"] * 100.0,
                        regression["direction"],
                        regression["tolerance"] * 100.0,
                    ),
                    file=sys.stderr,
                )
            print(
                "%d directed metric(s) checked, %d regression(s)"
                % (outcome["checked"], len(outcome["regressions"]))
            )
            if not outcome["ok"]:
                return 1
    except hist.LedgerError as error:
        print("ledger error: %s" % error, file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heuristic BDD minimization with don't cares (DAC'94)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    minimize_parser = commands.add_parser(
        "minimize", help="minimize one [f, c] instance"
    )
    minimize_parser.add_argument(
        "instance",
        help='leaf string like "d1 01", or an expression with --expression',
    )
    minimize_parser.add_argument(
        "--expression",
        action="store_true",
        help="treat the instance as a Boolean expression for f",
    )
    minimize_parser.add_argument(
        "--care", help="care-set expression (with --expression)"
    )
    minimize_parser.add_argument("--method", default="osm_bt")
    minimize_parser.add_argument("--all", action="store_true")
    minimize_parser.add_argument("--cube-limit", type=int, default=1000)
    minimize_parser.add_argument(
        "--isolate",
        action="store_true",
        help="run each heuristic in a worker process under the "
        "--deadline watchdog (SIGKILL on overrun, degrade to g = f)",
    )
    _add_budget_flags(minimize_parser)
    minimize_parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print engine and heuristic counters",
    )
    minimize_parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event JSON of the run (view in "
        "Perfetto or chrome://tracing)",
    )
    minimize_parser.set_defaults(handler=_cmd_minimize)

    experiments_parser = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments_parser.add_argument("--quick", action="store_true")
    experiments_parser.add_argument("--cube-limit", type=int, default=1000)
    experiments_parser.add_argument("--csv")
    _add_budget_flags(experiments_parser)
    experiments_parser.add_argument(
        "--checkpoint",
        help="JSONL journal of completed calls (written as the sweep runs)",
    )
    experiments_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip calls already recorded in --checkpoint",
    )
    experiments_parser.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        help="shard heuristic cells across N pool workers, each under "
        "an OS-level watchdog and per-heuristic circuit breaker",
    )
    experiments_parser.add_argument(
        "--memory-limit",
        type=int,
        metavar="BYTES",
        help="address-space rlimit per pool worker (with --parallel)",
    )
    experiments_parser.add_argument(
        "--no-batch",
        action="store_true",
        help="with --parallel: dispatch one worker round trip per "
        "heuristic cell instead of batching each call's cells into "
        "one envelope (differential runs, overhead measurement)",
    )
    experiments_parser.add_argument(
        "--no-gc",
        action="store_true",
        help="flush caches only at the §4.1.1 flush points instead of "
        "running the mark-and-sweep collector (for memory A/B runs)",
    )
    experiments_parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect metrics for the sweep and print per-heuristic "
        "BDD-engine counters",
    )
    experiments_parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event JSON of the sweep (view in "
        "Perfetto or chrome://tracing)",
    )
    experiments_parser.set_defaults(handler=_run_experiments)

    equivalence_parser = commands.add_parser(
        "equivalence", help="product-machine equivalence check"
    )
    equivalence_parser.add_argument("left", help="benchmark name")
    equivalence_parser.add_argument(
        "right", nargs="?", help="second benchmark (default: self-check)"
    )
    equivalence_parser.add_argument(
        "--trace",
        action="store_true",
        help="print a distinguishing input sequence on inequivalence",
    )
    equivalence_parser.set_defaults(handler=_cmd_equivalence)

    blif_parser = commands.add_parser("blif", help="inspect a BLIF file")
    blif_parser.add_argument("path")
    blif_parser.add_argument("--reachable", action="store_true")
    blif_parser.set_defaults(handler=_cmd_blif)

    lint_parser = commands.add_parser(
        "lint",
        help=(
            "run the codebase-specific lint pass (rules L1-L5; "
            "--flow adds F1-F4)"
        ),
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories (default: the repro package tree "
            "plus benchmarks/ and examples/)"
        ),
    )
    lint_parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the cross-module ref-flow rules F1-F4",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in FILE",
    )
    lint_parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings to FILE and exit 0",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    audit_parser = commands.add_parser(
        "audit",
        help="check heuristic contracts on circuit-suite instances",
    )
    audit_parser.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark names (default: the quick suite)",
    )
    audit_parser.add_argument(
        "--full",
        action="store_true",
        help="audit the full benchmark suite",
    )
    audit_parser.add_argument(
        "--heuristics",
        nargs="+",
        help="restrict to these heuristic names (default: all registered)",
    )
    audit_parser.add_argument(
        "--max-calls",
        type=int,
        default=25,
        help="recorded calls audited per benchmark (default 25)",
    )
    audit_parser.set_defaults(handler=_cmd_audit)

    inject_parser = commands.add_parser(
        "inject",
        help="fault-injection drill against a guarded heuristic",
    )
    inject_parser.add_argument(
        "--fault",
        required=True,
        choices=["budget", "recursion", "cache"],
        help="failure to inject (see repro.robust.faults)",
    )
    inject_parser.add_argument(
        "--at",
        type=int,
        default=100,
        help="operation count the fault fires at (default 100)",
    )
    inject_parser.add_argument(
        "--repeat",
        action="store_true",
        help="fire on every operation from --at on (retries fail too)",
    )
    inject_parser.add_argument(
        "--heuristic",
        default="osm_bt",
        help="registered heuristic to drill (default osm_bt)",
    )
    inject_parser.add_argument(
        "--vars",
        type=int,
        default=8,
        help="variables in the synthetic instance (default 8)",
    )
    inject_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the deterministic synthetic instance",
    )
    inject_parser.set_defaults(handler=_cmd_inject)

    serve_parser = commands.add_parser(
        "serve",
        help="process-isolated minimization service (JSON lines)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="pool worker processes (default 2)",
    )
    serve_parser.add_argument(
        "--deadline",
        type=float,
        default=10.0,
        help="wall-clock seconds per request before SIGKILL (default 10)",
    )
    serve_parser.add_argument(
        "--memory-limit",
        type=int,
        metavar="BYTES",
        help="address-space rlimit per worker process",
    )
    serve_parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries for transient failures, with 2x deadline "
        "backoff per attempt (default 1)",
    )
    serve_parser.add_argument(
        "--recycle-after",
        type=int,
        metavar="N",
        help="gracefully replace each worker after it has served N "
        "requests (bounds interpreter-level memory growth)",
    )
    serve_parser.add_argument(
        "--input",
        help="read requests from this file instead of stdin",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    loadtest_parser = commands.add_parser(
        "loadtest",
        help="chaos load drill: gateway invariants under fault schedules",
    )
    loadtest_parser.add_argument(
        "--schedule",
        nargs="+",
        metavar="NAME",
        help="fault schedules to run (default: all; quick mode: mixed)",
    )
    loadtest_parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller load and smaller memory spikes (CI smoke)",
    )
    loadtest_parser.add_argument(
        "--requests",
        type=int,
        help="requests per schedule (default 200; quick 80)",
    )
    loadtest_parser.add_argument(
        "--concurrency",
        type=int,
        help="closed-loop clients (default 8; quick 6)",
    )
    loadtest_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="pool worker processes (default 2)",
    )
    loadtest_parser.add_argument(
        "--deadline",
        type=float,
        help="per-request budget in seconds (default 2.0; quick 1.5)",
    )
    loadtest_parser.add_argument(
        "--seed",
        type=int,
        default=2026,
        help="chaos/instance seed (default 2026)",
    )
    loadtest_parser.add_argument(
        "--max-p99",
        type=float,
        help="fail if any schedule's p99 latency exceeds this bound",
    )
    loadtest_parser.add_argument(
        "--max-shed-rate",
        type=float,
        help="fail if any schedule's shed rate exceeds this fraction",
    )
    loadtest_parser.add_argument(
        "--output",
        default="benchmarks/BENCH_serve_load.json",
        help="JSON record path (default benchmarks/BENCH_serve_load.json; "
        "empty string to skip writing)",
    )
    loadtest_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a merged distributed Chrome trace of the drill "
        "(chaos injections tagged as instant events)",
    )
    loadtest_parser.set_defaults(handler=_cmd_loadtest)

    metrics_parser = commands.add_parser(
        "metrics",
        help="run a capped sweep with observability on, print counters",
    )
    metrics_parser.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark names (default: the quick suite)",
    )
    metrics_parser.add_argument(
        "--heuristics",
        nargs="+",
        help="restrict to these heuristic names (default: the paper's "
        "twelve)",
    )
    metrics_parser.add_argument(
        "--max-iterations",
        type=int,
        default=4,
        help="fixpoint iterations recorded per benchmark (default 4)",
    )
    metrics_parser.add_argument(
        "--parallel",
        type=int,
        metavar="WORKERS",
        help="also drive the pool and gateway lanes with this many "
        "workers, so serve.* and gateway.* counters appear",
    )
    metrics_parser.set_defaults(handler=_cmd_metrics)

    perf_parser = commands.add_parser(
        "perf-report",
        help="aggregate a merged trace into a phase-breakdown table",
    )
    perf_parser.add_argument(
        "trace",
        help="merged Chrome-trace JSON written by a --trace run",
    )
    perf_parser.add_argument(
        "--collapsed",
        metavar="PATH",
        help="also write collapsed stacks (flamegraph.pl/speedscope "
        "format)",
    )
    perf_parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the full breakdown as JSON",
    )
    perf_parser.set_defaults(handler=_cmd_perf_report)

    bench_parser = commands.add_parser(
        "bench",
        help="benchmark history ledger: record and compare BENCH_*.json",
    )
    bench_parser.add_argument(
        "--dir",
        default="benchmarks",
        help="directory holding BENCH_*.json records (default "
        "benchmarks)",
    )
    bench_parser.add_argument(
        "--ledger",
        metavar="PATH",
        help="ledger path (default <dir>/BENCH_history.jsonl)",
    )
    bench_parser.add_argument(
        "--record",
        action="store_true",
        help="append one ledger entry per BENCH_*.json record",
    )
    bench_parser.add_argument(
        "--compare",
        action="store_true",
        help="check current records against the latest ledger "
        "baselines (exit 1 on regression)",
    )
    bench_parser.add_argument(
        "--list",
        action="store_true",
        help="print every ledger entry",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="relative tolerance before a directed metric counts as "
        "a regression (default 0.30)",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    fuzz_parser = commands.add_parser(
        "fuzz",
        help="differential fuzzing: corpora, oracles, serving lanes",
    )
    fuzz_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="corpus seed; the whole run is deterministic in it "
        "(default 0)",
    )
    fuzz_parser.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="corpus rounds; round k uses seed+k (default 1)",
    )
    fuzz_parser.add_argument(
        "--size",
        type=int,
        default=3,
        help="instances per family per round (default 3)",
    )
    fuzz_parser.add_argument(
        "--num-vars",
        type=int,
        default=6,
        help="variable budget per generated instance (default 6)",
    )
    fuzz_parser.add_argument(
        "--families",
        nargs="+",
        metavar="NAME",
        help="corpus families (default: all registered)",
    )
    fuzz_parser.add_argument(
        "--methods",
        nargs="+",
        metavar="NAME",
        help="heuristics to fuzz (default: constrain restrict osm_bt "
        "osm_nv)",
    )
    fuzz_parser.add_argument(
        "--lanes",
        nargs="+",
        default=["inprocess"],
        metavar="NAME",
        help="serving lanes to compare: inprocess pool batch gateway "
        "chaos (default: inprocess)",
    )
    fuzz_parser.add_argument(
        "--oracles",
        nargs="+",
        metavar="NAME",
        help="restrict the oracle pack to these oracles (default: all)",
    )
    fuzz_parser.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug failing instances and emit reproducers",
    )
    fuzz_parser.add_argument(
        "--reproducer-dir",
        default="fuzz-reproducers",
        help="directory for shrunk reproducers and pytest stubs "
        "(default fuzz-reproducers/; only written with --shrink)",
    )
    fuzz_parser.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="per-request worker deadline for serving lanes "
        "(default 30)",
    )
    fuzz_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the observability registry after the run",
    )
    fuzz_parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the JSON report here",
    )
    fuzz_parser.set_defaults(handler=_cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
