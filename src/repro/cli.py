"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------

``minimize``
    Minimize a paper-notation instance (``"d1 01"``) or an
    expression pair, with one heuristic or all of them.
``experiments``
    Run the §4 pipeline and print Tables 3/4 and Figure 3
    (the same driver as ``examples/run_paper_experiments.py``).
``equivalence``
    Self-check a benchmark machine (or compare two) with
    ``verify_fsm``-style product traversal.
``blif``
    Parse a BLIF file, report machine shape, optionally compute the
    reachable state count.
``lint``
    Run ``repro-lint``, the codebase-specific AST lint pass (rules
    L1–L5, see ``docs/analysis.md``), over the given paths (default:
    the installed ``repro`` package).
``audit``
    Replay circuit-suite minimization instances against every
    registered heuristic and check the advertised contracts (cover
    containment, no-new-vars, never-grow, Theorem-7 cube bound).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bdd.manager import Manager
from repro.bdd.parser import parse_expression


def _cmd_minimize(args: argparse.Namespace) -> int:
    manager = Manager()
    if args.expression:
        if args.care is None:
            print("--care is required with --expression", file=sys.stderr)
            return 2
        f = parse_expression(manager, args.instance)
        c = parse_expression(manager, args.care)
        from repro.core.ispec import ISpec

        spec = ISpec(manager, f, c)
    else:
        from repro.core.ispec import parse_instance

        spec = parse_instance(manager, args.instance)
    from repro.core.registry import HEURISTICS, get_heuristic
    from repro.core.lower_bound import cube_lower_bound

    print("|f| = %d  |c| = %d" % (manager.size(spec.f), manager.size(spec.c)))
    print(
        "cube lower bound = %d"
        % cube_lower_bound(manager, spec.f, spec.c, cube_limit=args.cube_limit)
    )
    if args.all:
        names = sorted(HEURISTICS)
    else:
        names = [args.method]
    for name in names:
        cover = get_heuristic(name)(manager, spec.f, spec.c)
        print("%-12s |g| = %d" % (name, manager.size(cover)))
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    from repro.circuits.suite import QUICK_SUITE
    from repro.experiments import (
        run_experiment,
        render_table3,
        render_table4,
        render_figure3,
        render_per_benchmark,
        export_csv,
    )
    from repro.experiments.buckets import Bucket

    names = list(QUICK_SUITE) if args.quick else None
    results = run_experiment(names=names, cube_limit=args.cube_limit)
    print(
        "%d calls measured (%d filtered as trivial)"
        % (results.total_calls, results.filtered_out)
    )
    print()
    print(
        render_table3(
            results, buckets=[None, Bucket.SPARSE, Bucket.DENSE]
        )
    )
    print()
    print(render_table4(results))
    print()
    print(render_figure3(results))
    print()
    print(render_per_benchmark(results))
    if args.csv:
        with open(args.csv, "w") as handle:
            export_csv(results, stream=handle)
        print("raw measurements written to %s" % args.csv)
    return 0


def _cmd_equivalence(args: argparse.Namespace) -> int:
    from repro.circuits.suite import benchmark_spec
    from repro.fsm import (
        compile_product,
        check_equivalence,
        equivalence_counterexample_trace,
    )

    manager = Manager()
    left = benchmark_spec(args.left)
    right = benchmark_spec(args.right or args.left)
    product = compile_product(manager, left, right)
    result = check_equivalence(product)
    print(
        "%s vs %s: %s (%d iterations, %d nodes)"
        % (
            args.left,
            args.right or args.left,
            "EQUIVALENT" if result.equivalent else "NOT EQUIVALENT",
            result.iterations,
            manager.num_nodes,
        )
    )
    if result.counterexample is not None:
        state = ", ".join(
            "%s=%d" % (name, value)
            for name, value in sorted(result.counterexample.items())
        )
        print("counterexample state: %s" % state)
        if args.trace:
            trace = equivalence_counterexample_trace(product)
            if trace is not None:
                print("distinguishing run:")
                print(trace.render())
    return 0 if result.equivalent else 1


def _cmd_blif(args: argparse.Namespace) -> int:
    from repro.fsm.blif import parse_blif, compile_blif
    from repro.fsm.reachability import reachable_states

    with open(args.path) as handle:
        model = parse_blif(handle.read())
    print(
        "model %s: %d inputs, %d outputs, %d latches, %d tables"
        % (
            model.name,
            len(model.inputs),
            len(model.outputs),
            len(model.latches),
            len(model.tables),
        )
    )
    manager = Manager()
    fsm = compile_blif(manager, model)
    if args.reachable:
        result = reachable_states(fsm)
        print(
            "reachable states: %d of %d (%d iterations)"
            % (
                result.state_count(fsm),
                1 << fsm.num_latches,
                result.iterations,
            )
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import main as lint_main

    return lint_main(list(args.paths))


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis.contracts import audit_suite
    from repro.circuits.suite import (
        BENCHMARK_SUITE,
        QUICK_SUITE,
        benchmark_spec,
    )

    if args.benchmarks:
        benchmarks = args.benchmarks
    elif args.full:
        benchmarks = list(BENCHMARK_SUITE)
    else:
        benchmarks = list(QUICK_SUITE)
    names = args.heuristics or None
    try:
        for benchmark in benchmarks:  # fail fast on typos, before replay
            benchmark_spec(benchmark)
        report = audit_suite(
            benchmarks=benchmarks,
            names=names,
            max_calls_per_benchmark=args.max_calls,
        )
    except KeyError as error:
        message = error.args[0] if error.args else str(error)
        print("error: %s" % message, file=sys.stderr)
        return 2
    print(
        "audited %d instance(s), %d contract check(s)"
        % (report.instances, report.checks)
    )
    if not report.ok:
        for message in report.failures:
            print("FAIL: %s" % message, file=sys.stderr)
        print("%d violation(s)" % len(report.failures), file=sys.stderr)
        return 1
    print("all contracts hold")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heuristic BDD minimization with don't cares (DAC'94)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    minimize_parser = commands.add_parser(
        "minimize", help="minimize one [f, c] instance"
    )
    minimize_parser.add_argument(
        "instance",
        help='leaf string like "d1 01", or an expression with --expression',
    )
    minimize_parser.add_argument(
        "--expression",
        action="store_true",
        help="treat the instance as a Boolean expression for f",
    )
    minimize_parser.add_argument(
        "--care", help="care-set expression (with --expression)"
    )
    minimize_parser.add_argument("--method", default="osm_bt")
    minimize_parser.add_argument("--all", action="store_true")
    minimize_parser.add_argument("--cube-limit", type=int, default=1000)
    minimize_parser.set_defaults(handler=_cmd_minimize)

    experiments_parser = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments_parser.add_argument("--quick", action="store_true")
    experiments_parser.add_argument("--cube-limit", type=int, default=1000)
    experiments_parser.add_argument("--csv")
    experiments_parser.set_defaults(handler=_run_experiments)

    equivalence_parser = commands.add_parser(
        "equivalence", help="product-machine equivalence check"
    )
    equivalence_parser.add_argument("left", help="benchmark name")
    equivalence_parser.add_argument(
        "right", nargs="?", help="second benchmark (default: self-check)"
    )
    equivalence_parser.add_argument(
        "--trace",
        action="store_true",
        help="print a distinguishing input sequence on inequivalence",
    )
    equivalence_parser.set_defaults(handler=_cmd_equivalence)

    blif_parser = commands.add_parser("blif", help="inspect a BLIF file")
    blif_parser.add_argument("path")
    blif_parser.add_argument("--reachable", action="store_true")
    blif_parser.set_defaults(handler=_cmd_blif)

    lint_parser = commands.add_parser(
        "lint", help="run the codebase-specific lint pass (rules L1-L5)"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: the repro package tree)",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    audit_parser = commands.add_parser(
        "audit",
        help="check heuristic contracts on circuit-suite instances",
    )
    audit_parser.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark names (default: the quick suite)",
    )
    audit_parser.add_argument(
        "--full",
        action="store_true",
        help="audit the full benchmark suite",
    )
    audit_parser.add_argument(
        "--heuristics",
        nargs="+",
        help="restrict to these heuristic names (default: all registered)",
    )
    audit_parser.add_argument(
        "--max-calls",
        type=int,
        default=25,
        help="recorded calls audited per benchmark (default 25)",
    )
    audit_parser.set_defaults(handler=_cmd_audit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
