"""Deterministic generators of benchmark FSM specifications.

Each generator returns a manager-independent :class:`FsmSpec`.  Word
structures use callables over Function environments; simple control
logic uses expression strings.  Everything is deterministic — the
pseudo-random controllers take an explicit seed — so experiments are
reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.errors import InvariantError
from repro.analysis.flow import deterministic
from repro.bdd.function import Function
from repro.fsm.machine import FsmSpec, LatchSpec, OutputSpec
from repro.circuits.bitvec import (
    increment,
    less_than,
    mux_word,
    ripple_add,
    rotate_left,
)

Env = Dict[str, Function]


def _word(env: Env, stem: str, width: int) -> List[Function]:
    return [env["%s%d" % (stem, index)] for index in range(width)]


# ----------------------------------------------------------------------
# Counters and registers
# ----------------------------------------------------------------------
def counter(bits: int, with_enable: bool = True) -> FsmSpec:
    """An up-counter with optional enable; output fires on rollover."""

    def next_bit(index: int) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            word = _word(env, "q", bits)
            enable = env["en"] if with_enable else (word[0] | ~word[0])
            return increment(word, enable)[index]

        return fn

    def rollover(env: Env) -> Function:
        word = _word(env, "q", bits)
        enable = env["en"] if with_enable else (word[0] | ~word[0])
        result = enable
        for bit in word:
            result = result & bit
        return result

    return FsmSpec(
        name="count%d" % bits,
        inputs=("en",) if with_enable else (),
        latches=tuple(
            LatchSpec("q%d" % index, next_bit(index)) for index in range(bits)
        ),
        outputs=(OutputSpec("rollover", rollover),),
    )


def gray_counter(bits: int) -> FsmSpec:
    """A Gray-code counter built as binary-increment-re-encode."""

    def binary_from_gray(word: Sequence[Function]) -> List[Function]:
        # b_j = g_j ^ g_{j+1} ^ ... ^ g_{top} (LSB-first storage).
        binary: List[Function] = [None] * len(word)
        running = word[-1]
        binary[-1] = running
        for index in range(len(word) - 2, -1, -1):
            running = running ^ word[index]
            binary[index] = running
        return binary

    def next_bit(index: int) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            gray = _word(env, "g", bits)
            binary = binary_from_gray(gray)
            bumped = increment(binary, env["en"])
            # Re-encode: g_j = b_j ^ b_{j+1}; top bit passes through.
            if index == bits - 1:
                return bumped[index]
            return bumped[index] ^ bumped[index + 1]

        return fn

    def parity(env: Env) -> Function:
        gray = _word(env, "g", bits)
        result = gray[0]
        for bit in gray[1:]:
            result = result ^ bit
        return result

    return FsmSpec(
        name="gray%d" % bits,
        inputs=("en",),
        latches=tuple(
            LatchSpec("g%d" % index, next_bit(index)) for index in range(bits)
        ),
        outputs=(OutputSpec("parity", parity),),
    )


def shift_register(bits: int) -> FsmSpec:
    """A serial-in shift register with serial and parity outputs."""
    latches = [LatchSpec("q0", "sin")]
    for index in range(1, bits):
        latches.append(LatchSpec("q%d" % index, "q%d" % (index - 1)))

    parity_expr = " ^ ".join("q%d" % index for index in range(bits))
    return FsmSpec(
        name="shift%d" % bits,
        inputs=("sin",),
        latches=tuple(latches),
        outputs=(
            OutputSpec("sout", "q%d" % (bits - 1)),
            OutputSpec("parity", parity_expr),
        ),
    )


def lfsr(bits: int, taps: Sequence[int] = (), scan: bool = False) -> FsmSpec:
    """A Fibonacci LFSR; optional scan input XORed into the feedback.

    ``taps`` lists the register indices feeding the XOR; defaults to
    the two top bits.  Reset state is all-ones so the register is never
    stuck at zero.
    """
    if not taps:
        taps = (bits - 1, bits - 2) if bits >= 2 else (0,)
    feedback = " ^ ".join("q%d" % index for index in taps)
    if scan:
        feedback = "(%s) ^ scan" % feedback
    latches = [LatchSpec("q0", feedback, init=True)]
    for index in range(1, bits):
        latches.append(
            LatchSpec("q%d" % index, "q%d" % (index - 1), init=True)
        )
    return FsmSpec(
        name="lfsr%d" % bits,
        inputs=("scan",) if scan else (),
        latches=tuple(latches),
        outputs=(OutputSpec("bit", "q%d" % (bits - 1)),),
    )


def johnson_counter(bits: int) -> FsmSpec:
    """A twisted-ring (Johnson) counter."""
    latches = [LatchSpec("q0", "~q%d" % (bits - 1))]
    for index in range(1, bits):
        latches.append(LatchSpec("q%d" % index, "q%d" % (index - 1)))
    return FsmSpec(
        name="johnson%d" % bits,
        inputs=(),
        latches=tuple(latches),
        outputs=(OutputSpec("top", "q%d" % (bits - 1)),),
    )


# ----------------------------------------------------------------------
# Controllers
# ----------------------------------------------------------------------
def traffic_light_controller(timer_bits: int = 3) -> FsmSpec:
    """The classic highway/farm-road traffic light controller (tlc).

    States (s1 s0): 00 highway-green, 01 highway-yellow, 10 farm-green,
    11 farm-yellow.  A free-running timer is cleared on each state
    change; ``car`` senses farm-road traffic.
    """
    top = timer_bits - 1

    def timer_word(env: Env) -> List[Function]:
        return _word(env, "t", timer_bits)

    def long_timeout(env: Env) -> Function:
        word = timer_word(env)
        result = word[top]
        for bit in word[:top]:
            result = result & bit
        return result

    def short_timeout(env: Env) -> Function:
        word = timer_word(env)
        result = word[0]
        if timer_bits > 1:
            result = result & word[1]
        return result

    def advance(env: Env) -> Function:
        s0, s1, car = env["s0"], env["s1"], env["car"]
        highway_green = ~s1 & ~s0
        highway_yellow = ~s1 & s0
        farm_green = s1 & ~s0
        farm_yellow = s1 & s0
        return (
            (highway_green & car & long_timeout(env))
            | (highway_yellow & short_timeout(env))
            | (farm_green & (~car | long_timeout(env)))
            | (farm_yellow & short_timeout(env))
        )

    def next_s0(env: Env) -> Function:
        return advance(env) ^ env["s0"]

    def next_s1(env: Env) -> Function:
        return (advance(env) & env["s0"]) ^ env["s1"]

    def next_timer(index: int) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            word = timer_word(env)
            bumped = increment(word, advance(env) | ~advance(env))
            # Clear on state change, else count.
            return ~advance(env) & bumped[index]

        return fn

    latches = [LatchSpec("s0", next_s0), LatchSpec("s1", next_s1)]
    latches.extend(
        LatchSpec("t%d" % index, next_timer(index))
        for index in range(timer_bits)
    )
    return FsmSpec(
        name="tlc",
        inputs=("car",),
        latches=tuple(latches),
        outputs=(
            OutputSpec("highway_go", "~s1 & ~s0"),
            OutputSpec("farm_go", "s1 & ~s0"),
            OutputSpec("yellow", "s0"),
        ),
    )


def minmax_tracker(bits: int) -> FsmSpec:
    """Track the running min and max of an input word (minmax5 family)."""

    def next_min(index: int) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            data = _word(env, "d", bits)
            lowest = _word(env, "lo", bits)
            take = less_than(data, lowest) | env["clear"]
            return mux_word(take, data, lowest)[index]

        return fn

    def next_max(index: int) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            data = _word(env, "d", bits)
            highest = _word(env, "hi", bits)
            take = less_than(highest, data) | env["clear"]
            return mux_word(take, data, highest)[index]

        return fn

    def in_range(env: Env) -> Function:
        data = _word(env, "d", bits)
        lowest = _word(env, "lo", bits)
        highest = _word(env, "hi", bits)
        return ~less_than(data, lowest) & ~less_than(highest, data)

    latches = [
        LatchSpec("lo%d" % index, next_min(index), init=True)
        for index in range(bits)
    ]
    latches.extend(
        LatchSpec("hi%d" % index, next_max(index), init=False)
        for index in range(bits)
    )
    return FsmSpec(
        name="minmax%d" % bits,
        inputs=tuple("d%d" % index for index in range(bits)) + ("clear",),
        latches=tuple(latches),
        outputs=(OutputSpec("in_range", in_range),),
    )


def serial_multiplier(bits: int) -> FsmSpec:
    """Shift-add multiplier core (mult16b family, scaled down).

    The multiplier word B shifts down while the product accumulates
    A·b0 each cycle; A arrives on the input bus, B loads on ``load``.
    """
    product_bits = 2 * bits

    def next_product(index: int) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            accumulator = _word(env, "p", product_bits)
            operand = _word(env, "a", bits)
            false = ~(operand[0] | ~operand[0])
            padded = list(operand) + [false] * (product_bits - bits)
            gated = [bit & env["b0"] for bit in padded]
            total, _ = ripple_add(accumulator, gated, false)
            shifted = total[1:] + [false]
            return env["load"].ite(false, shifted[index])

        return fn

    def next_b(index: int) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            word = _word(env, "b", bits)
            false = ~(word[0] | ~word[0])
            shifted = (word[1:] + [false])[index]
            return env["load"].ite(env["a%d" % index], shifted)

        return fn

    latches = [
        LatchSpec("p%d" % index, next_product(index))
        for index in range(product_bits)
    ]
    latches.extend(LatchSpec("b%d" % index, next_b(index)) for index in range(bits))
    busy = " | ".join("b%d" % index for index in range(bits))
    return FsmSpec(
        name="mult%d" % bits,
        inputs=tuple("a%d" % index for index in range(bits)) + ("load",),
        latches=tuple(latches),
        outputs=(
            OutputSpec("busy", busy),
            OutputSpec("p_low", "p0"),
        ),
    )


def carry_propagate_accumulator(width: int, input_bits: int) -> FsmSpec:
    """Accumulate an input word modulo ``2**width`` (cbp family)."""

    def next_bit(index: int) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            accumulator = _word(env, "s", width)
            data = _word(env, "d", input_bits)
            false = ~(data[0] | ~data[0])
            padded = list(data) + [false] * (width - input_bits)
            total, _ = ripple_add(accumulator, padded, false)
            return env["clear"].ite(false, total[index])

        return fn

    def overflow(env: Env) -> Function:
        accumulator = _word(env, "s", width)
        result = accumulator[-1]
        for bit in accumulator[:-1]:
            result = result & bit
        return result

    return FsmSpec(
        name="cbp.%d.%d" % (width, input_bits),
        inputs=tuple("d%d" % index for index in range(input_bits)) + ("clear",),
        latches=tuple(
            LatchSpec("s%d" % index, next_bit(index)) for index in range(width)
        ),
        outputs=(OutputSpec("near_full", overflow),),
    )


def round_robin_arbiter(clients: int) -> FsmSpec:
    """A rotating-token arbiter granting one requester per cycle."""

    def next_token(index: int) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            token = _word(env, "tok", clients)
            return rotate_left(token)[index]

        return fn

    latches = [
        LatchSpec("tok%d" % index, next_token(index), init=(index == 0))
        for index in range(clients)
    ]
    outputs = [
        OutputSpec("grant%d" % index, "tok%d & r%d" % (index, index))
        for index in range(clients)
    ]
    return FsmSpec(
        name="arb%d" % clients,
        inputs=tuple("r%d" % index for index in range(clients)),
        latches=tuple(latches),
        outputs=tuple(outputs),
    )


@deterministic
def redundant_counter(
    seed: int, bits: int, garbage_terms: int = 10
) -> FsmSpec:
    """A counter with a redundant shadow encoding and garbage logic.

    Models *sequential redundancy*, the structure that makes don't-care
    BDD minimization pay off on real synthesized circuits: the machine
    keeps a ``bits``-wide counter ``q`` plus a shadow word ``s`` bound
    by the invariant ``s_j = q_j ⊕ q_{j+1 mod bits}``.  Next-state logic
    checks the invariant and produces pseudo-random "garbage" when it
    fails — which never happens on reachable states, exactly like the
    arbitrary values synthesis assigns to unreachable codes.  Constrain
    calls against reachable frontiers therefore collapse the garbage
    away, giving the large ``f_orig``-to-``min`` reductions the paper
    reports on the ISCAS machines.

    The counter steps by ``en + 2·skip`` each cycle, so frontiers are
    multi-state sets (single-state frontiers are cube-care instances
    the harness filters out).
    """
    if bits < 2:
        raise ValueError("redundant_counter needs at least 2 bits")
    rng = random.Random(seed)
    signal_names = (
        ["q%d" % index for index in range(bits)]
        + ["s%d" % index for index in range(bits)]
        + ["en", "skip"]
    )

    def make_garbage_terms() -> List[List[str]]:
        # Drawn at spec-construction time so the machine is
        # deterministic per seed.
        terms = []
        for _ in range(garbage_terms):
            chosen = rng.sample(signal_names, min(4, len(signal_names)))
            terms.append(
                [
                    name if rng.random() < 0.5 else "~" + name
                    for name in chosen
                ]
            )
        return terms

    def evaluate_terms(env: Env, terms: List[List[str]]) -> Function:
        result = None
        for term in terms:
            product = None
            for literal in term:
                if literal.startswith("~"):
                    value = ~env[literal[1:]]
                else:
                    value = env[literal]
                product = value if product is None else product & value
            result = product if result is None else result | product
        if result is None:
            raise InvariantError("term list of a generated table is empty")
        return result

    def invariant(env: Env) -> Function:
        held = None
        for index in range(bits):
            bit_ok = ~(
                env["s%d" % index]
                ^ env["q%d" % index]
                ^ env["q%d" % ((index + 1) % bits)]
            )
            held = bit_ok if held is None else held & bit_ok
        return held

    def next_counter(env: Env) -> List[Function]:
        word = _word(env, "q", bits)
        false = ~(word[0] | ~word[0])
        addend = [env["en"], env["skip"]] + [false] * (bits - 2)
        total, _ = ripple_add(word, addend[:bits], false)
        return total

    def next_q(index: int, terms: List[List[str]]) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            ok = invariant(env)
            return ok.ite(
                next_counter(env)[index], evaluate_terms(env, terms)
            )

        return fn

    def next_s(index: int, terms: List[List[str]]) -> Callable[[Env], Function]:
        def fn(env: Env) -> Function:
            ok = invariant(env)
            counter_next = next_counter(env)
            correct = counter_next[index] ^ counter_next[(index + 1) % bits]
            return ok.ite(correct, evaluate_terms(env, terms))

        return fn

    latches = [
        LatchSpec("q%d" % index, next_q(index, make_garbage_terms()))
        for index in range(bits)
    ]
    latches.extend(
        LatchSpec("s%d" % index, next_s(index, make_garbage_terms()))
        for index in range(bits)
    )
    return FsmSpec(
        name="redc%d" % seed,
        inputs=("en", "skip"),
        latches=tuple(latches),
        outputs=(OutputSpec("top", "q%d" % (bits - 1)),),
    )


# ----------------------------------------------------------------------
# Pseudo-random decoded controllers (the s* stand-ins)
# ----------------------------------------------------------------------
@deterministic
def random_controller(
    seed: int,
    state_bits: int,
    input_bits: int,
    terms_per_function: int = 3,
    literals_per_term: int = 3,
    num_outputs: int = 2,
) -> FsmSpec:
    """A deterministic pseudo-random Moore/Mealy controller.

    Next-state functions are random sums of products over the state and
    input literals — the texture of decoded control logic in the ISCAS
    s-series benchmarks.  The same seed always yields the same machine.
    """
    rng = random.Random(seed)
    signal_names = ["w%d" % index for index in range(input_bits)] + [
        "y%d" % index for index in range(state_bits)
    ]

    def random_sop() -> str:
        terms = []
        for _ in range(terms_per_function):
            width = rng.randint(2, literals_per_term)
            chosen = rng.sample(signal_names, min(width, len(signal_names)))
            literals = [
                name if rng.random() < 0.5 else "~" + name for name in chosen
            ]
            terms.append("(" + " & ".join(literals) + ")")
        return " | ".join(terms)

    latches = tuple(
        LatchSpec("y%d" % index, random_sop(), init=bool(rng.getrandbits(1)))
        for index in range(state_bits)
    )
    outputs = tuple(
        OutputSpec("o%d" % index, random_sop()) for index in range(num_outputs)
    )
    return FsmSpec(
        name="ctrl_s%d" % seed,
        inputs=tuple("w%d" % index for index in range(input_bits)),
        latches=latches,
        outputs=outputs,
    )
