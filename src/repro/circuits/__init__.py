"""Synthetic benchmark machines standing in for the paper's suite.

The paper runs ``verify_fsm`` on s344, s386, s510, s641, s820, s953,
s1238, s1488, scf, styr, tbk, mult16b, cbp.32.4, minmax5 and tlc.  The
original BLIF files are not redistributable here, so
:mod:`repro.circuits.generators` provides deterministic synthetic
machines from the same families — counters, shifters, controllers with
pseudo-random decoded next-state logic (the s* circuits), a traffic
light controller (tlc), a min/max tracker (minmax5), a serial
multiplier (mult16b) and a carry-propagate accumulator (cbp) — scaled
so pure-Python BDD traversal finishes in seconds.  What matters for the
reproduction is the *stream of minimization instances* the traversal
produces, not the exact circuit netlists; see DESIGN.md.
"""

from repro.circuits.generators import (
    counter,
    gray_counter,
    shift_register,
    lfsr,
    johnson_counter,
    traffic_light_controller,
    minmax_tracker,
    serial_multiplier,
    carry_propagate_accumulator,
    round_robin_arbiter,
    random_controller,
    redundant_counter,
)
from repro.circuits.suite import (
    BENCHMARK_SUITE,
    QUICK_SUITE,
    benchmark_spec,
    suite_specs,
)

__all__ = [
    "counter",
    "gray_counter",
    "shift_register",
    "lfsr",
    "johnson_counter",
    "traffic_light_controller",
    "minmax_tracker",
    "serial_multiplier",
    "carry_propagate_accumulator",
    "round_robin_arbiter",
    "random_controller",
    "redundant_counter",
    "BENCHMARK_SUITE",
    "QUICK_SUITE",
    "benchmark_spec",
    "suite_specs",
]
