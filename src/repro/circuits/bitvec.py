"""Small bit-vector helpers over Function lists (LSB first).

Used by the circuit generators to describe arithmetic next-state logic
(ripple-carry addition, comparison, multiplexing) at the word level.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bdd.function import Function


def ripple_add(
    a: Sequence[Function], b: Sequence[Function], carry_in: Function
) -> Tuple[List[Function], Function]:
    """Ripple-carry addition; returns (sum bits, carry out)."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    carry = carry_in
    total: List[Function] = []
    for bit_a, bit_b in zip(a, b):
        total.append(bit_a ^ bit_b ^ carry)
        carry = (bit_a & bit_b) | (carry & (bit_a ^ bit_b))
    return total, carry


def increment(
    bits: Sequence[Function], enable: Function
) -> List[Function]:
    """Add ``enable`` (0 or 1) to a word, dropping the carry out."""
    carry = enable
    result: List[Function] = []
    for bit in bits:
        result.append(bit ^ carry)
        carry = bit & carry
    return result


def less_than(a: Sequence[Function], b: Sequence[Function]) -> Function:
    """Unsigned ``a < b`` (LSB-first operands of equal width)."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    result = ~(a[0] | ~a[0])  # constant false in a's manager
    for bit_a, bit_b in zip(a, b):  # LSB to MSB
        result = (~bit_a & bit_b) | ((bit_a.iff(bit_b)) & result)
    return result


def mux_word(
    select: Function, when_true: Sequence[Function], when_false: Sequence[Function]
) -> List[Function]:
    """Word-level 2:1 multiplexer."""
    if len(when_true) != len(when_false):
        raise ValueError("operand widths differ")
    return [
        select.ite(bit_true, bit_false)
        for bit_true, bit_false in zip(when_true, when_false)
    ]


def equal_word(a: Sequence[Function], b: Sequence[Function]) -> Function:
    """Bitwise equality of two words."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    result = a[0] | ~a[0]  # constant true
    for bit_a, bit_b in zip(a, b):
        result = result & bit_a.iff(bit_b)
    return result


def rotate_left(bits: Sequence[Function]) -> List[Function]:
    """One-position left rotation (index 0 receives the top bit)."""
    return [bits[-1]] + list(bits[:-1])
