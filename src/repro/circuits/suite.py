"""The benchmark suite: paper names mapped to synthetic machines.

Sizes are scaled so that a full self-equivalence traversal of every
machine finishes in seconds under pure-Python BDDs while still
producing minimization instances in both of the paper's interesting
regimes (sparse and dense care-set onsets).  The seeds of the s-series
controllers follow the benchmark numbers for memorability.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.fsm.machine import FsmSpec
from repro.circuits.generators import (
    carry_propagate_accumulator,
    counter,
    gray_counter,
    johnson_counter,
    lfsr,
    minmax_tracker,
    random_controller,
    redundant_counter,
    round_robin_arbiter,
    serial_multiplier,
    shift_register,
    traffic_light_controller,
)

#: name -> zero-argument factory for the full experiment suite.
#:
#: The larger s-series circuits are modeled as redundant-encoding
#: machines (synthesized logic with arbitrary values on unreachable
#: codes — the structure responsible for the paper's large f_orig
#: reductions); the smaller ones as pseudo-random decoded controllers.
BENCHMARK_SUITE: Dict[str, Callable[[], FsmSpec]] = {
    "s344": lambda: redundant_counter(344, bits=4, garbage_terms=4),
    "s386": lambda: random_controller(386, state_bits=6, input_bits=5),
    "s510": lambda: random_controller(510, state_bits=6, input_bits=4),
    "s641": lambda: redundant_counter(641, bits=5, garbage_terms=5),
    "s820": lambda: random_controller(820, state_bits=5, input_bits=6),
    "s953": lambda: redundant_counter(953, bits=5, garbage_terms=6),
    "s1238": lambda: random_controller(
        1238, state_bits=8, input_bits=5, terms_per_function=4
    ),
    "s1488": lambda: random_controller(
        1488, state_bits=6, input_bits=6, terms_per_function=4
    ),
    "scf": lambda: random_controller(
        907, state_bits=7, input_bits=5, num_outputs=4
    ),
    "styr": lambda: random_controller(524, state_bits=5, input_bits=6),
    "tbk": lambda: random_controller(
        1116, state_bits=8, input_bits=3, literals_per_term=4
    ),
    "mult16b": lambda: serial_multiplier(3),
    "cbp.32.4": lambda: carry_propagate_accumulator(6, 3),
    "minmax5": lambda: minmax_tracker(3),
    "tlc": lambda: traffic_light_controller(3),
}

#: A fast subset used by the pytest benchmarks (seconds, not minutes).
QUICK_SUITE: Tuple[str, ...] = ("s344", "s386", "s820", "styr", "tlc", "minmax5")

#: Extra machines exercised by tests and examples (not in the paper).
EXTRA_MACHINES: Dict[str, Callable[[], FsmSpec]] = {
    "count4": lambda: counter(4),
    "gray4": lambda: gray_counter(4),
    "shift5": lambda: shift_register(5),
    "lfsr5": lambda: lfsr(5),
    "johnson4": lambda: johnson_counter(4),
    "arb4": lambda: round_robin_arbiter(4),
}


def benchmark_spec(name: str) -> FsmSpec:
    """Instantiate a suite machine by its paper name."""
    try:
        factory = BENCHMARK_SUITE[name]
    except KeyError:
        try:
            factory = EXTRA_MACHINES[name]
        except KeyError:
            raise KeyError(
                "unknown benchmark %r; known: %s"
                % (name, ", ".join(sorted(BENCHMARK_SUITE)))
            ) from None
    return factory()


def suite_specs(names=None) -> List[Tuple[str, FsmSpec]]:
    """Materialize (name, spec) pairs, defaulting to the full suite."""
    if names is None:
        names = list(BENCHMARK_SUITE)
    return [(name, benchmark_spec(name)) for name in names]
