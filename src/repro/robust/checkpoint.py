"""JSONL checkpoint journal for experiment sweeps.

``run_heuristics`` appends one JSON object per completed
:class:`~repro.experiments.harness.CallResult` to the journal the
moment it is measured, so a sweep killed at call *k* keeps calls
``0..k-1`` on disk.  Re-running with ``resume=True`` loads the journal
and skips every already-measured call — replayed results are bitwise
identical (sizes, failures, runtimes all come from the journal, not
from re-measurement), so an interrupted-then-resumed sweep reports the
same numbers as an uninterrupted one.

File format
-----------

One JSON object per line::

    {"version": 1, "benchmark": "tlc", "iteration": 3, "f_size": 17,
     "onset_fraction": 0.03125, "sizes": {"constrain": 9, "osm_bt": null},
     "runtimes": {"constrain": 0.0012, "osm_bt": 0.4},
     "min_size": 9, "lower_bound": 7,
     "failures": {"osm_bt": "NodeBudgetExceeded: ..."}}

``null`` sizes mark heuristics that failed on that call; the reason is
in ``failures``.  An optional ``stats`` object maps each heuristic to
its per-cell :meth:`Manager.statistics` delta (absent in journals
written before the field existed — loading tolerates that).  The journal key is ``(benchmark, ordinal)`` where
the ordinal is the record's position within its benchmark's call
sequence — ``iteration`` alone is NOT unique (the frontier call and
the image calls recorded inside one fixpoint step share an iteration
number).  Call collection is deterministic and records are appended
in measurement order, so per-benchmark line order reproduces the
ordinal exactly across runs.

Any malformed line raises :class:`CheckpointError` naming the line
number; the CLI turns that into a clean exit status 2.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Tuple

from repro.analysis.flow import deterministic

#: Journal schema version; bumped on incompatible format changes.
CHECKPOINT_VERSION = 1

#: Fields every journal record must carry.
REQUIRED_FIELDS = (
    "benchmark",
    "iteration",
    "f_size",
    "onset_fraction",
    "sizes",
    "runtimes",
    "min_size",
)


class CheckpointError(Exception):
    """A checkpoint journal is malformed or incompatible."""


#: Journal key type: (benchmark, per-benchmark call ordinal).
Key = Tuple[str, int]


@deterministic
def result_to_record(result) -> dict:
    """Serialize a :class:`CallResult` to a journal record (a dict)."""
    return {
        "version": CHECKPOINT_VERSION,
        "benchmark": result.benchmark,
        "iteration": result.iteration,
        "f_size": result.f_size,
        "onset_fraction": result.onset_fraction,
        "sizes": result.sizes,
        "runtimes": result.runtimes,
        "min_size": result.min_size,
        "lower_bound": result.lower_bound,
        "failures": result.failures,
        "stats": result.stats,
    }


def record_to_result(record: dict):
    """Deserialize one journal record back into a ``CallResult``.

    Raises :class:`CheckpointError` on schema violations.
    """
    from repro.experiments.harness import CallResult

    if not isinstance(record, dict):
        raise CheckpointError(
            "journal record is %s, expected a JSON object"
            % type(record).__name__
        )
    version = record.get("version", CHECKPOINT_VERSION)
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            "journal version %r is not the supported version %d"
            % (version, CHECKPOINT_VERSION)
        )
    missing = [field for field in REQUIRED_FIELDS if field not in record]
    if missing:
        raise CheckpointError(
            "journal record is missing field(s): %s" % ", ".join(missing)
        )
    sizes = record["sizes"]
    runtimes = record["runtimes"]
    failures = record.get("failures") or {}
    # Optional since the field post-dates version 1 journals; absent or
    # null means "no snapshots recorded", not a schema violation.
    stats = record.get("stats") or {}
    if not isinstance(sizes, dict) or not isinstance(runtimes, dict):
        raise CheckpointError("'sizes' and 'runtimes' must be JSON objects")
    if not isinstance(failures, dict):
        raise CheckpointError("'failures' must be a JSON object")
    if not isinstance(stats, dict):
        raise CheckpointError("'stats' must be a JSON object")
    for name, size in sizes.items():
        if size is not None and not isinstance(size, int):
            raise CheckpointError(
                "size of %r is %r, expected an integer or null" % (name, size)
            )
    try:
        return CallResult(
            benchmark=str(record["benchmark"]),
            iteration=int(record["iteration"]),
            f_size=int(record["f_size"]),
            onset_fraction=float(record["onset_fraction"]),
            sizes=dict(sizes),
            runtimes={name: float(value) for name, value in runtimes.items()},
            min_size=int(record["min_size"]),
            lower_bound=(
                None
                if record.get("lower_bound") is None
                else int(record["lower_bound"])
            ),
            failures={str(k): str(v) for k, v in failures.items()},
            stats={
                str(name): {
                    str(key): int(value)
                    for key, value in counters.items()
                }
                for name, counters in stats.items()
            },
        )
    except (AttributeError, TypeError, ValueError) as error:
        raise CheckpointError(
            "journal record has ill-typed fields: %s" % error
        ) from None


class Checkpoint:
    """One JSONL journal file of completed call measurements.

    Durability model: :meth:`append` fsyncs each record (set
    ``fsync=False`` to trade the crash-after-power-loss guarantee for
    speed in tests), and every whole-file rewrite
    (:meth:`trim_partial`, :meth:`truncate`) goes through a temp file
    in the same directory plus :func:`os.replace`, so a kill at ANY
    instant leaves either the old journal or the new one on disk —
    never a half-written file.  In-place ``write_text`` would truncate
    first and write second; a kill in between destroys the very
    journal the repair was trying to save.
    """

    def __init__(self, path, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync

    def _sync(self, fileno: int) -> None:
        if self.fsync:
            os.fsync(fileno)

    def _sync_dir(self) -> None:
        """Flush the directory entry so a rename itself is durable."""
        if not self.fsync:
            return
        try:
            dir_fd = os.open(str(self.path.parent), os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def _write_atomic(self, text: str) -> None:
        """Replace the journal's contents in one atomic step."""
        fd, tmp_name = tempfile.mkstemp(
            prefix=self.path.name + ".", suffix=".tmp",
            dir=str(self.path.parent),
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.flush()
                self._sync(handle.fileno())
            os.replace(tmp_name, str(self.path))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._sync_dir()

    def has_journal(self) -> bool:
        """True iff the journal file exists on disk."""
        return self.path.is_file()

    def load(self) -> Dict[Key, "object"]:
        """Parse the journal into ``{(benchmark, ordinal): CallResult}``.

        The ordinal is the record's position among its benchmark's
        records, counted in line order — ``iteration`` is not unique
        (frontier and image calls share iteration numbers), but the
        sweep both measures and journals calls in a deterministic
        order, so line order IS call order.  A missing file is an empty
        journal (resuming a sweep that never started is a plain fresh
        start).  A malformed line raises :class:`CheckpointError` with
        its line number.
        """
        completed: Dict[Key, object] = {}
        ordinals: Dict[str, int] = {}
        if not self.path.is_file():
            return completed
        with open(self.path, "r") as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise CheckpointError(
                        "%s:%d: not valid JSON: %s"
                        % (self.path, line_number, error.msg)
                    ) from None
                try:
                    result = record_to_result(record)
                except CheckpointError as error:
                    raise CheckpointError(
                        "%s:%d: %s" % (self.path, line_number, error)
                    ) from None
                ordinal = ordinals.get(result.benchmark, 0)
                ordinals[result.benchmark] = ordinal + 1
                completed[(result.benchmark, ordinal)] = result
        return completed

    def append(self, result) -> None:
        """Durably append one completed result to the journal.

        Open-write-fsync-close per record: a kill between calls loses
        nothing (the fsync pushed every prior record to disk, not just
        to the page cache), and a kill mid-write loses at most the
        final partial line, which :meth:`load` would reject — callers
        resuming after a crash should :meth:`trim_partial` first.
        """
        record = result_to_record(result)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            handle.flush()
            self._sync(handle.fileno())

    def trim_partial(self) -> bool:
        """Drop a trailing partial line left by a mid-write kill.

        Returns True if anything was trimmed.  Only the *final* line is
        ever considered: earlier malformed lines are real corruption and
        still raise from :meth:`load`.  The rewrite is atomic (temp
        file + rename): a kill mid-repair leaves the original journal
        intact instead of a second, worse truncation.
        """
        if not self.path.is_file():
            return False
        text = self.path.read_text()
        if not text or text.endswith("\n"):
            return False
        kept, _, partial = text.rpartition("\n")
        try:
            json.loads(partial)
        except json.JSONDecodeError:
            self._write_atomic(kept + "\n" if kept else "")
            return True
        return False

    def truncate(self) -> None:
        """Start the journal over (fresh, non-resumed sweep); atomic."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._write_atomic("")

    def __repr__(self) -> str:
        return "Checkpoint(%r)" % str(self.path)
