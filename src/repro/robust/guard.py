"""Guarded heuristic execution with graceful degradation.

:func:`guard` wraps any heuristic of the registry signature
``heuristic(manager, f, c) -> ref`` so that it *cannot* take down its
caller: on budget exhaustion, recursion failure, invariant violation or
a broken cover contract, the wrapper returns the identity cover
``g = f`` — always correct by Definition 2 (``f·c ≤ f ≤ f + ¬c``) —
and records the failure reason instead of raising.

Degradation policy
------------------

* :class:`~repro.analysis.errors.BudgetExceeded` (including the typed
  recursion-depth overruns) and raw :class:`RecursionError` are
  *transient*: with a bigger budget the heuristic might succeed, so
  the guard optionally retries on a ladder of escalating budgets
  before falling back.
* :class:`~repro.analysis.errors.InvariantError` and
  :class:`~repro.analysis.errors.ContractError` are *deterministic*
  bugs: retrying cannot help, so the guard degrades immediately.
* Any other exception is a programming error and propagates — the
  guard must never mask genuine crashes as degradations.

``REPRO_GUARD=1`` opts the whole library in:
:func:`repro.core.registry.get_heuristic` then returns guarded
wrappers without code changes, mirroring ``REPRO_CHECK`` for the
contract audits.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence, Tuple

from repro.analysis.errors import BudgetExceeded, ContractError, InvariantError
from repro.bdd.manager import Manager
from repro.robust.governor import Budget, governed

#: Environment variable globally enabling guarded heuristic dispatch.
ENV_VAR = "REPRO_GUARD"

#: Exception types a guarded execution recovers from.  Everything else
#: propagates: the guard degrades on *resource* and *contract* failures
#: only, never on genuine programming errors.
RECOVERABLE_ERRORS: Tuple[type, ...] = (
    BudgetExceeded,
    RecursionError,
    InvariantError,
    ContractError,
)

#: Budget-scale ladder used when ``escalate=True`` and none is given.
DEFAULT_LADDER: Tuple[float, ...] = (1.0, 4.0, 16.0)


def guarding_enabled() -> bool:
    """True iff ``REPRO_GUARD=1``: guard every dispatched heuristic."""
    return os.environ.get(ENV_VAR) == "1"


def describe_error(error: BaseException) -> str:
    """One-line failure reason, e.g. ``NodeBudgetExceeded: ...``."""
    text = str(error)
    name = type(error).__name__
    return "%s: %s" % (name, text) if text else name


class GuardedHeuristic:
    """A heuristic wrapper that degrades instead of raising.

    Callable with the registry signature ``(manager, f, c) -> ref``.
    After each call, :attr:`last_failure` holds the failure reason (or
    ``None`` on clean success) and :attr:`failures` counts degradations
    over the wrapper's lifetime.

    Parameters
    ----------
    heuristic:
        The wrapped callable.
    name:
        Display name for failure reports (defaults to ``__name__``).
    budget:
        Optional :class:`~repro.robust.governor.Budget` enforced around
        every attempt.
    ladder:
        Scale factors applied to ``budget`` on successive attempts
        (default: a single attempt at scale 1).  Ignored without a
        budget — an unbudgeted recursion failure is deterministic, so
        there is nothing to escalate.
    verify:
        Check the result covers ``[f, c]`` (two BDD operations); a
        non-cover degrades like any contract violation.  On by default:
        a guard that can return wrong answers is not a guard.
    flush_before_verify:
        Flush the computed tables before the cover check, so the check
        cannot be fooled by a corrupted cache (used by fault drills).
    on_failure:
        Optional callback ``(name, reason) -> None`` invoked on every
        degradation.
    """

    def __init__(
        self,
        heuristic: Callable[[Manager, int, int], int],
        name: Optional[str] = None,
        budget: Optional[Budget] = None,
        ladder: Optional[Sequence[float]] = None,
        verify: bool = True,
        flush_before_verify: bool = False,
        on_failure: Optional[Callable[[str, str], None]] = None,
    ):
        self.heuristic = heuristic
        self.name = name or getattr(heuristic, "__name__", "heuristic")
        self.__name__ = "guarded:%s" % self.name
        self.__doc__ = getattr(heuristic, "__doc__", None)
        self.budget = budget
        if ladder is None:
            ladder = (1.0,)
        if not ladder:
            raise ValueError("ladder must contain at least one scale factor")
        self.ladder: Tuple[float, ...] = tuple(ladder)
        self.verify = verify
        self.flush_before_verify = flush_before_verify
        self.on_failure = on_failure
        self.calls = 0
        self.failures = 0
        #: Total ladder rungs executed over the wrapper's lifetime.
        self.attempts = 0
        #: Ladder rungs executed by the most recent call.
        self.last_attempts = 0
        self.last_failure: Optional[str] = None

    def __call__(self, manager: Manager, f: int, c: int) -> int:
        self.calls += 1
        self.last_failure = None
        self.last_attempts = 0
        reason = "no attempt made"
        # Without a budget, escalation is meaningless: run once.
        factors = self.ladder if self.budget is not None else (1.0,)
        for rung, factor in enumerate(factors):
            attempt_budget = (
                self.budget.scaled(factor)
                if self.budget is not None
                else None
            )
            self.attempts += 1
            self.last_attempts = rung + 1
            try:
                with governed(manager, attempt_budget):
                    cover = self.heuristic(manager, f, c)
                self._verify_cover(manager, f, c, cover)
            except (InvariantError, ContractError) as error:
                # Deterministic failure: a bigger budget cannot help.
                reason = self._annotate(
                    describe_error(error), rung, attempt_budget
                )
                break
            except BudgetExceeded as error:
                reason = self._annotate(
                    describe_error(error), rung, attempt_budget
                )
            except RecursionError:
                reason = self._annotate(
                    "RecursionError: interpreter recursion limit exceeded",
                    rung,
                    attempt_budget,
                )
            else:
                return cover
        self.failures += 1
        self.last_failure = reason
        if self.on_failure is not None:
            self.on_failure(self.name, reason)
        return f

    def _annotate(
        self, reason: str, rung: int, attempt_budget: Optional[Budget]
    ) -> str:
        """Tag a failure reason with the ladder rung and budget it hit.

        Without a budget there is exactly one unbudgeted attempt and
        nothing to disambiguate, so the reason passes through bare.
        """
        if attempt_budget is None:
            return reason
        return "%s [rung %d/%d: %s]" % (
            reason,
            rung + 1,
            len(self.ladder),
            attempt_budget.describe(),
        )

    def _verify_cover(
        self, manager: Manager, f: int, c: int, cover: int
    ) -> None:
        if not self.verify:
            return
        if self.flush_before_verify:
            manager.clear_caches()
        from repro.bdd.cover import is_def2_cover

        if not is_def2_cover(manager, f, c, cover):
            raise ContractError(
                "guarded heuristic %r returned a non-cover" % self.name
            )

    def __repr__(self) -> str:
        budget = self.budget.describe() if self.budget else "unlimited"
        return "GuardedHeuristic(%s, budget=%s)" % (self.name, budget)


def guard(
    heuristic: Callable[[Manager, int, int], int],
    name: Optional[str] = None,
    budget: Optional[Budget] = None,
    escalate: bool = False,
    ladder: Optional[Sequence[float]] = None,
    verify: Optional[bool] = None,
    flush_before_verify: bool = False,
    on_failure: Optional[Callable[[str, str], None]] = None,
) -> GuardedHeuristic:
    """Wrap ``heuristic`` for graceful degradation (see module docs).

    ``escalate=True`` retries budget trips on :data:`DEFAULT_LADDER`
    unless an explicit ``ladder`` is given.  Idempotent on an already
    guarded heuristic when no override disagrees with its existing
    configuration; a *conflicting* override without a ``budget`` raises
    :class:`ValueError` — the alternative, silently returning the
    wrapper unchanged, would leave the caller believing its settings
    took effect.  Passing a ``budget`` always builds a fresh wrapper.
    """
    if isinstance(heuristic, GuardedHeuristic) and budget is None:
        conflicts = []
        if escalate and tuple(DEFAULT_LADDER) != heuristic.ladder:
            conflicts.append("escalate")
        if ladder is not None and tuple(ladder) != heuristic.ladder:
            conflicts.append("ladder")
        if verify is not None and verify != heuristic.verify:
            conflicts.append("verify")
        if flush_before_verify and not heuristic.flush_before_verify:
            conflicts.append("flush_before_verify")
        if on_failure is not None and on_failure is not heuristic.on_failure:
            conflicts.append("on_failure")
        if name is not None and name != heuristic.name:
            conflicts.append("name")
        if conflicts:
            raise ValueError(
                "guard() cannot re-configure %r without a budget: "
                "conflicting override(s): %s.  Pass a budget to build a "
                "fresh wrapper, or guard the raw heuristic instead."
                % (heuristic, ", ".join(conflicts))
            )
        return heuristic
    if ladder is None and escalate:
        ladder = DEFAULT_LADDER
    return GuardedHeuristic(
        heuristic,
        name=name,
        budget=budget,
        ladder=ladder,
        verify=True if verify is None else verify,
        flush_before_verify=flush_before_verify,
        on_failure=on_failure,
    )
