"""Fault tolerance: resource budgets, guarded heuristics, checkpoints.

The paper's experiments (§4.1.1) replay *every* intercepted
minimization call through all Table 2/3 heuristics.  One pathological
``[f, c]`` instance — a quadratic blow-up in ``constrain``, the
unbounded growth of Proposition 4, a Python ``RecursionError`` on a
deep BDD — must yield a recorded failure, never a lost sweep.  This
package provides the four layers that guarantee it:

:mod:`repro.robust.governor`
    A :class:`Budget` of node creations, ITE steps and wall-clock time,
    enforced through the manager's step hook; exceeding any bound
    raises a typed :class:`repro.analysis.errors.BudgetExceeded`.
:mod:`repro.robust.guard`
    :func:`guard` wraps any heuristic so budget trips, recursion
    failures and invariant violations degrade to the always-valid
    identity cover ``g = f`` (Definition 2: ``f·c ≤ f ≤ f + ¬c``),
    optionally retrying on a ladder of escalating budgets.
:mod:`repro.robust.checkpoint`
    A JSONL journal of completed measurements so a killed Table 3/4
    sweep resumes where it died (``repro-bdd experiments --resume``).
:mod:`repro.robust.faults`
    :class:`FaultyManager` injects deterministic failures at scheduled
    operation counts, proving the degradation paths under test and in
    manual ``repro-bdd inject`` drills.
:mod:`repro.robust.chaos`
    Seeded chaos schedules (worker SIGKILL, stalls, corrupt wire
    payloads, memory spikes) composed with a closed-loop load
    generator over the serve-layer gateway — ``repro-bdd loadtest``
    asserts every completed response is a valid Definition 2 cover and
    every rejection is typed, under every fault schedule.

See ``docs/robustness.md`` for the full degradation semantics.
"""

from repro.analysis.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    NodeBudgetExceeded,
    RecursionBudgetExceeded,
    StepBudgetExceeded,
)
from repro.robust.governor import Budget, Governor, governed
from repro.robust.guard import (
    RECOVERABLE_ERRORS,
    GuardedHeuristic,
    guard,
    guarding_enabled,
)
from repro.robust.checkpoint import Checkpoint, CheckpointError
from repro.robust.chaos import (
    FAULT_SCHEDULES,
    ChaosEvent,
    ChaosInjector,
    ChaosSchedule,
    LoadConfig,
    LoadReport,
    named_schedule,
    run_loadtest,
)
from repro.robust.faults import (
    FAULT_BUDGET,
    FAULT_CACHE,
    FAULT_RECURSION,
    FaultPlan,
    FaultyManager,
)

__all__ = [
    "ChaosEvent",
    "ChaosSchedule",
    "ChaosInjector",
    "LoadConfig",
    "LoadReport",
    "FAULT_SCHEDULES",
    "named_schedule",
    "run_loadtest",
    "Budget",
    "Governor",
    "governed",
    "GuardedHeuristic",
    "guard",
    "guarding_enabled",
    "RECOVERABLE_ERRORS",
    "Checkpoint",
    "CheckpointError",
    "FaultPlan",
    "FaultyManager",
    "FAULT_BUDGET",
    "FAULT_RECURSION",
    "FAULT_CACHE",
    "BudgetExceeded",
    "NodeBudgetExceeded",
    "StepBudgetExceeded",
    "DeadlineExceeded",
    "RecursionBudgetExceeded",
]
