"""Seeded chaos schedules and a closed-loop load generator.

The serve layer's promise is easy to state and hard to trust: *every*
completed response is a valid Definition 2 cover and *every* rejection
is typed and bounded in time, no matter what the workers are doing.
This module earns that trust the only way it can be earned — by
breaking the workers on purpose, under load, and checking the promise
on every single response:

**Deterministic chaos schedules.**  A :class:`ChaosSchedule` is a set
of :class:`ChaosEvent`\\ s keyed on the **admission sequence number**,
not wall clock — the same seed and request count always injects the
same fault before the same request, the same
determinism-over-wall-clock choice as
:class:`repro.robust.faults.FaultPlan` and the serve breakers.  Four
fault kinds cover the serve layer's failure surface:

``kill``
    SIGKILL a live worker (the supervisor/respawn path).
``stall``
    SIGSTOP a worker for a bounded interval, then SIGCONT (the
    straggler path: watchdog kills and hedged retries).
``corrupt``
    Flip one byte of the request's wire payload (the CRC-32 /
    :class:`~repro.bdd.wire.WireError` path).
``spike``
    Swap the request's method for a heuristic that allocates a large
    block before answering (the memory-pressure / RLIMIT path).

**Closed-loop load generator.**  :func:`run_loadtest` drives a
:class:`~repro.serve.gateway.MinimizationGateway` with ``concurrency``
closed-loop clients over deterministic, seeded DNF instances, applies
the schedule's faults at their sequence numbers, and validates every
reply in a scratch manager against the *original* (uncorrupted)
request.  The resulting :class:`LoadReport` records p50/p99 latency,
throughput, and shed rate, and :meth:`LoadReport.violations` turns the
serve-layer promise into a pass/fail gate — exposed as
``repro-bdd loadtest`` and run in CI.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.cover import is_def2_cover
from repro.bdd.manager import Manager
from repro.bdd.wire import deserialize, deserialize_instance, serialize_instance
from repro.core.registry import register_heuristic, unregister_heuristic
from repro.obs import trace as obs_trace
from repro.serve.breaker import BreakerBoard
from repro.serve.gateway import (
    DeadlineExpired,
    GatewayClosed,
    GatewayError,
    HedgePolicy,
    MinimizationGateway,
    OverloadedError,
)
from repro.serve.pool import MinimizationPool

#: Chaos event kinds.
CHAOS_KILL = "kill"
CHAOS_STALL = "stall"
CHAOS_CORRUPT = "corrupt"
CHAOS_SPIKE = "spike"

CHAOS_KINDS = (CHAOS_KILL, CHAOS_STALL, CHAOS_CORRUPT, CHAOS_SPIKE)

#: The memory-spike heuristic's registry name.
SPIKE_METHOD = "chaos_spike"

#: Bytes the spike heuristic allocates before answering.  A module
#: global (not a closure) so forked workers inherit the value set by
#: :func:`run_loadtest` before the pool spawned.
SPIKE_BYTES = 192 << 20

#: Named fault schedules: per-kind injection rates (fraction of
#: requests).  ``calm`` is the fault-free control.
FAULT_SCHEDULES: Dict[str, Dict[str, float]] = {
    "calm": {},
    "kills": {CHAOS_KILL: 0.05},
    "stalls": {CHAOS_STALL: 0.04},
    "corrupt": {CHAOS_CORRUPT: 0.10},
    "spikes": {CHAOS_SPIKE: 0.05},
    "mixed": {
        CHAOS_KILL: 0.02,
        CHAOS_STALL: 0.02,
        CHAOS_CORRUPT: 0.05,
        CHAOS_SPIKE: 0.02,
    },
}


def _memory_spike(manager: Manager, f: int, c: int) -> int:
    """A heuristic that allocates ``SPIKE_BYTES`` then answers ``f``.

    The identity is always a valid cover, so a *surviving* spike
    request must still verify; a spike that trips the worker's
    RLIMIT_AS dies on the MemoryError path instead.  Either way the
    caller sees a valid cover or a typed degradation.
    """
    block = b"\xff" * SPIKE_BYTES
    return f if block else f


@dataclass(frozen=True)
class ChaosEvent:
    """Inject ``kind`` immediately before admission number ``at_request``."""

    at_request: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                "unknown chaos kind %r; expected one of %s"
                % (self.kind, ", ".join(CHAOS_KINDS))
            )
        if self.at_request < 0:
            raise ValueError("at_request must be >= 0")


@dataclass(frozen=True)
class ChaosSchedule:
    """A named, fully deterministic set of chaos events."""

    name: str
    events: Tuple[ChaosEvent, ...] = ()
    seed: int = 0

    def due(self, seq: int) -> List[str]:
        """Fault kinds to inject before admission number ``seq``."""
        return [e.kind for e in self.events if e.at_request == seq]

    @property
    def counts(self) -> Dict[str, int]:
        """Scheduled events per kind (zero-filled for absent kinds)."""
        totals = {kind: 0 for kind in CHAOS_KINDS}
        for event in self.events:
            totals[event.kind] += 1
        return totals

    @classmethod
    def generate(
        cls,
        name: str,
        seed: int,
        requests: int,
        rates: Dict[str, float],
    ) -> "ChaosSchedule":
        """Sample a schedule from per-kind ``rates`` — deterministic in
        ``(seed, requests, rates)``: each kind draws its target count
        of distinct sequence numbers from a seeded RNG."""
        rng = random.Random(seed)
        events: List[ChaosEvent] = []
        for kind in CHAOS_KINDS:  # fixed order => reproducible draws
            rate = rates.get(kind, 0.0)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rate for %r must be in [0, 1]" % kind)
            count = min(requests, int(round(rate * requests)))
            if count <= 0:
                continue
            for at_request in sorted(rng.sample(range(requests), count)):
                events.append(ChaosEvent(at_request=at_request, kind=kind))
        events.sort(key=lambda e: (e.at_request, e.kind))
        return cls(name=name, events=tuple(events), seed=seed)


def named_schedule(name: str, seed: int, requests: int) -> ChaosSchedule:
    """Instantiate one of :data:`FAULT_SCHEDULES` for a request count."""
    if name not in FAULT_SCHEDULES:
        raise ValueError(
            "unknown schedule %r; available: %s"
            % (name, ", ".join(sorted(FAULT_SCHEDULES)))
        )
    return ChaosSchedule.generate(name, seed, requests, FAULT_SCHEDULES[name])


def corrupt_payload(payload: bytes, rng: random.Random) -> bytes:
    """Flip one byte of ``payload`` (CRC-32 must catch it downstream)."""
    if not payload:
        return payload
    index = rng.randrange(len(payload))
    corrupted = bytearray(payload)
    corrupted[index] ^= 0xFF
    return bytes(corrupted)


class ChaosInjector:
    """Applies kill/stall faults to a live pool's workers.

    Victim selection draws from a seeded RNG over the *sorted* live
    pid list — deterministic given the same pool state, and never
    dependent on wall clock.
    """

    def __init__(
        self,
        pool: MinimizationPool,
        seed: int = 0,
        stall_seconds: float = 0.5,
    ):
        self.pool = pool
        self.stall_seconds = stall_seconds
        self._rng = random.Random(seed)
        self._stopped: Dict[int, threading.Timer] = {}
        self._lock = threading.Lock()
        self.kills = 0
        self.stalls = 0

    def _victim(self) -> Optional[int]:
        pids = sorted(pid for pid in self.pool.worker_pids() if pid)
        if not pids:
            return None
        return self._rng.choice(pids)

    def kill_worker(self) -> Optional[int]:
        """SIGKILL one live worker; the pool must respawn it."""
        victim = self._victim()
        if victim is None:
            return None
        try:
            os.kill(victim, signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover - racing exit
            return None
        self.kills += 1
        return victim

    def stall_worker(self) -> Optional[int]:
        """SIGSTOP one worker, SIGCONT after ``stall_seconds``.

        While stopped the worker is a straggler: a request dispatched
        to it must be rescued by a hedge or killed by the watchdog.
        """
        victim = self._victim()
        if victim is None:
            return None
        try:
            os.kill(victim, signal.SIGSTOP)
        except ProcessLookupError:  # pragma: no cover - racing exit
            return None
        self.stalls += 1
        timer = threading.Timer(self.stall_seconds, self._resume, (victim,))
        timer.daemon = True
        with self._lock:
            self._stopped[victim] = timer
        timer.start()
        return victim

    def _resume(self, pid: int) -> None:
        with self._lock:
            self._stopped.pop(pid, None)
        try:
            os.kill(pid, signal.SIGCONT)
        except ProcessLookupError:
            pass  # watchdog already reaped it

    def release(self) -> None:
        """Cancel pending timers and SIGCONT every stopped worker."""
        with self._lock:
            stopped = dict(self._stopped)
            self._stopped.clear()
        for pid, timer in stopped.items():
            timer.cancel()
            try:
                os.kill(pid, signal.SIGCONT)
            except ProcessLookupError:
                pass


@dataclass(frozen=True)
class LoadConfig:
    """Knobs for one :func:`run_loadtest` run (all deterministic)."""

    requests: int = 200
    concurrency: int = 8
    workers: int = 2
    queue_limit: int = 32
    deadline: float = 2.0
    kill_grace: float = 0.25
    seed: int = 2026
    methods: Tuple[str, ...] = ("osm_bt", "constrain", "restrict", "f_and_c")
    num_vars: int = 6
    instance_pool: int = 8
    stall_seconds: float = 0.5
    hedge: bool = True
    memory_limit: Optional[int] = None
    probe_interval: Optional[float] = 0.5
    spike_bytes: int = SPIKE_BYTES

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.instance_pool < 1:
            raise ValueError("instance_pool must be >= 1")
        if not self.methods:
            raise ValueError("methods must be non-empty")


#: Extra seconds of slack on top of the theoretical shed/latency bound
#: (scheduler jitter, respawn time).
BOUND_SLACK = 2.0


@dataclass
class LoadReport:
    """Outcome of one load run under one fault schedule."""

    schedule: str
    config: LoadConfig
    chaos_counts: Dict[str, int] = field(default_factory=dict)
    completed_ok: int = 0
    degraded: int = 0
    shed_overload: int = 0
    shed_expired: int = 0
    shed_closed: int = 0
    invalid_covers: int = 0
    untyped_rejections: int = 0
    unhandled_exceptions: int = 0
    injected_kills: int = 0
    injected_stalls: int = 0
    latencies: List[float] = field(default_factory=list)
    shed_latencies: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    gateway_stats: Dict[str, object] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return self.config.requests

    @property
    def finished(self) -> int:
        return self.completed_ok + self.degraded

    @property
    def shed(self) -> int:
        return self.shed_overload + self.shed_expired + self.shed_closed

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.finished / self.wall_seconds

    @property
    def p50(self) -> float:
        return _percentile(self.latencies, 0.50)

    @property
    def p99(self) -> float:
        return _percentile(self.latencies, 0.99)

    @property
    def max_shed_latency(self) -> float:
        return max(self.shed_latencies) if self.shed_latencies else 0.0

    def violations(
        self,
        max_p99: Optional[float] = None,
        max_shed_rate: Optional[float] = None,
    ) -> List[str]:
        """The serve-layer promise as a checklist; empty means it held."""
        problems = list(self.errors)
        if self.invalid_covers:
            problems.append(
                "%s: %d completed response(s) were not valid covers"
                % (self.schedule, self.invalid_covers)
            )
        if self.unhandled_exceptions:
            problems.append(
                "%s: %d unhandled exception(s) escaped the gateway"
                % (self.schedule, self.unhandled_exceptions)
            )
        if self.untyped_rejections:
            problems.append(
                "%s: %d rejection(s) were not typed GatewayErrors"
                % (self.schedule, self.untyped_rejections)
            )
        if self.finished + self.shed != self.requests:
            problems.append(
                "%s: %d request(s) unaccounted for (%d finished, %d shed)"
                % (
                    self.schedule,
                    self.requests - self.finished - self.shed,
                    self.finished,
                    self.shed,
                )
            )
        # Every shed must land within the request's own budget plus
        # the watchdog's grace: bounded-time rejection.
        bound = self.config.deadline + self.config.kill_grace + BOUND_SLACK
        if self.max_shed_latency > bound:
            problems.append(
                "%s: slowest shed took %.3fs (bound %.3fs)"
                % (self.schedule, self.max_shed_latency, bound)
            )
        if max_p99 is not None and self.p50 and self.p99 > max_p99:
            problems.append(
                "%s: p99 latency %.3fs exceeds bound %.3fs"
                % (self.schedule, self.p99, max_p99)
            )
        if max_shed_rate is not None and self.shed_rate > max_shed_rate:
            problems.append(
                "%s: shed rate %.1f%% exceeds bound %.1f%%"
                % (self.schedule, 100 * self.shed_rate, 100 * max_shed_rate)
            )
        return problems

    def to_record(self) -> Dict[str, object]:
        """JSON-serializable summary for ``BENCH_serve_load.json``."""
        pool_stats = self.gateway_stats.get("pool", {})
        return {
            "schedule": self.schedule,
            "requests": self.requests,
            "concurrency": self.config.concurrency,
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "deadline": self.config.deadline,
            "seed": self.config.seed,
            "chaos_counts": dict(self.chaos_counts),
            "injected_kills": self.injected_kills,
            "injected_stalls": self.injected_stalls,
            "completed_ok": self.completed_ok,
            "degraded": self.degraded,
            "shed_overload": self.shed_overload,
            "shed_expired": self.shed_expired,
            "shed_closed": self.shed_closed,
            "shed_rate": round(self.shed_rate, 4),
            "invalid_covers": self.invalid_covers,
            "untyped_rejections": self.untyped_rejections,
            "unhandled_exceptions": self.unhandled_exceptions,
            "p50_seconds": round(self.p50, 4),
            "p99_seconds": round(self.p99, 4),
            "max_shed_latency": round(self.max_shed_latency, 4),
            "throughput_rps": round(self.throughput, 2),
            "wall_seconds": round(self.wall_seconds, 3),
            "hedges": self.gateway_stats.get("hedges", 0),
            "hedge_wins": self.gateway_stats.get("hedge_wins", 0),
            "retries": self.gateway_stats.get("retries", 0),
            "supervisor_restarts": self.gateway_stats.get(
                "supervisor_restarts", 0
            ),
            "worker_kills": pool_stats.get("kills", 0),
            "worker_crashes": pool_stats.get("crashes", 0),
            "worker_restarts": pool_stats.get("worker_restarts", 0),
        }


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _build_payloads(config: LoadConfig) -> List[bytes]:
    """Pre-serialize a deterministic pool of ``[f, c]`` instances.

    Samples from the corpus framework's shared DNF builder so the load
    harness and ``repro.verify`` fuzz the same distribution.
    """
    from repro.verify.corpus import random_dnf_ref

    rng = random.Random(config.seed)
    payloads: List[bytes] = []
    for _ in range(config.instance_pool):
        manager = Manager(
            ["x%d" % index for index in range(config.num_vars)]
        )
        levels = [manager.var(level) for level in range(config.num_vars)]
        f = random_dnf_ref(manager, levels, rng, config.num_vars)
        c = random_dnf_ref(manager, levels, rng, config.num_vars)
        payloads.append(serialize_instance(manager, f, c))
    return payloads


def _validate_reply(request_payload: bytes, reply_payload) -> bool:
    """Is the reply a valid Definition 2 cover of the original request?

    Decodes the *uncorrupted* request into a scratch manager; a
    ``None`` reply payload means the caller's own ``f`` (the identity,
    always valid).
    """
    scratch, f, c = deserialize_instance(request_payload)
    if reply_payload is None:
        cover = f
    else:
        _, roots = deserialize(reply_payload, manager=scratch)
        cover = roots[0]
    return is_def2_cover(scratch, f, c, cover)


def run_loadtest(
    config: LoadConfig, schedule: ChaosSchedule
) -> LoadReport:
    """Drive a gateway with closed-loop load under ``schedule``.

    Deterministic inputs (instances, method choices, fault points) —
    the interleaving itself is of course scheduler-dependent, but every
    response is checked against invariants that must hold under *any*
    interleaving.
    """
    global SPIKE_BYTES
    SPIKE_BYTES = config.spike_bytes
    payloads = _build_payloads(config)
    report = LoadReport(
        schedule=schedule.name,
        config=config,
        chaos_counts=schedule.counts,
    )
    # Registered before the pool forks its workers so they inherit it.
    register_heuristic(SPIKE_METHOD, _memory_spike, replace=True)
    pool = MinimizationPool(
        workers=config.workers,
        deadline=config.deadline,
        kill_grace=config.kill_grace,
        memory_limit=config.memory_limit,
    )
    injector = ChaosInjector(
        pool, seed=config.seed, stall_seconds=config.stall_seconds
    )
    try:
        asyncio.run(_drive(config, schedule, payloads, pool, injector, report))
    finally:
        injector.release()
        pool.close()
        unregister_heuristic(SPIKE_METHOD)
    report.injected_kills = injector.kills
    report.injected_stalls = injector.stalls
    return report


async def _drive(
    config: LoadConfig,
    schedule: ChaosSchedule,
    payloads: List[bytes],
    pool: MinimizationPool,
    injector: ChaosInjector,
    report: LoadReport,
) -> None:
    gateway = MinimizationGateway(
        pool,
        queue_limit=config.queue_limit,
        board=BreakerBoard(),
        hedge=HedgePolicy(every=2) if config.hedge else None,
        probe_interval=config.probe_interval,
    )
    await gateway.start()
    counter = iter(range(config.requests))
    started = time.monotonic()

    async def client() -> None:
        loop = asyncio.get_running_loop()
        while True:
            seq = next(counter, None)
            if seq is None:
                return
            req_rng = random.Random(config.seed * 1_000_003 + seq)
            method = req_rng.choice(config.methods)
            payload = payloads[req_rng.randrange(len(payloads))]
            sent = payload
            for kind in schedule.due(seq):
                tracer = obs_trace.active()
                if tracer is not None:
                    # Tag the injection into the timeline: a killed or
                    # shed request's partial trace then sits right
                    # next to its cause when read in Perfetto.
                    tracer.instant("chaos." + kind, seq=seq)
                if kind == CHAOS_SPIKE:
                    method = SPIKE_METHOD
                elif kind == CHAOS_CORRUPT:
                    sent = corrupt_payload(payload, req_rng)
                elif kind == CHAOS_KILL:
                    await loop.run_in_executor(None, injector.kill_worker)
                elif kind == CHAOS_STALL:
                    await loop.run_in_executor(None, injector.stall_worker)
            t0 = time.monotonic()
            try:
                reply = await gateway.submit(sent, method)
            except OverloadedError:
                report.shed_overload += 1
                report.shed_latencies.append(time.monotonic() - t0)
            except DeadlineExpired:
                report.shed_expired += 1
                report.shed_latencies.append(time.monotonic() - t0)
            except GatewayClosed:
                report.shed_closed += 1
                report.shed_latencies.append(time.monotonic() - t0)
            except GatewayError as error:  # typed, but unexpected kind
                report.untyped_rejections += 1
                report.errors.append(
                    "%s: unexpected GatewayError %s" % (schedule.name, error)
                )
            except Exception as error:  # noqa: BLE001 - the invariant
                report.unhandled_exceptions += 1
                report.errors.append(
                    "%s: unhandled %s: %s"
                    % (schedule.name, type(error).__name__, error)
                )
            else:
                report.latencies.append(time.monotonic() - t0)
                if reply.ok:
                    report.completed_ok += 1
                else:
                    report.degraded += 1
                # Validate against the ORIGINAL payload: corruption
                # happened on the wire, not in the caller's instance.
                try:
                    valid = _validate_reply(payload, reply.payload)
                except Exception as error:  # noqa: BLE001
                    valid = False
                    report.errors.append(
                        "%s: reply validation raised %s: %s"
                        % (schedule.name, type(error).__name__, error)
                    )
                if not valid:
                    report.invalid_covers += 1

    try:
        await asyncio.gather(*(client() for _ in range(config.concurrency)))
    finally:
        report.wall_seconds = time.monotonic() - started
        await gateway.close()
        report.gateway_stats = gateway.statistics()
