"""The resource governor: bounded BDD computations.

A :class:`Budget` limits three resources of one governed computation:
node creations in the unique table, ITE kernel steps (one per expanded
frame of the iterative ``ite`` kernel — the direct analogue of the old
recursive call count), and wall-clock time.  The :class:`Governor` enforces it through the manager's step
hook (:meth:`repro.bdd.manager.Manager.install_step_hook`): every
counted event checks the bounds and raises the matching typed
:class:`~repro.analysis.errors.BudgetExceeded` subclass the moment one
is crossed.  Industrial don't-care frameworks survive production
workloads exactly because they cap subcomputations this way (cf.
Mishchenko & Brayton's windowed complete don't-care computation, which
bounds resources per window).

Aborting mid-operation is safe: the manager caches only fully computed
results, so the unique table and all computed tables stay consistent
and a later retry resumes from whatever partial work was cached.

Counters reset when the manager's caches are flushed
(:data:`~repro.bdd.manager.EVENT_CLEAR`), so the §4.1.1 fairness
protocol — flush caches before each heuristic — restarts the budget
per heuristic for free.  :meth:`~repro.bdd.manager.Manager.gc` clears
caches as part of every collection, so a gc flush point resets the
budget the same way.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.analysis.errors import (
    DeadlineExceeded,
    NodeBudgetExceeded,
    StepBudgetExceeded,
)
from repro.bdd.manager import EVENT_CLEAR, EVENT_ITE, EVENT_NODE, Manager
from repro.obs.hooks import attach_hook, detach_hook

#: Hook events between wall-clock reads: the deadline check costs a
#: ``time.monotonic`` call, so it piggybacks on every 64th counted event
#: instead of every one.  A deadline therefore trips within 64 events of
#: the true instant — far finer than any useful deadline.
DEADLINE_CHECK_INTERVAL = 64


@dataclass(frozen=True)
class Budget:
    """Resource bounds for one governed computation.

    Every field is optional; ``None`` means unbounded.  ``deadline`` is
    wall-clock seconds from governor start (or the last counter reset).
    """

    max_nodes: Optional[int] = None
    max_steps: Optional[int] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_nodes", "max_steps", "deadline"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(
                    "%s must be positive or None, got %r" % (name, value)
                )

    @property
    def unlimited(self) -> bool:
        """True iff no bound is set (the governor would be a no-op)."""
        return (
            self.max_nodes is None
            and self.max_steps is None
            and self.deadline is None
        )

    def scaled(self, factor: float) -> "Budget":
        """A proportionally larger budget (for escalation ladders)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Budget(
            max_nodes=(
                None
                if self.max_nodes is None
                else int(math.ceil(self.max_nodes * factor))
            ),
            max_steps=(
                None
                if self.max_steps is None
                else int(math.ceil(self.max_steps * factor))
            ),
            deadline=(
                None if self.deadline is None else self.deadline * factor
            ),
        )

    def describe(self) -> str:
        """Human-readable summary, e.g. ``nodes<=500, deadline<=2.0s``."""
        parts = []
        if self.max_nodes is not None:
            parts.append("nodes<=%d" % self.max_nodes)
        if self.max_steps is not None:
            parts.append("steps<=%d" % self.max_steps)
        if self.deadline is not None:
            parts.append("deadline<=%gs" % self.deadline)
        return ", ".join(parts) if parts else "unlimited"


class Governor:
    """Counts governed events and raises when a :class:`Budget` is hit.

    Instances are callables with the manager step-hook signature, so a
    governor *is* its own hook.  ``clock`` is injectable for
    deterministic deadline tests.
    """

    def __init__(
        self,
        budget: Budget,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = budget
        self._clock = clock
        self.nodes_created = 0
        self.ite_steps = 0
        self.resets = 0
        self.started = clock()
        self._events_since_clock = 0

    def __call__(self, event: str) -> None:
        if event == EVENT_NODE:
            self.nodes_created += 1
            limit = self.budget.max_nodes
            if limit is not None and self.nodes_created > limit:
                raise NodeBudgetExceeded(
                    "node budget exhausted: %d nodes created, budget %d"
                    % (self.nodes_created, limit)
                )
        elif event == EVENT_ITE:
            self.ite_steps += 1
            limit = self.budget.max_steps
            if limit is not None and self.ite_steps > limit:
                raise StepBudgetExceeded(
                    "step budget exhausted: %d ITE steps, budget %d"
                    % (self.ite_steps, limit)
                )
        elif event == EVENT_CLEAR:
            self.reset()
            return
        deadline = self.budget.deadline
        if deadline is not None:
            self._events_since_clock += 1
            if self._events_since_clock >= DEADLINE_CHECK_INTERVAL:
                self._events_since_clock = 0
                elapsed = self._clock() - self.started
                if elapsed > deadline:
                    raise DeadlineExceeded(
                        "deadline exhausted: %.3fs elapsed, budget %.3fs"
                        % (elapsed, deadline)
                    )

    def reset(self) -> None:
        """Zero the counters and restart the deadline clock.

        Called automatically when the governed manager flushes its
        caches (:meth:`~repro.bdd.manager.Manager.clear_caches`).
        """
        self.nodes_created = 0
        self.ite_steps = 0
        self._events_since_clock = 0
        self.started = self._clock()
        self.resets += 1

    def elapsed(self) -> float:
        """Seconds since governor start or the last reset."""
        return self._clock() - self.started


@contextmanager
def governed(
    manager: Manager, budget: Optional[Budget]
) -> Iterator[Optional[Governor]]:
    """Attach a :class:`Governor` to ``manager`` for one ``with`` block.

    Yields the governor (or ``None`` when ``budget`` is ``None`` or
    unlimited, in which case no hook is attached and the block runs at
    full speed).  The governor is attached through the composing
    dispatcher (:func:`repro.obs.hooks.attach_hook`), so it coexists
    with any other step hooks — a tracer, a ``CheckedManager`` node
    auditor, or an *outer* governor, which keeps counting and can still
    trip its own (larger) budget while an inner governed region runs.
    On exit the governor is detached, restoring the hook configuration
    exactly as it was.
    """
    if budget is None or budget.unlimited:
        yield None
        return
    governor = Governor(budget)
    attach_hook(manager, governor)
    try:
        yield governor
    finally:
        detach_hook(manager, governor)
