"""Deterministic fault injection for drills and degradation tests.

:class:`FaultyManager` is a :class:`~repro.bdd.manager.Manager` that
fires a scheduled failure when its operation counter (node creations +
ITE steps, counted in execution order) reaches ``at_operation``:

``budget``
    Raises :class:`~repro.analysis.errors.NodeBudgetExceeded`, as a
    real governor would — proves the budget-degradation path without
    tuning a real budget to a workload.
``recursion``
    Raises a raw :class:`RecursionError` mid-operation.  The iterative
    operator kernels never recurse, so nothing inside the manager
    absorbs it any more — it propagates like any interpreter-level
    failure and is caught by the degradation layer (it is in the
    schedule's ``DEGRADABLE_ERRORS``, the harness's
    ``RECOVERABLE_ERRORS``, and the guard's caught set), which is
    exactly the path this fault drills.
``cache``
    Silently flips the complement bit of every cached ITE result —
    the nightmare failure: no exception, just wrong answers.  Caught
    by :func:`repro.robust.guard.guard` with
    ``flush_before_verify=True`` (the cover check recomputes on clean
    tables) and curable with
    :meth:`~repro.bdd.manager.Manager.clear_caches`.

Faults are scheduled on a deterministic counter, not wall clock or
randomness, so every drill replays identically — a failing degradation
test is reproducible by construction.  ``repro-bdd inject`` exposes the
same plans for manual drills.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.errors import NodeBudgetExceeded
from repro.bdd.manager import EVENT_ITE, Manager
from repro.obs.hooks import attach_hook

#: Fault kinds understood by :class:`FaultPlan`.
FAULT_BUDGET = "budget"
FAULT_RECURSION = "recursion"
FAULT_CACHE = "cache"

FAULT_KINDS = (FAULT_BUDGET, FAULT_RECURSION, FAULT_CACHE)


@dataclass(frozen=True)
class FaultPlan:
    """When and what to inject.

    ``at_operation`` is 1-based: the fault fires on the first counted
    (and armed) operation at or after the N-th.  With ``repeat=True``
    it fires on every operation from the N-th on (so retries fail
    too); otherwise exactly once.
    """

    kind: str
    at_operation: int
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind %r; expected one of %s"
                % (self.kind, ", ".join(FAULT_KINDS))
            )
        if self.at_operation < 1:
            raise ValueError("at_operation must be >= 1 (1-based)")


class FaultyManager(Manager):
    """A manager that fails on schedule (see module docstring).

    ``operations`` counts unique-table lookups (every ``make_node``
    reaching :meth:`_make_raw`, including during variable declaration)
    plus ITE kernel steps, in execution order; ``faults_fired`` counts
    injections so far.  The iterative kernel expands frames in the
    recursive post-order, so operation numbers — and therefore fault
    schedules — are unchanged from the recursive implementation.
    """

    def __init__(self, *args, plan: FaultPlan, armed: bool = True, **kwargs):
        # Counters must exist before __init__ creates the variables.
        self._plan = plan
        self.operations = 0
        self.faults_fired = 0
        # Operations are counted regardless, but faults only fire while
        # armed — lets a drill build its instance first, then arm.
        self.armed = armed
        super().__init__(*args, **kwargs)
        # ITE steps are observed through the step hook: the kernel has
        # no per-step method to override.  Attached via the composing
        # dispatcher after super().__init__ (which resets the hook
        # slot); being first in dispatch order, the tick fires before
        # any governor sees the event — as the old _ite override did.
        attach_hook(self, self._tick_ite)

    def _tick(self) -> None:
        self.operations += 1
        if not self.armed:
            return
        plan = self._plan
        if plan.repeat:
            due = self.operations >= plan.at_operation
        else:
            # One-shot: the first counted operation at or after the
            # N-th (an armed-late drill must not miss its slot).
            due = (
                self.operations >= plan.at_operation
                and self.faults_fired == 0
            )
        if not due:
            return
        self.faults_fired += 1
        if plan.kind == FAULT_BUDGET:
            raise NodeBudgetExceeded(
                "injected: budget trip at operation %d" % self.operations
            )
        if plan.kind == FAULT_RECURSION:
            raise RecursionError(
                "injected: recursion failure at operation %d"
                % self.operations
            )
        self._corrupt_ite_cache()

    def _corrupt_ite_cache(self) -> None:
        # Deliberate encapsulation break: this class exists to damage
        # the manager from the inside.  Flipping the complement bit of
        # every cached result keeps all refs structurally valid while
        # making every cache hit semantically wrong.
        cache = self._ite_cache  # repro-lint: skip=L2
        for key in cache:
            cache[key] ^= 1

    # Counted operations: unique-table lookups and ITE kernel steps.
    def _make_raw(self, level: int, high: int, low: int) -> int:
        self._tick()
        return super()._make_raw(level, high, low)

    def _tick_ite(self, event: str) -> None:
        if event == EVENT_ITE:
            self._tick()
