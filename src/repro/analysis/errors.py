"""Exception types of the analysis layer.

The library's correctness rests on two mechanically checkable contracts
(paper Section 2): structural canonicity of every ROBDD under the
manager's complement-edge normalization, and cover containment
``f·c ≤ g ≤ f + ¬c`` for every heuristic result.  Violations of either
are *bugs*, never recoverable conditions, so they get their own
exception hierarchy — and, unlike a bare ``assert``, they are **not**
stripped under ``python -O`` (lint rule L3 enforces this in library
code).

This module is import-light on purpose: :mod:`repro.bdd.manager` raises
:class:`InvariantError`, so nothing here may import back into the BDD
package.
"""

from __future__ import annotations


class AnalysisError(Exception):
    """Base class of every error raised by :mod:`repro.analysis`."""


class InvariantError(AnalysisError, AssertionError):
    """A structural invariant of the BDD representation was violated.

    Raised by :meth:`repro.bdd.manager.Manager.validate` and by
    :class:`repro.analysis.checked.CheckedManager` when a reachable node
    breaks canonicity: non-descending edges, a complemented then-edge,
    equal children, or a stale unique-table entry.

    Subclasses :class:`AssertionError` for backward compatibility with
    callers that treated ``validate`` failures as assertion failures,
    but is raised unconditionally — ``python -O`` does not disable it.
    """


class SanitizerError(AnalysisError):
    """A BDD ref was used outside the scope that makes it meaningful.

    Raised by the runtime RefSanitizer
    (:class:`repro.analysis.sanitize.SanitizedManager`, enabled with
    ``REPRO_SANITIZE=1``) in exactly two situations, mirroring the
    static flow rules F1/F2 of :mod:`repro.analysis.flow`:

    * **cross-manager use** — a ref minted by one manager is passed to
      an operation of a different manager.  Refs are plain ints; the
      foreign manager would silently interpret the index against its
      own node table and compute garbage.
    * **stale-generation use** — a ref minted before a
      ``gc(compact=True)`` is used without first being translated
      through the :class:`~repro.bdd.manager.Remap` that collection
      returned.

    Both are *bugs* at the call site, never recoverable conditions.
    """


class ContractError(AnalysisError):
    """A minimization heuristic broke one of its advertised contracts.

    The contracts audited (see :mod:`repro.analysis.contracts`): cover
    containment (Definition 2), the no-new-vars guarantee of the
    ``*_nv`` variants, the never-grow guarantee of Proposition-6-safe
    wrappers, the Theorem-7 lower bound on cube care sets, and the
    i-covering safety of windowed schedule transformations (§3.4).
    """


class BudgetExceeded(Exception):
    """A bounded BDD computation ran out of its resource budget.

    Unlike :class:`AnalysisError` and its subclasses — which mark *bugs*
    — a budget trip is an expected, recoverable condition: ``constrain``
    can blow up quadratically, Proposition 4 exhibits unbounded growth
    for the matching heuristics, and a deep BDD can exceed the
    interpreter's recursion limit.  The fault-tolerance layer
    (:mod:`repro.robust`) catches this hierarchy and degrades to a safe
    cover instead of crashing.

    Deliberately *not* an :class:`AnalysisError`: code that treats
    analysis errors as fatal must never swallow a mere budget trip, and
    code that retries budget trips must never retry a real invariant
    violation.
    """


class NodeBudgetExceeded(BudgetExceeded):
    """The governed computation created more BDD nodes than allowed."""


class StepBudgetExceeded(BudgetExceeded):
    """The governed computation took more ITE steps than allowed."""


class DeadlineExceeded(BudgetExceeded):
    """The governed computation overran its wall-clock deadline."""


class RecursionBudgetExceeded(BudgetExceeded):
    """A bounded traversal exceeded its depth/step allowance.

    Historical note: the manager's operator kernels were once recursive
    and raised this in place of a raw :class:`RecursionError` when a
    limit-raising retry still overflowed.  The kernels are iterative
    now (depth is heap-bounded), so the manager never raises it — the
    class survives as a typed, recoverable budget signal for callers
    that impose their own depth or step bounds, and so existing
    handlers written against the old contract keep compiling.
    """
