"""Runtime RefSanitizer: tag refs with ``(manager_id, gc_generation)``.

The static flow rules F1/F2 (:mod:`repro.analysis.flow`) prove at lint
time that no ref crosses managers or outlives a compacting gc — within
the patterns the analyzer can see.  :class:`SanitizedManager` enforces
the same two invariants *dynamically*: every ref a sanitized manager
hands out is a :class:`SanitizedRef`, an ``int`` subclass carrying the
minting manager's identity and the compaction epoch it was minted
under.  Every ref a sanitized manager receives is checked, and a typed
:class:`~repro.analysis.errors.SanitizerError` is raised the moment a
ref is

* presented to a **different manager** than the one that minted it, or
* presented **after a** ``gc(compact=True)`` without having been
  translated through that collection's
  :class:`~repro.bdd.manager.Remap`.

Untagged plain ints (the constants ``ONE``/``ZERO``, refs produced by
un-sanitized code) are accepted unchecked — the sanitizer is
best-effort by design, catching every misuse of refs that flowed
through the public API without forcing the whole world to be tagged.

Because :class:`SanitizedRef` *is* an ``int`` (same hash, equality and
arithmetic), tagged refs pass through caches, serializers and
arithmetic untouched; derived expressions like ``ref ^ 1`` produce
plain ints and simply lose the tag.

Environment control
-------------------

``REPRO_SANITIZE=1`` opts a whole process in:
:func:`install_sanitized_manager` (called by the test-suite's
``conftest``) rebinds ``Manager`` so every manager constructed
afterwards sanitizes.  With the variable unset nothing in this module
is even imported by the library — the off-path overhead is exactly
zero.  When both ``REPRO_CHECK=1`` and ``REPRO_SANITIZE=1`` are
requested, the sanitizer wins the ``Manager`` binding (the structural
audits are the slower, stricter mode and have their own CI lane).
"""

from __future__ import annotations

import functools
import itertools
import os
from typing import Iterable, Optional, Tuple

from repro.analysis.errors import SanitizerError
from repro.bdd.manager import Manager, Remap

#: Environment variable switching the sanitizer on.
ENV_VAR = "REPRO_SANITIZE"


def sanitizing_enabled() -> bool:
    """True iff ``REPRO_SANITIZE=1``: ref sanitizing is requested."""
    return os.environ.get(ENV_VAR) == "1"


class SanitizedRef(int):
    """A BDD ref tagged with its minting manager and compaction epoch.

    Behaves exactly like the underlying ``int`` (hashing, equality,
    arithmetic), so it flows through caches and data structures
    unchanged; only a :class:`SanitizedManager` inspects the tag.
    (No ``__slots__``: CPython forbids nonempty slots on subclasses of
    variable-length types like ``int``.)
    """

    def __new__(cls, value: int, manager_id: int, generation: int):
        self = super().__new__(cls, value)
        self.manager_id = manager_id
        self.generation = generation
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SanitizedRef(%d, manager_id=%d, generation=%d)" % (
            int(self),
            self.manager_id,
            self.generation,
        )


class _SanitizedRemap:
    """A Remap that understands tags.

    Accepts refs minted under the generation the compaction retired
    (the one legitimate use of a stale ref) and stamps its outputs with
    the new generation.  Refs already carrying the *new* generation are
    rejected: translating a ref twice is as wrong as not translating it
    at all.
    """

    __slots__ = ("_remap", "_manager", "_old_generation")

    def __init__(self, remap: Remap, manager: "SanitizedManager", old_generation: int):
        self._remap = remap
        self._manager = manager
        self._old_generation = old_generation

    def __call__(self, ref: int) -> int:
        if type(ref) is SanitizedRef:
            manager = self._manager
            if ref.manager_id != manager._manager_id:
                raise SanitizerError(
                    "remap of manager %d applied to a ref minted by "
                    "manager %d" % (manager._manager_id, ref.manager_id)
                )
            if ref.generation != self._old_generation:
                raise SanitizerError(
                    "remap for gc generation %d -> %d applied to a ref "
                    "minted under generation %d (double translation?)"
                    % (
                        self._old_generation,
                        self._old_generation + 1,
                        ref.generation,
                    )
                )
        return self._manager._tag(self._remap(int(ref)))

    def __contains__(self, ref: int) -> bool:
        return int(ref) in self._remap

    def __len__(self) -> int:
        return len(self._remap)


class SanitizedManager(Manager):
    """Manager whose public API tags and validates every ref.

    Construction parameters are those of
    :class:`~repro.bdd.manager.Manager`.  Each instance draws a fresh
    process-wide ``manager_id``; results of ref-producing operations
    come back as :class:`SanitizedRef` stamped with that id and the
    current :attr:`~repro.bdd.manager.Manager.gc_generation`, and every
    tagged argument is checked against both before the underlying
    operation runs.
    """

    _ids = itertools.count(1)

    def __init__(self, *args, **kwargs):
        # The id must exist before super().__init__: variable creation
        # already routes through the wrapped new_var.
        self._manager_id = next(SanitizedManager._ids)
        self._sanitizer_checks = 0
        self._sanitizer_errors = 0
        # Reentrancy guard: checks and tagging apply only at the public
        # API boundary.  Kernel-internal calls (ite -> make_node, ...)
        # see the flag set and run untouched, so the per-step cost of
        # sanitizing stays out of the hot loops.
        self._in_api_call = False
        super().__init__(*args, **kwargs)

    @property
    def manager_id(self) -> int:
        """This manager's process-unique sanitizer identity."""
        return self._manager_id

    @property
    def sanitizer_checks(self) -> int:
        """Number of tagged refs validated so far."""
        return self._sanitizer_checks

    # -- core check/tag machinery --------------------------------------
    def _check_tagged(self, ref: SanitizedRef) -> int:
        self._sanitizer_checks += 1
        if ref.manager_id != self._manager_id:
            self._sanitizer_errors += 1
            raise SanitizerError(
                "ref %d minted by manager %d used with manager %d; refs "
                "index one manager's node table and must be rebuilt "
                "(e.g. via repro.bdd.wire) to cross managers"
                % (int(ref), ref.manager_id, self._manager_id)
            )
        if ref.generation != self._gc_generation:
            self._sanitizer_errors += 1
            raise SanitizerError(
                "ref %d was minted under gc generation %d but the "
                "manager is at generation %d; a gc(compact=True) "
                "invalidated it — apply the Remap that collection "
                "returned" % (int(ref), ref.generation, self._gc_generation)
            )
        return int(ref)

    def _check_arg(self, value):
        kind = type(value)
        if kind is SanitizedRef:
            return self._check_tagged(value)
        if kind is tuple or kind is list:
            return kind(self._check_arg(item) for item in value)
        if kind is dict:
            return {
                key: self._check_arg(item) for key, item in value.items()
            }
        if kind is set or kind is frozenset:
            return kind(self._check_arg(item) for item in value)
        return value

    def _tag(self, ref: int) -> int:
        if ref < 2:
            # ONE/ZERO: terminal refs are manager-independent constants
            # (every legitimate cross-manager idiom, e.g. reorder
            # transfer, passes them around freely) and the terminal
            # node never moves during compaction — leave them untagged.
            return ref
        return SanitizedRef(ref, self._manager_id, self._gc_generation)

    # -- gc ------------------------------------------------------------
    def gc(
        self, roots: Iterable[int] = (), compact: bool = False
    ) -> Optional[Remap]:
        """Collect; compacting, return a tag-aware Remap.

        The returned remap accepts the refs the compaction just retired
        and re-tags its outputs with the new generation — it is the
        only object that will accept a stale ref without raising.
        """
        root_refs = tuple(self._check_arg(ref) for ref in roots)
        old_generation = self._gc_generation
        remap = super().gc(root_refs, compact=compact)
        if remap is None:
            return None
        return _SanitizedRemap(remap, self, old_generation)


#: Operations whose (checked) result is a ref: results come back tagged.
PRODUCING_METHODS: Tuple[str, ...] = (
    "new_var",
    "var",
    "make_node",
    "ite",
    "not_",
    "and_",
    "or_",
    "xor",
    "xnor",
    "implies",
    "diff",
    "and_many",
    "or_many",
    "cofactor",
    "restrict_cube",
    "exists",
    "forall",
    "and_exists",
    "compose",
    "vector_compose",
    "rename",
    "cube_ref",
    "regular",
    "protect",
)

#: Operations that consume refs but return non-ref values.
CONSUMING_METHODS: Tuple[str, ...] = (
    "level",
    "is_constant",
    "leq",
    "size",
    "size_multi",
    "sat_count",
    "eval",
    "support",
    "support_multi",
    "nodes_reachable",
    "nodes_below",
    "level_profile",
    "pick_cube",
    "cubes",
    "is_cube",
    "minterms",
    "unprotect",
    "validate",
)

#: Operations returning tuples with refs at the given positions.
TUPLE_PRODUCING_METHODS = {
    "branches": (0, 1),
    "top_branches": (1, 2),
}


def _sanitized(name: str, tag_result: bool, ref_positions=None):
    original = getattr(Manager, name)

    @functools.wraps(original)
    def wrapper(self: SanitizedManager, *args, **kwargs):
        if self._in_api_call:
            # Nested call from inside another sanitized entry point:
            # the outer call already validated the inputs and will tag
            # the final result, so run the raw kernel.
            return original(self, *args, **kwargs)
        if args:
            args = tuple(self._check_arg(value) for value in args)
        if kwargs:
            kwargs = {
                key: self._check_arg(value)
                for key, value in kwargs.items()
            }
        self._in_api_call = True
        try:
            result = original(self, *args, **kwargs)
        finally:
            self._in_api_call = False
        if tag_result:
            return self._tag(result)
        if ref_positions is not None:
            return tuple(
                self._tag(value) if position in ref_positions else value
                for position, value in enumerate(result)
            )
        return result

    wrapper.__doc__ = (original.__doc__ or "") + (
        "\n\nSanitized: tagged args are validated (see SanitizedManager)."
    )
    return wrapper


for _name in PRODUCING_METHODS:
    setattr(SanitizedManager, _name, _sanitized(_name, tag_result=True))
for _name in CONSUMING_METHODS:
    setattr(SanitizedManager, _name, _sanitized(_name, tag_result=False))
for _name, _positions in TUPLE_PRODUCING_METHODS.items():
    setattr(
        SanitizedManager,
        _name,
        _sanitized(_name, tag_result=False, ref_positions=_positions),
    )
del _name, _positions


def install_sanitized_manager() -> None:
    """Globally substitute :class:`SanitizedManager` for :class:`Manager`.

    Rebinds the ``Manager`` name in :mod:`repro.bdd.manager`,
    :mod:`repro.bdd` and :mod:`repro` so code importing it *after* this
    call constructs sanitizing managers.  Used by the test-suite when
    ``REPRO_SANITIZE=1``; not meant for library code.
    """
    import repro
    import repro.bdd
    import repro.bdd.manager

    repro.bdd.manager.Manager = SanitizedManager  # type: ignore[misc]
    repro.bdd.Manager = SanitizedManager  # type: ignore[misc]
    repro.Manager = SanitizedManager  # type: ignore[misc]
