"""A Manager wrapper that re-validates invariants after mutating ops.

:class:`CheckedManager` subclasses :class:`repro.bdd.manager.Manager`
and re-runs :meth:`~repro.bdd.manager.Manager.validate` on the result of
every ref-producing operation, raising
:class:`~repro.analysis.errors.InvariantError` the moment a
non-canonical node appears — instead of much later, when a corrupted
unique table surfaces as a wrong equivalence verdict.

Validation only fires when the outermost call of a (possibly recursive)
operation returns, so the overhead per public call is one reachable-set
traversal of the result, not one per recursion step.

Environment control
-------------------

``REPRO_CHECK=1`` opts the whole library into checking:
:func:`checking_enabled` gates the per-heuristic contract audits in
:mod:`repro.core.registry` and the schedule-safety audits in
:mod:`repro.core.schedule`, and :func:`manager_class` returns
:class:`CheckedManager` so entry points can construct checked managers
without code changes.  A directly constructed ``CheckedManager`` checks
unconditionally unless ``REPRO_CHECK=0`` or ``check=False``.
"""

from __future__ import annotations

import functools
import os
from typing import Optional, Tuple, Type

from repro.analysis.errors import InvariantError
from repro.bdd.manager import EVENT_NODE, Manager, TERMINAL_LEVEL
from repro.obs.hooks import attach_hook

#: Environment variable switching the runtime audits on (``1``) or
#: force-off (``0``).
ENV_VAR = "REPRO_CHECK"


def checking_enabled() -> bool:
    """True iff ``REPRO_CHECK=1``: global runtime audits are requested."""
    return os.environ.get(ENV_VAR) == "1"


#: Ref-producing Manager operations wrapped with a post-validation.
#: The Boolean connectives (``and_``, ``or_``, ...) all funnel through
#: ``ite``; the structural builders are listed individually.
CHECKED_METHODS: Tuple[str, ...] = (
    "new_var",
    "var",
    "make_node",
    "ite",
    "cofactor",
    "restrict_cube",
    "exists",
    "forall",
    "and_exists",
    "vector_compose",
    "cube_ref",
)


class NodeAuditHook:
    """Step hook validating each node the moment the table creates it.

    Complements the per-operation result audits: where those traverse
    the finished result, this hook checks the *newest* node's local
    invariants (then-edge regular, children distinct, strictly
    descending levels) in O(1) at creation time, catching a corrupt
    node even when the enclosing operation later aborts on a budget
    and never returns a result to audit.

    Attached through the composing dispatcher
    (:func:`repro.obs.hooks.attach_hook`), so it coexists with the
    :mod:`robust` governor and the :mod:`repro.obs` tracer on the same
    manager — attachment order puts it after any earlier hooks, and a
    governor that vetoes the node creation (raising ``BudgetExceeded``
    first in dispatch order) simply suppresses the audit of that node.
    """

    def __init__(self, manager: Manager):
        self._manager = manager
        self.nodes_audited = 0

    def __call__(self, event: str) -> None:
        if event != EVENT_NODE:
            return
        manager = self._manager
        # Not num_nodes - 1: free-list recycling means the newest node
        # may sit in the middle of the table.
        ref = manager.last_created_ref
        level, then_f, else_f = manager.top_branches(ref)
        self.nodes_audited += 1
        if then_f == else_f:
            raise InvariantError(
                "created node %d has equal children" % (ref >> 1)
            )
        if then_f & 1:
            raise InvariantError(
                "created node %d has a complemented then-edge" % (ref >> 1)
            )
        if level >= TERMINAL_LEVEL:
            raise InvariantError(
                "created node %d sits at the terminal level" % (ref >> 1)
            )
        if manager.level(then_f) <= level or manager.level(else_f) <= level:
            raise InvariantError(
                "created node %d has a non-descending edge" % (ref >> 1)
            )


class CheckedManager(Manager):
    """Manager that audits structural invariants after every operation.

    Parameters are those of :class:`~repro.bdd.manager.Manager` plus
    ``check``: ``True``/``False`` force the audits on or off; the
    default ``None`` enables them unless ``REPRO_CHECK=0``.
    """

    def __init__(self, *args, check: Optional[bool] = None, **kwargs):
        if check is None:
            check = os.environ.get(ENV_VAR, "1") != "0"
        # Set the audit state before super().__init__, which already
        # routes node creation through the wrapped methods.
        self._check_active = bool(check)
        self._check_depth = 0
        self._checks_run = 0
        super().__init__(*args, **kwargs)
        #: Per-node-creation auditor, composed with any other hooks
        #: (governor, tracer) via the repro.obs dispatcher.
        self.node_audit = NodeAuditHook(self)
        if self._check_active:
            attach_hook(self, self.node_audit)

    @property
    def checks_run(self) -> int:
        """Number of post-operation validations performed so far."""
        return self._checks_run

    def _audit_result(self, ref: int) -> None:
        self._checks_run += 1
        self.validate(ref)

    def gc(self, roots=(), compact: bool = False):
        """Collect, then re-validate every surviving root.

        A sweep rebuilds the unique table (and, compacting, every node
        index), so the audit re-walks the roots and protected refs and
        checks the table is still canonical — the moment-of-corruption
        guarantee the per-operation audits give, extended to the
        collector.  Not routed through ``_checked``: ``gc`` returns a
        remap, not a ref.
        """
        root_refs = tuple(roots)
        remap = super().gc(root_refs, compact=compact)
        if self._check_active:
            if remap is not None:
                root_refs = tuple(remap(ref) for ref in root_refs)
            self._checks_run += 1
            # protected_refs() is already remapped by the collector.
            self.validate(root_refs + self.protected_refs())
        return remap


def _checked(name: str):
    original = getattr(Manager, name)

    @functools.wraps(original)
    def wrapper(self: CheckedManager, *args, **kwargs):
        self._check_depth += 1
        try:
            result = original(self, *args, **kwargs)
        finally:
            self._check_depth -= 1
        if self._check_active and self._check_depth == 0:
            self._audit_result(result)
        return result

    wrapper.__doc__ = (original.__doc__ or "") + (
        "\n\nChecked: the result is re-validated (see CheckedManager)."
    )
    return wrapper


for _name in CHECKED_METHODS:
    setattr(CheckedManager, _name, _checked(_name))
del _name


def manager_class() -> Type[Manager]:
    """The manager class honoring ``REPRO_CHECK``.

    Entry points that want opt-in checking construct their manager via
    ``manager_class()(...)`` instead of naming :class:`Manager`.
    """
    if checking_enabled():
        return CheckedManager
    return Manager


def install_checked_manager() -> None:
    """Globally substitute :class:`CheckedManager` for :class:`Manager`.

    Rebinds the ``Manager`` name in :mod:`repro.bdd.manager`,
    :mod:`repro.bdd` and :mod:`repro` so code importing it *after* this
    call constructs checked managers.  Used by the test-suite's
    ``--repro-check`` option; not meant for library code.
    """
    import repro
    import repro.bdd
    import repro.bdd.manager

    repro.bdd.manager.Manager = CheckedManager  # type: ignore[misc]
    repro.bdd.Manager = CheckedManager  # type: ignore[misc]
    repro.Manager = CheckedManager  # type: ignore[misc]
