"""Static analysis and runtime auditing for the BDD core and heuristics.

Two halves (see ``docs/analysis.md``):

* :mod:`repro.analysis.lint` — ``repro-lint``, an AST lint pass with
  five codebase-specific rules (ref-truthiness, manager encapsulation,
  bare asserts, uncached BDD recursion, mutable defaults).  Run with
  ``python -m repro.cli lint`` or ``python -m repro.analysis.lint``.
* :mod:`repro.analysis.flow` — the ``--flow`` tier: a project-wide,
  flow-sensitive ref-provenance and determinism pass (rules F1–F4 —
  cross-manager refs, stale refs across compaction, raw refs on
  process boundaries, nondeterminism reachable from ``@deterministic``
  code).
* :mod:`repro.analysis.checked` / :mod:`repro.analysis.contracts` — a
  runtime contract auditor: :class:`CheckedManager` re-validates
  structural invariants after every operation, and the per-heuristic
  contract checks audit cover containment, no-new-vars, never-grow and
  the Theorem-7 cube bound.  ``REPRO_CHECK=1`` switches the audits on
  library-wide.
* :mod:`repro.analysis.sanitize` — the runtime RefSanitizer:
  ``REPRO_SANITIZE=1`` swaps in :class:`SanitizedManager`, which tags
  every ref with ``(manager_id, gc_generation)`` and raises
  :class:`SanitizerError` on cross-manager or stale-generation use —
  the dynamic twin of flow rules F1/F2.

Everything except the exception types is imported lazily so that
:mod:`repro.bdd.manager` can depend on
:mod:`repro.analysis.errors` without a cycle.
"""

from __future__ import annotations

from repro.analysis.errors import (
    AnalysisError,
    ContractError,
    InvariantError,
    SanitizerError,
)

__all__ = [
    "AnalysisError",
    "ContractError",
    "InvariantError",
    "SanitizerError",
    "CheckedManager",
    "checking_enabled",
    "manager_class",
    "install_checked_manager",
    "Contract",
    "CONTRACTS",
    "contract_for",
    "audit_result",
    "audited_heuristic",
    "audit_pair_step",
    "audit_instances",
    "audit_suite",
    "AuditReport",
    "Violation",
    "RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "FLOW_RULES",
    "deterministic",
    "analyze_source",
    "analyze_paths",
    "SanitizedManager",
    "SanitizedRef",
    "sanitizing_enabled",
    "install_sanitized_manager",
]

_LAZY = {
    "CheckedManager": "repro.analysis.checked",
    "checking_enabled": "repro.analysis.checked",
    "manager_class": "repro.analysis.checked",
    "install_checked_manager": "repro.analysis.checked",
    "Contract": "repro.analysis.contracts",
    "CONTRACTS": "repro.analysis.contracts",
    "contract_for": "repro.analysis.contracts",
    "audit_result": "repro.analysis.contracts",
    "audited_heuristic": "repro.analysis.contracts",
    "audit_pair_step": "repro.analysis.contracts",
    "audit_instances": "repro.analysis.contracts",
    "audit_suite": "repro.analysis.contracts",
    "AuditReport": "repro.analysis.contracts",
    "Violation": "repro.analysis.lint",
    "RULES": "repro.analysis.lint",
    "lint_source": "repro.analysis.lint",
    "lint_file": "repro.analysis.lint",
    "lint_paths": "repro.analysis.lint",
    "FLOW_RULES": "repro.analysis.flow",
    "deterministic": "repro.analysis.flow",
    "analyze_source": "repro.analysis.flow",
    "analyze_paths": "repro.analysis.flow",
    "SanitizedManager": "repro.analysis.sanitize",
    "SanitizedRef": "repro.analysis.sanitize",
    "sanitizing_enabled": "repro.analysis.sanitize",
    "install_sanitized_manager": "repro.analysis.sanitize",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
