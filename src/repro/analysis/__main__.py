"""``python -m repro.analysis`` runs the lint pass standalone."""

import sys

from repro.analysis.lint import main

if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
