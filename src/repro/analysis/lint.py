"""``repro-lint``: an AST lint pass specialized to this codebase.

Generic linters cannot know that in this library a BDD *ref* is an
``int`` whose constants are inverted w.r.t. Python truthiness
(``ONE == 0`` is falsy, ``ZERO == 1`` is truthy), that the manager's
node arrays are private, or that an uncached BDD recursion is an
exponential time bomb.  The five rules here encode exactly those
repository-specific contracts:

``L1`` **ref-truthiness**
    Boolean coercion of a BDD ref (``if ref:``, ``not ref``,
    ``ref and ...``, ``bool(ref)``).  Since ``ONE == 0``, truthiness of
    a ref inverts the intended test for the constants; always compare
    against ``ONE``/``ZERO`` explicitly.
``L2`` **encapsulation**
    Access to the manager's node storage (``_high``, ``_low``,
    ``_level``, ``_unique``, ``_ite_cache``) outside
    ``bdd/manager.py``.  Every algorithm must go through the public
    traversal API (``branches``, ``top_branches``, ``level``, ...), or
    canonicity tweaks in the core would ripple through the whole tree.
``L3`` **assert in library code**
    A bare ``assert`` enforcing an invariant is stripped under
    ``python -O``; raise :class:`repro.analysis.errors.InvariantError`
    (or a specific exception) instead.
``L4`` **uncached BDD recursion**
    A self-recursive function that splits refs with ``branches`` /
    ``top_branches`` but threads no memo cache (no ``cache``/``memo``/
    ``seen``/``visited`` parameter or closure, no ``self.cache(...)``)
    — the classic exponential-blowup bug on shared DAGs.  Generators
    are exempt: cube/minterm enumeration is legitimately uncached.
``L5`` **mutable default argument**
    The standard Python footgun; it has bitten BDD caches passed as
    defaults before.

A line can opt out with ``# repro-lint: skip`` (all rules) or
``# repro-lint: skip=L1,L4`` (specific rules).

Run as ``python -m repro.cli lint [paths...]`` or standalone as
``python -m repro.analysis.lint [paths...]``; with no paths the
installed ``repro`` package tree is linted.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Rule code -> one-line description (kept in sync with docs/analysis.md).
RULES: Dict[str, str] = {
    "L1": "boolean coercion of a BDD ref (ONE == 0 is falsy)",
    "L2": "access to Manager node storage outside bdd/manager.py",
    "L3": "bare assert in library code (stripped under python -O)",
    "L4": "self-recursive BDD traversal without a memo cache",
    "L5": "mutable default argument",
}

#: Manager attributes that are private node storage (rule L2).
PRIVATE_MANAGER_ATTRS = frozenset(
    {"_high", "_low", "_level", "_unique", "_ite_cache"}
)

#: The file allowed to touch the private storage.
MANAGER_FILE = ("bdd", "manager.py")

#: Methods whose return value is a BDD ref (for rule L1 inference).
REF_RETURNING_METHODS = frozenset(
    {
        "ite",
        "and_",
        "or_",
        "xor",
        "xnor",
        "not_",
        "implies",
        "diff",
        "and_many",
        "or_many",
        "make_node",
        "cofactor",
        "restrict_cube",
        "exists",
        "forall",
        "and_exists",
        "compose",
        "vector_compose",
        "rename",
        "cube_ref",
        "var",
        "new_var",
        "regular",
        "onset",
        "offset",
        "dcset",
        "upper",
    }
)

#: Free functions whose return value is a BDD ref.
REF_RETURNING_FUNCTIONS = frozenset(
    {
        "bdd_from_leaves",
        "parse_expression",
        "constrain",
        "restrict",
        "generic_td",
        "opt_lv",
        "scheduled_minimize",
        "minimize",
        "safe_minimize",
        "minimize_interval",
        "cubes_to_ref",
    }
)

#: Parameter names conventionally holding refs in this codebase.
REF_PARAMETER_NAMES = frozenset(
    {"f", "g", "h", "c", "ref", "cover", "care", "onset", "lower", "upper"}
)

#: Identifier fragments that count as memoization evidence (rule L4).
CACHE_NAME_FRAGMENTS = ("cache", "memo", "seen", "visited")

_SKIP_ALL = re.compile(r"#\s*repro-lint:\s*skip\s*(?:$|[^=])")
_SKIP_SOME = re.compile(r"#\s*repro-lint:\s*skip=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One lint finding, formatted like a compiler diagnostic."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path,
            self.line,
            self.col,
            self.rule,
            self.message,
        )


def _is_manager_file(path: str) -> bool:
    parts = Path(path).parts
    return len(parts) >= 2 and parts[-2:] == MANAGER_FILE


def _suppressed(rule: str, line: int, source_lines: Sequence[str]) -> bool:
    if not 1 <= line <= len(source_lines):
        return False
    text = source_lines[line - 1]
    if _SKIP_ALL.search(text):
        return True
    match = _SKIP_SOME.search(text)
    if match is not None:
        codes = {code.strip() for code in match.group(1).split(",")}
        return rule in codes
    return False


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body excluding nested function/class bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_ref_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in REF_RETURNING_METHODS
    if isinstance(func, ast.Name):
        return func.id in REF_RETURNING_FUNCTIONS
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _collect_ref_names(scope: ast.AST) -> Set[str]:
    """Names bound to BDD refs inside one function (or module) scope."""
    refs: Set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            name = arg.arg
            if name in REF_PARAMETER_NAMES or name.endswith("_ref"):
                refs.add(name)
    for node in _own_nodes(scope):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        value = node.value
        if _is_ref_call(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    refs.add(target.id)
        elif isinstance(value, ast.Call) and _call_name(value) in (
            "branches",
            "top_branches",
        ):
            # branches -> (then, else); top_branches -> (level, then, else).
            skip = 1 if _call_name(value) == "top_branches" else 0
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for position, element in enumerate(target.elts):
                        if position >= skip and isinstance(element, ast.Name):
                            refs.add(element.id)
    return refs


class _ScopeChecker:
    """Applies rule L1 inside one function or module scope."""

    def __init__(self, scope: ast.AST, violations: List[Violation], path: str):
        self.refs = _collect_ref_names(scope)
        self.violations = violations
        self.path = path

    def _flag(self, node: ast.AST, what: str) -> None:
        self.violations.append(
            Violation(
                "L1",
                self.path,
                node.lineno,
                node.col_offset,
                "boolean coercion of BDD ref %s; ONE == 0 is falsy — "
                "compare against ONE/ZERO instead" % what,
            )
        )

    def _check_condition(self, test: ast.AST) -> None:
        if isinstance(test, ast.Name) and test.id in self.refs:
            self._flag(test, "%r" % test.id)
        elif _is_ref_call(test):
            self._flag(test, "returned by %s()" % _call_name(test))

    def check(self, scope: ast.AST) -> None:
        for node in _own_nodes(scope):
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                self._check_condition(node.test)
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                self._check_condition(node.operand)
            elif isinstance(node, ast.BoolOp):
                for value in node.values:
                    self._check_condition(value)
            elif isinstance(node, ast.Assert):
                self._check_condition(node.test)
            elif isinstance(node, ast.comprehension):
                for condition in node.ifs:
                    self._check_condition(condition)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "bool"
                and len(node.args) == 1
            ):
                self._check_condition(node.args[0])


def _check_l4(
    func: ast.FunctionDef, violations: List[Violation], path: str
) -> None:
    name = func.name
    recursive = False
    splits = False
    cached = False
    for node in _own_nodes(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return  # Generators enumerate; memoization does not apply.
        if isinstance(node, ast.Call):
            called = _call_name(node)
            if called == name:
                recursive = True
            if called in ("branches", "top_branches"):
                splits = True
        if isinstance(node, ast.Name):
            lowered = node.id.lower()
            if any(part in lowered for part in CACHE_NAME_FRAGMENTS):
                cached = True
        if isinstance(node, ast.Attribute):
            lowered = node.attr.lower()
            if any(part in lowered for part in CACHE_NAME_FRAGMENTS):
                cached = True
    for arg in func.args.posonlyargs + func.args.args + func.args.kwonlyargs:
        lowered = arg.arg.lower()
        if any(part in lowered for part in CACHE_NAME_FRAGMENTS):
            cached = True
    if recursive and splits and not cached:
        violations.append(
            Violation(
                "L4",
                path,
                func.lineno,
                func.col_offset,
                "recursive BDD traversal %r has no memo cache; "
                "shared DAG nodes will be revisited exponentially often "
                "— thread a cache dict or use self.cache(name)" % name,
            )
        )


def _check_l5(
    func: ast.FunctionDef, violations: List[Violation], path: str
) -> None:
    defaults = list(func.args.defaults) + [
        default for default in func.args.kw_defaults if default is not None
    ]
    for default in defaults:
        mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in ("list", "dict", "set")
        )
        if mutable:
            violations.append(
                Violation(
                    "L5",
                    path,
                    default.lineno,
                    default.col_offset,
                    "mutable default argument in %r; default to None and "
                    "create the container inside the function" % func.name,
                )
            )


def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one module's source text; returns violations in line order."""
    tree = ast.parse(source, filename=path)
    source_lines = source.splitlines()
    violations: List[Violation] = []
    in_manager_file = _is_manager_file(path)

    # L2 / L3: simple whole-tree scans.
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in PRIVATE_MANAGER_ATTRS
            and not in_manager_file
        ):
            violations.append(
                Violation(
                    "L2",
                    path,
                    node.lineno,
                    node.col_offset,
                    "access to Manager.%s outside bdd/manager.py; use the "
                    "public traversal API (branches/top_branches/level)"
                    % node.attr,
                )
            )
        elif isinstance(node, ast.Assert):
            violations.append(
                Violation(
                    "L3",
                    path,
                    node.lineno,
                    node.col_offset,
                    "bare assert is stripped under python -O; raise "
                    "repro.analysis.errors.InvariantError (or a specific "
                    "exception) instead",
                )
            )

    # L1: per-scope ref inference; L4/L5: per-function checks.
    scopes: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
            _check_l4(node, violations, path)
            _check_l5(node, violations, path)
    for scope in scopes:
        _ScopeChecker(scope, violations, path).check(scope)

    violations = [
        violation
        for violation in violations
        if not _suppressed(violation.rule, violation.line, source_lines)
    ]
    violations.sort(key=lambda violation: (violation.line, violation.col))
    return violations


def lint_file(path) -> List[Violation]:
    """Lint one file on disk."""
    text = Path(path).read_text()
    return lint_source(text, str(path))


def iter_python_files(paths: Iterable) -> Iterator[Path]:
    """Expand files and directories into the .py files beneath them."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(entry.rglob("*.py"))
        else:
            yield entry


def default_lint_root() -> Path:
    """The installed ``repro`` package tree (the default lint target)."""
    import repro

    return Path(repro.__file__).parent


def lint_paths(paths: Optional[Sequence] = None) -> List[Violation]:
    """Lint files/directories; defaults to the ``repro`` package tree."""
    if not paths:
        paths = [default_lint_root()]
    violations: List[Violation] = []
    for python_file in iter_python_files(paths):
        violations.extend(lint_file(python_file))
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point.

    Exit status: 0 clean, 1 violations found, 2 a file could not be
    read or parsed.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro-lint", description="codebase-specific lint pass"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: the repro package)",
    )
    args = parser.parse_args(argv)
    violations: List[Violation] = []
    errors: List[str] = []
    for python_file in iter_python_files(args.paths or [default_lint_root()]):
        try:
            violations.extend(lint_file(python_file))
        except OSError as error:
            errors.append(
                "%s: cannot read: %s"
                % (python_file, error.strerror or error)
            )
        except SyntaxError as error:
            errors.append(
                "%s:%s: syntax error: %s"
                % (python_file, error.lineno or 0, error.msg)
            )
    for violation in violations:
        print(violation.render())
    for error_line in errors:
        print(error_line, file=sys.stderr)
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    if violations:
        summary = ", ".join(
            "%s: %d" % (rule, counts[rule]) for rule in sorted(counts)
        )
        print("%d violation(s) (%s)" % (len(violations), summary))
    if errors:
        return 2
    if violations:
        return 1
    print("repro-lint: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
