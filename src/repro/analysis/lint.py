"""``repro-lint``: an AST lint pass specialized to this codebase.

Generic linters cannot know that in this library a BDD *ref* is an
``int`` whose constants are inverted w.r.t. Python truthiness
(``ONE == 0`` is falsy, ``ZERO == 1`` is truthy), that the manager's
node arrays are private, or that an uncached BDD recursion is an
exponential time bomb.  The five rules here encode exactly those
repository-specific contracts:

``L1`` **ref-truthiness**
    Boolean coercion of a BDD ref (``if ref:``, ``not ref``,
    ``ref and ...``, ``bool(ref)``).  Since ``ONE == 0``, truthiness of
    a ref inverts the intended test for the constants; always compare
    against ``ONE``/``ZERO`` explicitly.
``L2`` **encapsulation**
    Access to the manager's node storage (``_high``, ``_low``,
    ``_level``, ``_unique``, ``_ite_cache``) outside
    ``bdd/manager.py``.  Every algorithm must go through the public
    traversal API (``branches``, ``top_branches``, ``level``, ...), or
    canonicity tweaks in the core would ripple through the whole tree.
``L3`` **assert in library code**
    A bare ``assert`` enforcing an invariant is stripped under
    ``python -O``; raise :class:`repro.analysis.errors.InvariantError`
    (or a specific exception) instead.
``L4`` **uncached BDD recursion**
    A self-recursive function that splits refs with ``branches`` /
    ``top_branches`` but threads no memo cache (no ``cache``/``memo``/
    ``seen``/``visited`` parameter or closure, no ``self.cache(...)``)
    — the classic exponential-blowup bug on shared DAGs.  Generators
    are exempt: cube/minterm enumeration is legitimately uncached.
``L5`` **mutable default argument**
    The standard Python footgun; it has bitten BDD caches passed as
    defaults before.

A line can opt out with ``# repro-lint: skip`` (all rules) or
``# repro-lint: skip=L1,L4`` (specific rules).

Run as ``python -m repro.cli lint [paths...]`` or standalone as
``python -m repro.analysis.lint [paths...]``; with no paths the
installed ``repro`` package tree plus the repository's ``benchmarks/``
and ``examples/`` directories are linted.  ``--flow`` adds the
cross-module ref-flow rules F1–F4 (:mod:`repro.analysis.flow`);
``--format json``/``--format sarif`` emit machine-readable reports and
``--baseline FILE`` suppresses previously recorded findings (create
one with ``--write-baseline FILE``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Rule code -> one-line description (kept in sync with docs/analysis.md).
RULES: Dict[str, str] = {
    "L1": "boolean coercion of a BDD ref (ONE == 0 is falsy)",
    "L2": "access to Manager node storage outside bdd/manager.py",
    "L3": "bare assert in library code (stripped under python -O)",
    "L4": "self-recursive BDD traversal without a memo cache",
    "L5": "mutable default argument",
}

#: Manager attributes that are private node storage (rule L2).
PRIVATE_MANAGER_ATTRS = frozenset(
    {"_high", "_low", "_level", "_unique", "_ite_cache"}
)

#: The file allowed to touch the private storage.
MANAGER_FILE = ("bdd", "manager.py")

#: Methods whose return value is a BDD ref (for rule L1 inference).
REF_RETURNING_METHODS = frozenset(
    {
        "ite",
        "and_",
        "or_",
        "xor",
        "xnor",
        "not_",
        "implies",
        "diff",
        "and_many",
        "or_many",
        "make_node",
        "cofactor",
        "restrict_cube",
        "exists",
        "forall",
        "and_exists",
        "compose",
        "vector_compose",
        "rename",
        "cube_ref",
        "var",
        "new_var",
        "regular",
        "onset",
        "offset",
        "dcset",
        "upper",
    }
)

#: Free functions whose return value is a BDD ref.
REF_RETURNING_FUNCTIONS = frozenset(
    {
        "bdd_from_leaves",
        "parse_expression",
        "constrain",
        "restrict",
        "generic_td",
        "opt_lv",
        "scheduled_minimize",
        "minimize",
        "safe_minimize",
        "minimize_interval",
        "cubes_to_ref",
    }
)

#: Parameter names conventionally holding refs in this codebase.
REF_PARAMETER_NAMES = frozenset(
    {"f", "g", "h", "c", "ref", "cover", "care", "onset", "lower", "upper"}
)

#: Identifier fragments that count as memoization evidence (rule L4).
CACHE_NAME_FRAGMENTS = ("cache", "memo", "seen", "visited")

#: Fully qualified decorators that memoize the function they wrap
#: (rule L4 exempts functions carrying one, even under an alias).
CACHING_DECORATORS = frozenset({"functools.lru_cache", "functools.cache"})

_SKIP_ALL = re.compile(r"#\s*repro-lint:\s*skip\s*(?:$|[^=])")
_SKIP_SOME = re.compile(r"#\s*repro-lint:\s*skip=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One lint finding, formatted like a compiler diagnostic."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path,
            self.line,
            self.col,
            self.rule,
            self.message,
        )


def _is_manager_file(path: str) -> bool:
    parts = Path(path).parts
    return len(parts) >= 2 and parts[-2:] == MANAGER_FILE


def _suppressed(rule: str, line: int, source_lines: Sequence[str]) -> bool:
    if not 1 <= line <= len(source_lines):
        return False
    text = source_lines[line - 1]
    if _SKIP_ALL.search(text):
        return True
    match = _SKIP_SOME.search(text)
    if match is not None:
        codes = {code.strip() for code in match.group(1).split(",")}
        return rule in codes
    return False


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body excluding nested function/class bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_ref_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in REF_RETURNING_METHODS
    if isinstance(func, ast.Name):
        return func.id in REF_RETURNING_FUNCTIONS
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _collect_ref_names(scope: ast.AST) -> Set[str]:
    """Names bound to BDD refs inside one function (or module) scope."""
    refs: Set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            name = arg.arg
            if name in REF_PARAMETER_NAMES or name.endswith("_ref"):
                refs.add(name)
    for node in _own_nodes(scope):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        value = node.value
        if _is_ref_call(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    refs.add(target.id)
        elif isinstance(value, ast.Call) and _call_name(value) in (
            "branches",
            "top_branches",
        ):
            # branches -> (then, else); top_branches -> (level, then, else).
            skip = 1 if _call_name(value) == "top_branches" else 0
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for position, element in enumerate(target.elts):
                        if position >= skip and isinstance(element, ast.Name):
                            refs.add(element.id)
    return refs


class _ScopeChecker:
    """Applies rule L1 inside one function or module scope."""

    def __init__(self, scope: ast.AST, violations: List[Violation], path: str):
        self.refs = _collect_ref_names(scope)
        self.violations = violations
        self.path = path

    def _flag(self, node: ast.AST, what: str) -> None:
        self.violations.append(
            Violation(
                "L1",
                self.path,
                node.lineno,
                node.col_offset,
                "boolean coercion of BDD ref %s; ONE == 0 is falsy — "
                "compare against ONE/ZERO instead" % what,
            )
        )

    def _check_condition(self, test: ast.AST) -> None:
        if isinstance(test, ast.Name) and test.id in self.refs:
            self._flag(test, "%r" % test.id)
        elif _is_ref_call(test):
            self._flag(test, "returned by %s()" % _call_name(test))

    def check(self, scope: ast.AST) -> None:
        for node in _own_nodes(scope):
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                self._check_condition(node.test)
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                self._check_condition(node.operand)
            elif isinstance(node, ast.BoolOp):
                for value in node.values:
                    self._check_condition(value)
            elif isinstance(node, ast.Assert):
                self._check_condition(node.test)
            elif isinstance(node, ast.comprehension):
                for condition in node.ifs:
                    self._check_condition(condition)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "bool"
                and len(node.args) == 1
            ):
                self._check_condition(node.args[0])


def _import_table(tree: ast.AST) -> Dict[str, str]:
    """Local alias -> dotted origin for every import in the module."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = "%s.%s" % (node.module, alias.name)
    return imports


def _is_caching_decorator(
    decorator: ast.AST, imports: Dict[str, str]
) -> bool:
    """Does this decorator resolve to functools.lru_cache/cache?

    Resolution goes through the module's import table, so aliased forms
    (``from functools import lru_cache as flc``) are recognized too —
    the textual cache-fragment sniff alone would miss them.
    """
    if isinstance(decorator, ast.Call):
        decorator = decorator.func
    if isinstance(decorator, ast.Name):
        resolved = imports.get(decorator.id, decorator.id)
        return resolved in CACHING_DECORATORS
    if isinstance(decorator, ast.Attribute) and isinstance(
        decorator.value, ast.Name
    ):
        module = imports.get(decorator.value.id, decorator.value.id)
        return (
            "%s.%s" % (module, decorator.attr) in CACHING_DECORATORS
        )
    return False


def _check_l4(
    func: ast.FunctionDef,
    violations: List[Violation],
    path: str,
    imports: Optional[Dict[str, str]] = None,
) -> None:
    if any(
        _is_caching_decorator(decorator, imports or {})
        for decorator in func.decorator_list
    ):
        return  # functools memoizes the whole function.
    name = func.name
    recursive = False
    splits = False
    cached = False
    for node in _own_nodes(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return  # Generators enumerate; memoization does not apply.
        if isinstance(node, ast.Call):
            called = _call_name(node)
            if called == name:
                recursive = True
            if called in ("branches", "top_branches"):
                splits = True
        if isinstance(node, ast.Name):
            lowered = node.id.lower()
            if any(part in lowered for part in CACHE_NAME_FRAGMENTS):
                cached = True
        if isinstance(node, ast.Attribute):
            lowered = node.attr.lower()
            if any(part in lowered for part in CACHE_NAME_FRAGMENTS):
                cached = True
    for arg in func.args.posonlyargs + func.args.args + func.args.kwonlyargs:
        lowered = arg.arg.lower()
        if any(part in lowered for part in CACHE_NAME_FRAGMENTS):
            cached = True
    if recursive and splits and not cached:
        violations.append(
            Violation(
                "L4",
                path,
                func.lineno,
                func.col_offset,
                "recursive BDD traversal %r has no memo cache; "
                "shared DAG nodes will be revisited exponentially often "
                "— thread a cache dict or use self.cache(name)" % name,
            )
        )


def _check_l5(
    func: ast.FunctionDef, violations: List[Violation], path: str
) -> None:
    defaults = list(func.args.defaults) + [
        default for default in func.args.kw_defaults if default is not None
    ]
    for default in defaults:
        mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in ("list", "dict", "set")
        )
        if mutable:
            violations.append(
                Violation(
                    "L5",
                    path,
                    default.lineno,
                    default.col_offset,
                    "mutable default argument in %r; default to None and "
                    "create the container inside the function" % func.name,
                )
            )


def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one module's source text; returns violations in line order."""
    tree = ast.parse(source, filename=path)
    source_lines = source.splitlines()
    violations: List[Violation] = []
    in_manager_file = _is_manager_file(path)

    # L2 / L3: simple whole-tree scans.
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in PRIVATE_MANAGER_ATTRS
            and not in_manager_file
        ):
            violations.append(
                Violation(
                    "L2",
                    path,
                    node.lineno,
                    node.col_offset,
                    "access to Manager.%s outside bdd/manager.py; use the "
                    "public traversal API (branches/top_branches/level)"
                    % node.attr,
                )
            )
        elif isinstance(node, ast.Assert):
            violations.append(
                Violation(
                    "L3",
                    path,
                    node.lineno,
                    node.col_offset,
                    "bare assert is stripped under python -O; raise "
                    "repro.analysis.errors.InvariantError (or a specific "
                    "exception) instead",
                )
            )

    # L1: per-scope ref inference; L4/L5: per-function checks.
    imports = _import_table(tree)
    scopes: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
            _check_l4(node, violations, path, imports)
            _check_l5(node, violations, path)
    for scope in scopes:
        _ScopeChecker(scope, violations, path).check(scope)

    violations = [
        violation
        for violation in violations
        if not _suppressed(violation.rule, violation.line, source_lines)
    ]
    violations.sort(key=lambda violation: (violation.line, violation.col))
    return violations


def lint_file(path) -> List[Violation]:
    """Lint one file on disk."""
    text = Path(path).read_text()
    return lint_source(text, str(path))


def iter_python_files(paths: Iterable) -> Iterator[Path]:
    """Expand files and directories into the .py files beneath them."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(entry.rglob("*.py"))
        else:
            yield entry


def default_lint_root() -> Path:
    """The installed ``repro`` package tree (the default lint target)."""
    import repro

    return Path(repro.__file__).parent


def default_lint_paths() -> List[Path]:
    """The default lint target set.

    The installed ``repro`` package tree plus, when running from a
    source checkout (``src/repro`` layout with a ``pyproject.toml`` two
    levels up), the repository's ``benchmarks/`` and ``examples/``
    directories — bench and example code manipulates refs just like
    library code and deserves the same rules.
    """
    root = default_lint_root()
    paths: List[Path] = [root]
    repo_root = root.parent.parent
    if (repo_root / "pyproject.toml").is_file():
        for extra in ("benchmarks", "examples"):
            candidate = repo_root / extra
            if candidate.is_dir():
                paths.append(candidate)
    return paths


def lint_paths(paths: Optional[Sequence] = None) -> List[Violation]:
    """Lint files/directories; defaults to :func:`default_lint_paths`."""
    if not paths:
        paths = default_lint_paths()
    violations: List[Violation] = []
    for python_file in iter_python_files(paths):
        violations.extend(lint_file(python_file))
    return violations


# ----------------------------------------------------------------------
# Report formats and baselines
# ----------------------------------------------------------------------
def render_json(violations: Sequence[Violation]) -> str:
    """The violation list as a stable JSON document."""
    import json

    return json.dumps(
        {
            "violations": [
                {
                    "rule": violation.rule,
                    "path": violation.path,
                    "line": violation.line,
                    "col": violation.col,
                    "message": violation.message,
                }
                for violation in violations
            ],
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )


def render_sarif(
    violations: Sequence[Violation],
    rules: Optional[Dict[str, str]] = None,
) -> str:
    """The violation list as a SARIF 2.1.0 document (for CI annotation)."""
    import json

    if rules is None:
        rules = dict(RULES)
        try:
            from repro.analysis.flow import FLOW_RULES

            rules.update(FLOW_RULES)
        except ImportError:  # pragma: no cover - flow always ships
            pass
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/analysis"
                        ),
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": description},
                            }
                            for rule, description in sorted(rules.items())
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": violation.rule,
                        "level": "error",
                        "message": {"text": violation.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": Path(
                                            violation.path
                                        ).as_posix()
                                    },
                                    "region": {
                                        "startLine": violation.line,
                                        "startColumn": violation.col + 1,
                                    },
                                }
                            }
                        ],
                    }
                    for violation in violations
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _baseline_entry(violation: Violation) -> Dict[str, str]:
    # Line numbers shift on every edit, so a baseline entry identifies a
    # finding by rule + path + message only.
    return {
        "rule": violation.rule,
        "path": Path(violation.path).as_posix(),
        "message": violation.message,
    }


def _paths_match(first: str, second: str) -> bool:
    if first == second:
        return True
    return first.endswith("/" + second) or second.endswith("/" + first)


def load_baseline(path) -> List[Dict[str, str]]:
    """Parse a baseline file written by ``--write-baseline``."""
    import json

    with open(path) as handle:
        document = json.load(handle)
    return list(document.get("findings", []))


def write_baseline(path, violations: Sequence[Violation]) -> None:
    """Record the current findings so future runs can suppress them."""
    import json

    document = {
        "format": "repro-lint-baseline",
        "version": 1,
        "findings": [
            _baseline_entry(violation) for violation in violations
        ],
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    violations: Sequence[Violation], entries: Sequence[Dict[str, str]]
) -> List[Violation]:
    """Drop violations matching a baseline entry.

    Matching ignores line/column (they shift on unrelated edits) and
    compares paths by suffix, so a baseline recorded from the repo root
    still applies when lint runs from a subdirectory.  Each baseline
    entry suppresses any number of identical findings.
    """
    kept: List[Violation] = []
    for violation in violations:
        posix = Path(violation.path).as_posix()
        suppressed = any(
            entry.get("rule") == violation.rule
            and entry.get("message") == violation.message
            and _paths_match(posix, entry.get("path", ""))
            for entry in entries
        )
        if not suppressed:
            kept.append(violation)
    return kept


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point.

    Exit status: 0 clean, 1 violations found, 2 a file could not be
    read or parsed.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro-lint", description="codebase-specific lint pass"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories (default: the repro package plus "
            "benchmarks/ and examples/)"
        ),
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the cross-module ref-flow rules F1-F4",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in FILE (see --write-baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    args = parser.parse_args(argv)
    paths = args.paths or default_lint_paths()
    violations: List[Violation] = []
    errors: List[str] = []
    for python_file in iter_python_files(paths):
        try:
            violations.extend(lint_file(python_file))
        except OSError as error:
            errors.append(
                "%s: cannot read: %s"
                % (python_file, error.strerror or error)
            )
        except SyntaxError as error:
            errors.append(
                "%s:%s: syntax error: %s"
                % (python_file, error.lineno or 0, error.msg)
            )
    if args.flow:
        from repro.analysis.flow import analyze_paths

        violations.extend(analyze_paths(paths))
    violations.sort(
        key=lambda violation: (violation.path, violation.line, violation.col)
    )
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            print(
                "%s: cannot read baseline: %s" % (args.baseline, error),
                file=sys.stderr,
            )
            return 2
        violations = apply_baseline(violations, entries)
    if args.write_baseline:
        write_baseline(args.write_baseline, violations)
        print(
            "recorded %d finding(s) to %s"
            % (len(violations), args.write_baseline)
        )
        return 2 if errors else 0
    for error_line in errors:
        print(error_line, file=sys.stderr)
    if args.output_format == "json":
        print(render_json(violations))
    elif args.output_format == "sarif":
        print(render_sarif(violations))
    else:
        for violation in violations:
            print(violation.render())
        counts: Dict[str, int] = {}
        for violation in violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        if violations:
            summary = ", ".join(
                "%s: %d" % (rule, counts[rule]) for rule in sorted(counts)
            )
            print("%d violation(s) (%s)" % (len(violations), summary))
    if errors:
        return 2
    if violations:
        return 1
    if args.output_format == "text":
        print("repro-lint: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
