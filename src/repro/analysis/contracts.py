"""Per-heuristic contract auditing (the paper's correctness guarantees).

Every minimization heuristic in this library advertises a subset of
machine-checkable contracts:

``cover``
    The result ``g`` is a completely specified cover of ``[f, c]``:
    ``f·c ≤ g ≤ f + ¬c`` (Definition 2).  Every heuristic promises
    this; it is the paper's entire soundness claim.
``canonical``
    ``g`` is a canonical ROBDD of its manager (checked with
    :meth:`~repro.bdd.manager.Manager.validate`); implied for results
    built through the manager, violated by refs imported from nowhere.
``no_new_vars``
    ``support(g) ⊆ support(f)`` — the guarantee of the ``*_nv``
    variants (restrict, osm_nv, osm_bt), which existentially quantify
    the splitting variable out of ``c`` whenever ``f`` does not depend
    on it (§3.2).
``never_grow``
    ``|g| ≤ |f|`` — Proposition 6 shows no non-optimal criterion-based
    algorithm can promise this *intrinsically*; the wrappers that
    compare against ``f`` and return the smaller (``safe_minimize``,
    ``robust``, ``f_orig``) do promise it.
``cube bound`` (every heuristic)
    When ``c`` is a cube, Theorem 7 makes ``constrain(f, c)`` a
    minimum-size cover, so every heuristic's result must satisfy
    ``|g| ≥ |constrain(f, c)|``; for the Table-2 sibling matchers the
    bound is tight (they are all optimal on cube care sets) and
    equality is enforced via ``cube_optimal``.

:func:`audit_result` checks one result, raising
:class:`~repro.analysis.errors.ContractError` with the failed contract
named; :func:`audited_heuristic` wraps a heuristic so every call is
audited (wired through :func:`repro.core.registry.get_heuristic` when
``REPRO_CHECK=1``); :func:`audit_suite` replays recorded circuit-suite
instances against every registered heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.errors import ContractError, InvariantError
from repro.bdd.cover import cover_disagreement
from repro.bdd.manager import Manager, ZERO

Heuristic = Callable[[Manager, int, int], int]


@dataclass(frozen=True)
class Contract:
    """The guarantees one heuristic advertises (see module docstring)."""

    cover: bool = True
    no_new_vars: bool = False
    never_grow: bool = False
    cube_optimal: bool = False


#: Heuristic name -> advertised contract.  Names missing here get the
#: default contract (cover + cube lower bound only).
CONTRACTS: Dict[str, Contract] = {
    # Table 2 sibling matchers: all optimal on cube care (Theorem 7
    # discussion); the no-new-vars column is the *_nv/bt flag.
    "constrain": Contract(cube_optimal=True),
    "restrict": Contract(no_new_vars=True, cube_optimal=True),
    "osm_td": Contract(cube_optimal=True),
    "osm_nv": Contract(no_new_vars=True, cube_optimal=True),
    "osm_cp": Contract(cube_optimal=True),
    "osm_bt": Contract(no_new_vars=True, cube_optimal=True),
    "tsm_td": Contract(cube_optimal=True),
    "tsm_cp": Contract(cube_optimal=True),
    # Level matching and the schedule: covers, nothing stronger.
    "opt_lv": Contract(),
    "opt_lv_osm": Contract(),
    "opt_lv_b64": Contract(),
    "sched": Contract(),
    "sched_fast": Contract(),
    # Trivial bounds and the Proposition-6-guarded combination.
    "f_orig": Contract(no_new_vars=True, never_grow=True),
    "f_and_c": Contract(),
    "f_or_nc": Contract(),
    "robust": Contract(never_grow=True),
}

DEFAULT_CONTRACT = Contract()


def contract_for(name: str) -> Contract:
    """The advertised contract of a heuristic name (default: cover)."""
    return CONTRACTS.get(name, DEFAULT_CONTRACT)


def _fail(name: str, contract_name: str, detail: str) -> None:
    raise ContractError(
        "heuristic %r violated the %s contract: %s"
        % (name, contract_name, detail)
    )


def audit_result(
    manager: Manager,
    name: str,
    f: int,
    c: int,
    g: int,
    contract: Optional[Contract] = None,
) -> None:
    """Audit one heuristic result; raises ContractError on violation."""
    if contract is None:
        contract = contract_for(name)
    try:
        manager.validate(g)
    except InvariantError as error:
        _fail(name, "canonical-result", str(error))
    if contract.cover:
        disagreement = cover_disagreement(manager, f, c, g)
        if disagreement != ZERO:
            _fail(
                name,
                "cover",
                "g disagrees with f on %d care minterm(s) "
                "(f.c <= g <= f + !c does not hold)"
                % manager.sat_count(disagreement),
            )
    if contract.no_new_vars:
        extra = manager.support(g) - manager.support(f)
        if extra:
            _fail(
                name,
                "no-new-vars",
                "result depends on variable level(s) %s outside support(f)"
                % sorted(extra),
            )
    if contract.never_grow:
        result_size = manager.size(g)
        original_size = manager.size(f)
        if result_size > original_size:
            _fail(
                name,
                "never-grow",
                "|g| = %d exceeds |f| = %d" % (result_size, original_size),
            )
    if c != ZERO and manager.is_cube(c):
        # Theorem 7: constrain is a minimum cover on cube care sets.
        from repro.core.sibling import constrain

        minimum = manager.size(constrain(manager, f, c))
        result_size = manager.size(g)
        if result_size < minimum:
            _fail(
                name,
                "theorem-7-lower-bound",
                "|g| = %d is below the cube-care minimum %d "
                "(so g cannot be a cover)" % (result_size, minimum),
            )
        if contract.cube_optimal and result_size > minimum:
            _fail(
                name,
                "cube-optimality",
                "|g| = %d exceeds the Theorem 7 minimum %d on a cube "
                "care set" % (result_size, minimum),
            )


def audited_heuristic(
    name: str,
    heuristic: Heuristic,
    contract: Optional[Contract] = None,
) -> Heuristic:
    """Wrap a heuristic so every call is audited against its contract."""

    def checked(manager: Manager, f: int, c: int) -> int:
        g = heuristic(manager, f, c)
        audit_result(manager, name, f, c, g, contract=contract)
        return g

    checked.__name__ = "audited_%s" % name
    checked.__doc__ = "Contract-audited wrapper around %r." % name
    return checked


def audit_pair_step(
    manager: Manager,
    before: Tuple[int, int],
    after: Tuple[int, int],
    context: str,
) -> None:
    """Audit one safe schedule transformation (§3.4).

    A windowed pass must return a pair ``(f', c')`` that *i-covers* its
    input: every cover of the output pair covers the input pair, so no
    don't-care freedom outside the window was committed incorrectly.
    """
    from repro.core.ispec import ISpec

    old_f, old_c = before
    new_f, new_c = after
    manager.validate((new_f, new_c))
    new_spec = ISpec(manager, new_f, new_c)
    old_spec = ISpec(manager, old_f, old_c)
    if not new_spec.i_covers(old_spec):
        raise ContractError(
            "schedule step %r is unsafe: the transformed pair does not "
            "i-cover its input" % context
        )


@dataclass
class AuditReport:
    """Outcome of an :func:`audit_suite` run."""

    instances: int = 0
    checks: int = 0
    failures: Optional[List[str]] = None

    def record_failure(self, message: str) -> None:
        if self.failures is None:
            self.failures = []
        self.failures.append(message)

    @property
    def ok(self) -> bool:
        return not self.failures


def _select_names(names: Optional[Iterable[str]]) -> List[str]:
    """Resolve (and validate) a heuristic-name selection."""
    from repro.core.registry import HEURISTICS

    if names is None:
        return sorted(HEURISTICS)
    selected = list(names)
    unknown = [name for name in selected if name not in HEURISTICS]
    if unknown:
        raise KeyError(
            "unknown heuristic(s) %s; available: %s"
            % (", ".join(sorted(unknown)), ", ".join(sorted(HEURISTICS)))
        )
    return selected


def audit_instances(
    manager: Manager,
    instances: Iterable[Tuple[int, int]],
    names: Optional[Iterable[str]] = None,
    report: Optional[AuditReport] = None,
) -> AuditReport:
    """Audit registered heuristics over ``(f, c)`` instances.

    Collects one failure message per (heuristic, instance) violation
    instead of raising, so a full sweep reports everything at once.
    """
    from repro.core.registry import HEURISTICS

    if report is None:
        report = AuditReport()
    selected = _select_names(names)
    for f, c in instances:
        report.instances += 1
        for name in selected:
            heuristic = HEURISTICS[name]
            try:
                g = heuristic(manager, f, c)
                audit_result(manager, name, f, c, g)
            except (ContractError, InvariantError) as error:
                report.record_failure(str(error))
            report.checks += 1
    return report


def audit_suite(
    benchmarks: Optional[Iterable[str]] = None,
    names: Optional[Iterable[str]] = None,
    max_calls_per_benchmark: Optional[int] = 25,
) -> AuditReport:
    """Audit heuristics on instances recorded from the circuit suite.

    Replays the FSM-equivalence traversal of each benchmark (the
    paper's §4.1.1 instance source), keeps up to
    ``max_calls_per_benchmark`` recorded ``[f, c]`` calls and audits
    every selected heuristic on each.
    """
    from repro.circuits.suite import QUICK_SUITE
    from repro.experiments.calls import collect_benchmark_calls

    if benchmarks is None:
        benchmarks = list(QUICK_SUITE)
    if names is not None:
        names = _select_names(names)  # fail fast, before any replay
    report = AuditReport()
    for benchmark in benchmarks:
        record = collect_benchmark_calls(benchmark)
        calls = record.calls
        if max_calls_per_benchmark is not None:
            calls = calls[:max_calls_per_benchmark]
        audit_instances(
            record.manager,
            ((call.f, call.c) for call in calls),
            names=names,
            report=report,
        )
    return report
