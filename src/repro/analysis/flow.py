"""``repro-lint --flow``: cross-module ref-flow and determinism analysis.

The scope-local rules L1–L5 (:mod:`repro.analysis.lint`) catch misuse
of a single ref in a single expression.  The bug classes introduced by
the serving and GC layers are *flow* properties: a ref is an ``int``
that is only meaningful relative to (a) the manager whose node table it
indexes and (b) the compaction epoch it was minted under, and neither
relation is visible to a scope-local check.  The four rules here run a
taint-style provenance pass over every function plus a project-wide
call-graph reachability pass:

``F1`` **cross-manager ref use**
    A name bound to the result of one manager's ref-returning operation
    is later passed to an operation bound to a *different* manager.
    Refs are plain ints, so the foreign manager silently interprets the
    index against its own node table and computes garbage.
``F2`` **stale ref across a compacting gc**
    A ref-bound name is live across ``manager.gc(..., compact=True)``
    and used afterwards without first being translated through the
    :class:`~repro.bdd.manager.Remap` that collection returned.
    Compaction renumbers every node; the old ref now points at an
    arbitrary surviving node.
``F3`` **raw ref crossing a process/serialization boundary**
    A ref-bound name flows into ``Connection.send``/``queue.put``/
    ``json.dumps``/``pickle.dumps`` and friends.  A ref is only
    meaningful inside its manager's address space; cross-process and
    on-disk transfer must go through :mod:`repro.bdd.wire`
    (``serialize``/``serialize_instance``), which this rule recognizes
    and exempts.
``F4`` **nondeterminism reachable from ``@deterministic`` code**
    Functions marked with the :func:`deterministic` decorator promise
    input-determinism (the wire emission order, breaker state
    transitions, scenario generators, checkpoint records).  This rule
    builds a project-wide call graph and flags any wall-clock read,
    module-level/unseeded ``random`` use, ``id()`` call, or unordered
    ``set`` iteration reachable from a marked function.

Like L1–L5, a line can opt out with ``# repro-lint: skip`` or
``# repro-lint: skip=F2`` plus a justification comment.  The rules are
deliberately lint-grade: per-function provenance with statement-order
flow, not a fixed-point dataflow — precise enough to catch the real
bug patterns, simple enough to stay under the CI time budget.

Run via ``repro-bdd lint --flow [paths...]`` or standalone as
``python -m repro.analysis.flow [paths...]``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import (
    REF_PARAMETER_NAMES,
    REF_RETURNING_FUNCTIONS,
    REF_RETURNING_METHODS,
    Violation,
    _suppressed,
    iter_python_files,
)

#: Rule code -> one-line description (kept in sync with docs/analysis.md).
FLOW_RULES: Dict[str, str] = {
    "F1": "ref minted by one manager passed to a different manager",
    "F2": "ref held across gc(compact=True) without applying the Remap",
    "F3": "raw ref crossing a process/serialization boundary",
    "F4": "nondeterminism source reachable from an @deterministic function",
}

#: Attribute set on functions by the :func:`deterministic` marker.
DETERMINISTIC_ATTR = "__repro_deterministic__"


def deterministic(func):
    """Mark ``func`` as input-deterministic (a no-op at runtime).

    The marker is a *contract*, not an implementation: equal inputs
    must produce equal outputs across processes and runs.  Rule F4
    statically checks every function reachable from a marked one for
    wall-clock reads, module-level ``random``, ``id()`` and unordered
    ``set`` iteration.  Apply it to anything whose output is hashed,
    persisted, or replayed: wire emission, breaker transitions,
    checkpoint records, scenario generators.
    """
    setattr(func, DETERMINISTIC_ATTR, True)
    return func


#: Class names whose construction binds a manager.
MANAGER_CLASSES = frozenset(
    {
        "Manager",
        "CheckedManager",
        "SanitizedManager",
        "FaultyManager",
        "RecursiveKernelManager",
    }
)

#: Functions returning a manager class (``manager_class()(...)``).
MANAGER_FACTORIES = frozenset({"manager_class"})

#: Functions returning ``(manager, refs...)`` tuples.
MANAGER_RETURNING_FUNCTIONS = frozenset({"deserialize", "deserialize_instance"})

#: Parameter names conventionally holding a manager.
MANAGER_PARAMETER_NAMES = frozenset({"manager", "mgr"})
MANAGER_PARAMETER_SUFFIXES = ("_manager", "_mgr")

#: Manager methods that *consume* refs (rule F1 checks their args).
#: The ref-returning operator set minus the non-ref-consuming builders,
#: plus the pure observers.
REF_ACCEPTING_METHODS = frozenset(
    REF_RETURNING_METHODS - {"var", "new_var", "cube_ref", "onset", "offset", "dcset", "upper"}
) | frozenset(
    {
        "size",
        "size_multi",
        "sat_count",
        "eval",
        "support",
        "support_multi",
        "leq",
        "level",
        "branches",
        "top_branches",
        "is_constant",
        "protect",
        "unprotect",
        "validate",
        "nodes_reachable",
        "nodes_below",
        "level_profile",
        "pick_cube",
        "cubes",
        "is_cube",
        "minterms",
    }
)

#: Attribute calls that ship their arguments to another process/queue.
BOUNDARY_METHODS = frozenset({"send", "send_bytes", "put", "put_nowait"})

#: ``module.function`` pairs that persist their arguments.
BOUNDARY_FUNCTIONS = frozenset(
    {
        ("json", "dumps"),
        ("json", "dump"),
        ("pickle", "dumps"),
        ("pickle", "dump"),
        ("marshal", "dumps"),
        ("marshal", "dump"),
    }
)

#: Calls that correctly translate refs for a boundary (rule F3 exempts
#: any ref appearing inside one of these).
SERIALIZER_NAMES = frozenset(
    {"serialize", "serialize_instance", "to_wire", "ref_to_wire"}
)

#: Wall-clock reads (rule F4) as ``time.<fn>`` / bare imported names.
WALLCLOCK_FUNCTIONS = frozenset(
    {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns", "process_time", "clock"}
)

#: ``datetime``-ish receivers whose now/utcnow/today reads wall clock.
DATETIME_METHODS = frozenset({"now", "utcnow", "today"})

#: ``random.<fn>`` calls that hit the shared, unseeded module RNG.
#: (``random.Random(seed)`` constructs a private seeded stream and is
#: exempt unless called with no arguments.)
RANDOM_MODULE_EXEMPT = frozenset({"Random", "SystemRandom", "seed", "getstate", "setstate"})

#: Calls/constructs producing set-typed values (iteration order is
#: hash-randomized across runs for str keys and id-dependent for
#: objects).
SET_RETURNING_METHODS = frozenset({"support", "support_multi", "nodes_reachable"})

#: Method names too generic to resolve through the project call graph.
_CALL_STOPLIST = frozenset(
    {
        "add",
        "append",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "endswith",
        "exists",
        "extend",
        "findall",
        "flush",
        "format",
        "get",
        "group",
        "index",
        "insert",
        "is_dir",
        "is_file",
        "items",
        "join",
        "keys",
        "lower",
        "match",
        "mkdir",
        "open",
        "pop",
        "popleft",
        "put",
        "read",
        "read_text",
        "recv",
        "remove",
        "render",
        "search",
        "send",
        "setdefault",
        "sort",
        "split",
        "startswith",
        "strip",
        "sub",
        "update",
        "upper",
        "values",
        "write",
        "write_text",
    }
)

#: At most this many same-name candidates before an attribute call is
#: considered unresolvable (keeps the over-approximation bounded).
_MAX_ATTR_CANDIDATES = 3


def _call_receiver(node: ast.Call) -> Optional[str]:
    """The simple-name receiver of ``recv.meth(...)``, if any."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


def _call_attr(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _call_simple_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _name_loads(node: ast.AST) -> Iterator[ast.Name]:
    """All Name loads in a subtree."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            yield child


def _assigned_names(targets: Sequence[ast.AST]) -> Iterator[str]:
    for target in targets:
        for child in ast.walk(target):
            if isinstance(child, ast.Name):
                yield child.id


def _is_manager_param(name: str) -> bool:
    return name in MANAGER_PARAMETER_NAMES or name.endswith(
        MANAGER_PARAMETER_SUFFIXES
    )


def _is_manager_construction(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name) and func.id in MANAGER_CLASSES:
        return True
    if isinstance(func, ast.Attribute) and func.attr in MANAGER_CLASSES:
        return True
    # manager_class()(...) — a call whose callee is a factory call.
    if isinstance(func, ast.Call):
        inner = _call_simple_name(func) or _call_attr(func)
        return inner in MANAGER_FACTORIES
    return False


def _is_ref_param(name: str) -> bool:
    return name in REF_PARAMETER_NAMES or name.endswith(("_ref", "_refs"))


def _gc_compact_call(node: ast.Call) -> bool:
    """Is this ``<mgr>.gc(..., compact=True)``?"""
    if _call_attr(node) != "gc":
        return False
    for keyword in node.keywords:
        if keyword.arg == "compact":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    if len(node.args) >= 2:
        arg = node.args[1]
        return isinstance(arg, ast.Constant) and arg.value is True
    return False


class _FlowScope:
    """Statement-order provenance tracking for one function scope.

    Runs F1 (cross-manager), F2 (stale across compaction) and F3
    (boundary crossing) in a single linear pass over the statements of
    one function, descending into compound-statement bodies in source
    order.  Nested function/class definitions are separate scopes and
    are skipped here.
    """

    def __init__(self, scope: ast.AST, path: str, violations: List[Violation]):
        self.path = path
        self.violations = violations
        #: manager-name -> True (the set of names bound to managers)
        self.managers: Set[str] = set()
        #: ref-name -> name of the manager that minted it
        self.origin: Dict[str, str] = {}
        #: ref-names invalidated by a compacting gc (name -> gc lineno)
        self.stale: Dict[str, int] = {}
        #: remap-name -> manager whose compaction produced it
        self.remaps: Dict[str, str] = {}
        #: names known to hold raw refs (for F3), even with no origin
        self.ref_names: Set[str] = set()
        #: names holding set-typed values (used by the F4 source scan)
        self.set_names: Set[str] = set()
        self._seed_from_params(scope)

    def _seed_from_params(self, scope: ast.AST) -> None:
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        args = scope.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if _is_manager_param(arg.arg):
                self.managers.add(arg.arg)
            elif _is_ref_param(arg.arg):
                self.ref_names.add(arg.arg)

    # -- helpers -------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(rule, self.path, node.lineno, node.col_offset, message)
        )

    def _minting_manager(self, value: ast.AST) -> Optional[str]:
        """The manager a ref-valued RHS expression is minted by."""
        if not isinstance(value, ast.Call):
            return None
        receiver = _call_receiver(value)
        attr = _call_attr(value)
        if (
            receiver in self.managers
            and attr in REF_RETURNING_METHODS | {"branches", "top_branches"}
        ):
            return receiver
        name = _call_simple_name(value)
        if name in REF_RETURNING_FUNCTIONS and value.args:
            first = value.args[0]
            if isinstance(first, ast.Name) and first.id in self.managers:
                return first.id
        return None

    def _is_set_valued(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Name):
            return value.id in self.set_names
        if isinstance(value, ast.Call):
            name = _call_simple_name(value)
            if name in ("set", "frozenset"):
                return True
            if _call_attr(value) in SET_RETURNING_METHODS:
                return True
        return False

    # -- statement dispatch --------------------------------------------
    def run(self, scope: ast.AST) -> None:
        self._walk_body(scope.body)

    def _walk_body(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self._statement(statement)

    def _statement(self, statement: ast.stmt) -> None:
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # separate scopes
        if isinstance(statement, (ast.If, ast.While)):
            self._expression(statement.test)
            self._walk_body(statement.body)
            self._walk_body(statement.orelse)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._expression(statement.iter)
            for name in _assigned_names([statement.target]):
                self._rebind(name)
            self._walk_body(statement.body)
            self._walk_body(statement.orelse)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._expression(item.context_expr)
                if item.optional_vars is not None:
                    for name in _assigned_names([item.optional_vars]):
                        self._rebind(name)
            self._walk_body(statement.body)
            return
        if isinstance(statement, ast.Try):
            self._walk_body(statement.body)
            for handler in statement.handlers:
                self._walk_body(handler.body)
            self._walk_body(statement.orelse)
            self._walk_body(statement.finalbody)
            return
        # Simple statement: analyze the whole node, then apply bindings.
        self._expression(statement)
        if isinstance(statement, ast.Assign):
            self._bind(statement.targets, statement.value)
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            self._bind([statement.target], statement.value)
        elif isinstance(statement, ast.AugAssign):
            for name in _assigned_names([statement.target]):
                self._rebind(name)

    # -- expression analysis (F1 / F2-use / F3 / gc detection) ---------
    def _expression(self, node: ast.AST) -> None:
        remap_exempt: Set[str] = set()
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            simple = _call_simple_name(call)
            if simple in self.remaps:
                # Names being translated through a Remap are the one
                # legitimate use of a stale ref.
                for arg in call.args:
                    for name in _name_loads(arg):
                        remap_exempt.add(name.id)
        self._check_stale_uses(node, remap_exempt)
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            self._check_f1(call)
            self._check_f3(call)
            if _gc_compact_call(call):
                receiver = _call_receiver(call)
                if receiver in self.managers:
                    self._compaction(receiver, call)

    def _check_stale_uses(self, node: ast.AST, exempt: Set[str]) -> None:
        for name in _name_loads(node):
            if name.id in self.stale and name.id not in exempt:
                gc_line = self.stale.pop(name.id)  # flag once
                self._flag(
                    "F2",
                    name,
                    "ref %r was invalidated by the gc(compact=True) on "
                    "line %d; apply the returned Remap "
                    "(e.g. %s = remap(%s)) before reusing it"
                    % (name.id, gc_line, name.id, name.id),
                )

    def _check_f1(self, call: ast.Call) -> None:
        receiver = _call_receiver(call)
        if receiver not in self.managers:
            return
        if _call_attr(call) not in REF_ACCEPTING_METHODS:
            return
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for argument in arguments:
            for name in _name_loads(argument):
                minted_by = self.origin.get(name.id)
                if minted_by is not None and minted_by != receiver:
                    self._flag(
                        "F1",
                        name,
                        "ref %r was minted by manager %r but is passed to "
                        "%s.%s(); refs index one manager's node table and "
                        "must be rebuilt (e.g. via bdd.wire) to cross "
                        "managers"
                        % (name.id, minted_by, receiver, _call_attr(call)),
                    )

    def _check_f3(self, call: ast.Call) -> None:
        attr = _call_attr(call)
        receiver = _call_receiver(call)
        is_boundary = attr in BOUNDARY_METHODS or (
            receiver is not None and (receiver, attr) in BOUNDARY_FUNCTIONS
        )
        if not is_boundary:
            return
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for argument in arguments:
            for name in self._unserialized_names(argument):
                if name.id in self.origin or name.id in self.ref_names:
                    self._flag(
                        "F3",
                        name,
                        "raw ref %r crosses a process/serialization "
                        "boundary via %s(); refs are meaningless outside "
                        "their manager — encode with "
                        "repro.bdd.wire.serialize/serialize_instance"
                        % (name.id, attr),
                    )

    def _unserialized_names(self, node: ast.AST) -> Iterator[ast.Name]:
        """Name loads in ``node`` not inside a serializer call."""
        stack: List[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.Call):
                called = _call_simple_name(current) or _call_attr(current)
                if called in SERIALIZER_NAMES:
                    continue
            if isinstance(current, ast.Name) and isinstance(
                current.ctx, ast.Load
            ):
                yield current
            stack.extend(ast.iter_child_nodes(current))

    # -- binding updates ------------------------------------------------
    def _compaction(self, manager: str, call: ast.Call) -> None:
        for name, minted_by in self.origin.items():
            if minted_by == manager:
                self.stale[name] = call.lineno

    def _rebind(self, name: str) -> None:
        """A name was re-assigned to an unknown value."""
        self.origin.pop(name, None)
        self.stale.pop(name, None)
        self.remaps.pop(name, None)
        self.ref_names.discard(name)
        self.set_names.discard(name)
        self.managers.discard(name)

    def _bind(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        simple_targets = [
            target.id for target in targets if isinstance(target, ast.Name)
        ]
        for name in _assigned_names(targets):
            self._rebind(name)
        # Manager bindings.
        if _is_manager_construction(value):
            self.managers.update(simple_targets)
            return
        if (
            isinstance(value, ast.Call)
            and _call_simple_name(value) in MANAGER_RETURNING_FUNCTIONS
        ):
            # manager, roots = deserialize(blob): first unpacked target
            # is the manager, the rest are its refs.
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)) and target.elts:
                    first = target.elts[0]
                    if isinstance(first, ast.Name):
                        self.managers.add(first.id)
                        for element in target.elts[1:]:
                            if isinstance(element, ast.Name):
                                self.origin[element.id] = first.id
                elif isinstance(target, ast.Name):
                    self.managers.add(target.id)
            return
        # Remap application: x = remap(x).
        if (
            isinstance(value, ast.Call)
            and _call_simple_name(value) in self.remaps
        ):
            minted_by = self.remaps[_call_simple_name(value)]
            for name in simple_targets:
                self.origin[name] = minted_by
            return
        # Remap binding: remap = mgr.gc(..., compact=True).
        if isinstance(value, ast.Call) and _gc_compact_call(value):
            receiver = _call_receiver(value)
            if receiver in self.managers:
                for name in simple_targets:
                    self.remaps[name] = receiver
                    self.stale.pop(name, None)
            return
        # Ref mints.
        minted_by = self._minting_manager(value)
        if minted_by is not None:
            attr = _call_attr(value) if isinstance(value, ast.Call) else None
            if attr in ("branches", "top_branches"):
                skip = 1 if attr == "top_branches" else 0
                for target in targets:
                    if isinstance(target, (ast.Tuple, ast.List)):
                        for position, element in enumerate(target.elts):
                            if position >= skip and isinstance(
                                element, ast.Name
                            ):
                                self.origin[element.id] = minted_by
            else:
                for name in simple_targets:
                    self.origin[name] = minted_by
            return
        # Set-typed values (consumed by the F4 source scan).
        if self._is_set_valued(value):
            self.set_names.update(simple_targets)


# ----------------------------------------------------------------------
# Project model and the F4 determinism pass
# ----------------------------------------------------------------------
class _Function:
    """One function in the project: marker, calls, direct sources."""

    __slots__ = (
        "qualname",
        "name",
        "module",
        "class_name",
        "node",
        "is_deterministic",
        "calls",
        "sources",
    )

    def __init__(self, qualname, name, module, class_name, node):
        self.qualname = qualname
        self.name = name
        self.module = module
        self.class_name = class_name
        self.node = node
        self.is_deterministic = any(
            _decorator_name(decorator) == "deterministic"
            for decorator in node.decorator_list
        )
        self.calls: List[Tuple[Optional[str], str]] = []  # (receiver, name)
        self.sources: List[Tuple[int, int, str]] = []


def _decorator_name(decorator: ast.AST) -> Optional[str]:
    if isinstance(decorator, ast.Call):
        decorator = decorator.func
    if isinstance(decorator, ast.Name):
        return decorator.id
    if isinstance(decorator, ast.Attribute):
        return decorator.attr
    return None


class _Module:
    """One parsed module: functions, import table, source lines."""

    def __init__(self, path: str, tree: ast.Module, source_lines: Sequence[str]):
        self.path = path
        self.tree = tree
        self.source_lines = source_lines
        self.dotted = _dotted_name(path)
        self.functions: Dict[str, _Function] = {}  # simple name -> function
        self.imports: Dict[str, str] = {}  # local alias -> dotted origin
        self._collect_imports()
        self._collect_functions()

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = "%s.%s" % (node.module, alias.name)

    def _collect_functions(self) -> None:
        def visit(node: ast.AST, class_name: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = "%s:%s" % (
                        self.dotted,
                        child.name
                        if class_name is None
                        else "%s.%s" % (class_name, child.name),
                    )
                    function = _Function(
                        qualname, child.name, self, class_name, child
                    )
                    _scan_function(function)
                    # Later defs shadow earlier same-name ones; both are
                    # kept reachable through the project-wide name index.
                    self.functions.setdefault(child.name, function)
                    visit(child, class_name)
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                else:
                    visit(child, class_name)

        visit(self.tree, None)


def _dotted_name(path: str) -> str:
    """Best-effort dotted module name (``repro.bdd.wire``)."""
    file_path = Path(path)
    parts = [file_path.stem]
    parent = file_path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [file_path.parent.name]
    return ".".join(reversed(parts))


def _scan_function(function: _Function) -> None:
    """Record calls and direct nondeterminism sources of one function."""
    flow = _FlowScope(function.node, "<scan>", [])
    # A cheap pre-pass binds set-typed names so iteration checks below
    # can recognize them; violations from this throwaway run are dropped.
    flow.run(function.node)
    set_names = flow.set_names
    module = function.module

    def own_nodes(root: ast.AST) -> Iterator[ast.AST]:
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def is_set_expr(value: ast.AST) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Name):
            return value.id in set_names
        if isinstance(value, ast.Call):
            if _call_simple_name(value) in ("set", "frozenset"):
                return True
            if _call_attr(value) in SET_RETURNING_METHODS:
                return True
        return False

    def source(node: ast.AST, description: str) -> None:
        function.sources.append((node.lineno, node.col_offset, description))

    for node in own_nodes(function.node):
        if isinstance(node, ast.Call):
            receiver = _call_receiver(node)
            attr = _call_attr(node)
            simple = _call_simple_name(node)
            if simple is not None:
                function.calls.append((None, simple))
            elif attr is not None:
                function.calls.append((receiver, attr))
            # Wall clock.
            if receiver == "time" and attr in WALLCLOCK_FUNCTIONS:
                source(node, "wall-clock read time.%s()" % attr)
            elif (
                simple in WALLCLOCK_FUNCTIONS
                and module.imports.get(simple, "").startswith("time.")
            ):
                source(node, "wall-clock read %s()" % simple)
            elif attr in DATETIME_METHODS and receiver in (
                "datetime",
                "date",
            ):
                source(node, "wall-clock read %s.%s()" % (receiver, attr))
            # Module-level / unseeded random.
            elif receiver == "random" and attr is not None:
                if attr == "Random" and not node.args:
                    source(node, "unseeded random.Random()")
                elif attr not in RANDOM_MODULE_EXEMPT:
                    source(
                        node,
                        "module-level random.%s() (shared, unseeded RNG)"
                        % attr,
                    )
            elif (
                simple is not None
                and module.imports.get(simple, "").startswith("random.")
                and module.imports[simple].rsplit(".", 1)[-1]
                not in RANDOM_MODULE_EXEMPT
            ):
                source(node, "module-level random function %s()" % simple)
            # Interpreter addresses.
            elif simple == "id" and len(node.args) == 1:
                source(node, "id() (interpreter-address dependent)")
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if is_set_expr(node.iter):
                source(
                    node.iter,
                    "iteration over an unordered set (wrap in sorted())",
                )
        elif isinstance(node, ast.comprehension):
            if is_set_expr(node.iter):
                source(
                    node.iter,
                    "comprehension over an unordered set (wrap in sorted())",
                )


class _Project:
    """All parsed modules plus a name-indexed call graph."""

    def __init__(self, modules: Sequence[_Module]):
        self.modules = list(modules)
        self.by_simple_name: Dict[str, List[_Function]] = {}
        self.by_dotted: Dict[str, _Function] = {}
        self.module_by_dotted: Dict[str, _Module] = {}
        for module in self.modules:
            self.module_by_dotted[module.dotted] = module
            for function in module.functions.values():
                self.by_simple_name.setdefault(function.name, []).append(
                    function
                )
                self.by_dotted[
                    "%s.%s" % (module.dotted, function.name)
                ] = function

    def resolve(
        self, caller: _Function, receiver: Optional[str], name: str
    ) -> List[_Function]:
        module = caller.module
        if receiver is None:
            local = module.functions.get(name)
            if local is not None:
                return [local]
            imported = module.imports.get(name)
            if imported is not None:
                target = self.by_dotted.get(imported)
                return [target] if target is not None else []
            return []
        if receiver == "self" and caller.class_name is not None:
            local = module.functions.get(name)
            if local is not None and local.class_name == caller.class_name:
                return [local]
        imported = module.imports.get(receiver)
        if imported is not None:
            target_module = self.module_by_dotted.get(
                imported
            ) or self.module_by_dotted.get(imported.rsplit(".", 1)[-1])
            if target_module is not None:
                target = target_module.functions.get(name)
                return [target] if target is not None else []
        if name in _CALL_STOPLIST:
            return []
        candidates = self.by_simple_name.get(name, [])
        if 1 <= len(candidates) <= _MAX_ATTR_CANDIDATES:
            return candidates
        return []

    def determinism_violations(self) -> List[Violation]:
        violations: List[Violation] = []
        flagged: Set[Tuple[str, int, int]] = set()
        for module in self.modules:
            for function in module.functions.values():
                if not function.is_deterministic:
                    continue
                self._check_root(function, violations, flagged)
        return violations

    def _check_root(
        self,
        root: _Function,
        violations: List[Violation],
        flagged: Set[Tuple[str, int, int]],
    ) -> None:
        seen: Set[int] = set()
        queue: List[Tuple[_Function, Tuple[str, ...]]] = [(root, (root.qualname,))]
        while queue:
            function, chain = queue.pop()
            if id(function) in seen:
                continue
            seen.add(id(function))
            for line, col, description in function.sources:
                key = (function.module.path, line, col)
                if key in flagged:
                    continue
                flagged.add(key)
                if function is root:
                    via = ""
                else:
                    via = " (reached from @deterministic %s)" % root.qualname
                violations.append(
                    Violation(
                        "F4",
                        function.module.path,
                        line,
                        col,
                        "%s in %s, which must be deterministic%s"
                        % (description, function.qualname, via),
                    )
                )
            for receiver, name in function.calls:
                for callee in self.resolve(function, receiver, name):
                    if id(callee) not in seen:
                        queue.append((callee, chain + (callee.qualname,)))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _module_flow_violations(module: _Module) -> List[Violation]:
    violations: List[Violation] = []
    scopes: List[ast.AST] = [module.tree]
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    for scope in scopes:
        flow = _FlowScope(scope, module.path, violations)
        flow.run(scope)
    return violations


def _finish(
    modules: Sequence[_Module], violations: List[Violation]
) -> List[Violation]:
    lines_by_path = {module.path: module.source_lines for module in modules}
    kept = [
        violation
        for violation in violations
        if not _suppressed(
            violation.rule,
            violation.line,
            lines_by_path.get(violation.path, ()),
        )
    ]
    kept.sort(key=lambda violation: (violation.path, violation.line, violation.col))
    return kept


def analyze_source(source: str, path: str = "<string>") -> List[Violation]:
    """Run F1–F4 over one module's source text (single-module project)."""
    tree = ast.parse(source, filename=path)
    module = _Module(path, tree, source.splitlines())
    violations = _module_flow_violations(module)
    violations.extend(_Project([module]).determinism_violations())
    return _finish([module], violations)


def analyze_paths(paths: Optional[Sequence] = None) -> List[Violation]:
    """Run F1–F4 over files/directories as one project.

    Unreadable or unparsable files are skipped here; the lint driver
    reports them when it walks the same paths for L1–L5.
    """
    from repro.analysis.lint import default_lint_paths

    if not paths:
        paths = default_lint_paths()
    modules: List[_Module] = []
    for python_file in iter_python_files(paths):
        try:
            text = Path(python_file).read_text()
            tree = ast.parse(text, filename=str(python_file))
        except (OSError, SyntaxError):
            continue
        modules.append(_Module(str(python_file), tree, text.splitlines()))
    violations: List[Violation] = []
    for module in modules:
        violations.extend(_module_flow_violations(module))
    violations.extend(_Project(modules).determinism_violations())
    return _finish(modules, violations)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone flow-analysis entry point (text output only).

    ``repro-bdd lint --flow`` is the full driver with formats and
    baseline support; this exists for quick one-off runs.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro-flow", description="cross-module ref-flow analysis"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: repro + benchmarks/examples)",
    )
    arguments = parser.parse_args(argv)
    violations = analyze_paths(arguments.paths or None)
    for violation in violations:
        print(violation.render())
    if violations:
        print("%d flow violation(s)" % len(violations))
        return 1
    print("repro-flow: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
