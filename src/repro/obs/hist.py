"""The benchmark history ledger: ``benchmarks/BENCH_history.jsonl``.

Every benchmark in this repo writes a ``BENCH_*.json`` record, but
until now nothing persisted *across* runs — the bench trajectory was
empty, so "did this PR regress the sweep?" had no recorded answer.
This module gives each producer a row in an append-only,
schema-versioned JSON-lines ledger:

* :func:`record` extracts the headline metrics from every known
  ``BENCH_*.json`` in a directory and appends one ledger line per
  benchmark (``repro-bdd bench --record``);
* :func:`compare` re-extracts the current records and checks them
  against the most recent ledger entry per benchmark, flagging any
  metric that moved in its bad direction by more than a relative
  tolerance (``repro-bdd bench --compare``, the CI regression gate).

Each metric carries its *direction* — ``higher`` is better for
throughputs and speedups, ``lower`` for latencies and overheads — so
the comparison needs no per-metric configuration at check time.
Unknown ``BENCH_*.json`` files still get a ledger row via a generic
top-level-numeric extractor, but with no direction their metrics are
recorded without being gated.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional, Tuple

#: Ledger line schema version; bump on any shape change.
SCHEMA_VERSION = 1

#: Default ledger filename, next to the ``BENCH_*.json`` producers.
LEDGER_NAME = "BENCH_history.jsonl"

#: Default relative tolerance for :func:`compare`: a metric may move
#: up to this fraction in its bad direction before it is a regression.
#: Generous on purpose — the ledger spans machines and CI runners, and
#: this gate exists to catch step changes, not scheduler noise.
DEFAULT_TOLERANCE = 0.30

HIGHER = "higher"
LOWER = "lower"

#: ``{metric: (value, direction)}``; direction ``None`` = ungated.
Metrics = Dict[str, Tuple[float, Optional[str]]]


class LedgerError(ValueError):
    """A malformed ledger line or an unreadable benchmark record."""


def _extract_parallel_sweep(record: dict) -> Metrics:
    metrics: Metrics = {
        "speedup": (float(record["speedup"]), HIGHER),
        "pooled_seconds": (float(record["pooled_seconds"]), LOWER),
        "serial_seconds": (float(record["serial_seconds"]), LOWER),
    }
    phases = record.get("serve_stats", {}).get("phases", {})
    compute = phases.get("worker.compute")
    if compute:
        metrics["compute_p99_seconds"] = (float(compute["p99"]), LOWER)
    return metrics


def _extract_kernel(record: dict) -> Metrics:
    ite = record["ite_throughput"]
    return {
        "iterative_steps_per_sec": (
            float(ite["iterative_steps_per_sec"]),
            HIGHER,
        ),
        "ite_ratio": (float(ite["ratio"]), HIGHER),
        "sanitizer_slowdown": (
            float(record["sanitizer_overhead"]["slowdown"]),
            LOWER,
        ),
    }


def _extract_obs_overhead(record: dict) -> Metrics:
    return {
        "aggregate_overhead_pct": (
            float(record["aggregate_overhead_pct"]),
            # Overhead percentages hover near zero and can be negative
            # (noise); a relative gate on them divides by almost-zero
            # baselines, so record without gating.
            None,
        ),
    }


def _extract_serve_load(record: dict) -> Metrics:
    schedules = record.get("schedules", [])
    if not schedules:
        return {}
    return {
        "max_p99_seconds": (
            max(float(s["p99_seconds"]) for s in schedules),
            LOWER,
        ),
        "min_throughput_rps": (
            min(float(s["throughput_rps"]) for s in schedules),
            HIGHER,
        ),
    }


def _extract_generic(record: dict) -> Metrics:
    """Top-level numerics of an unknown record, recorded ungated."""
    return {
        key: (float(value), None)
        for key, value in record.items()
        if isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


#: Per-benchmark extractors, keyed by the ``<name>`` in
#: ``BENCH_<name>.json``.
EXTRACTORS: Dict[str, Callable[[dict], Metrics]] = {
    "parallel_sweep": _extract_parallel_sweep,
    "kernel": _extract_kernel,
    "obs_overhead": _extract_obs_overhead,
    "serve_load": _extract_serve_load,
}


def bench_name(path: str) -> Optional[str]:
    """``BENCH_<name>.json`` -> ``<name>``; None for other files."""
    base = os.path.basename(path)
    if (
        base.startswith("BENCH_")
        and base.endswith(".json")
        and base != "BENCH_history.jsonl"
    ):
        return base[len("BENCH_") : -len(".json")]
    return None


def discover_records(directory: str) -> List[Tuple[str, str]]:
    """Sorted ``(name, path)`` pairs for every ``BENCH_*.json``."""
    found = []
    for entry in sorted(os.listdir(directory)):
        name = bench_name(entry)
        if name is not None:
            found.append((name, os.path.join(directory, entry)))
    return found


def extract(name: str, path: str) -> Metrics:
    """Headline metrics of one benchmark record file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError) as error:
        raise LedgerError("unreadable record %s: %s" % (path, error))
    extractor = EXTRACTORS.get(name, _extract_generic)
    try:
        return extractor(record)
    except (KeyError, TypeError, ValueError) as error:
        raise LedgerError(
            "record %s does not match the %r extractor: %s"
            % (path, name, error)
        )


def _ledger_line(
    name: str, source: str, metrics: Metrics, recorded_at: str
) -> str:
    payload = {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "source": os.path.basename(source),
        "recorded_at": recorded_at,
        "metrics": {
            metric: {"value": value, "direction": direction}
            for metric, (value, direction) in sorted(metrics.items())
        },
    }
    return json.dumps(payload, sort_keys=True)


def record(
    directory: str,
    ledger_path: Optional[str] = None,
    recorded_at: str = "",
) -> List[dict]:
    """Append one ledger line per ``BENCH_*.json`` in ``directory``.

    Returns the appended entries (parsed).  ``recorded_at`` is a
    caller-supplied timestamp string (kept out of this module so the
    ledger logic stays deterministic and testable).
    """
    if ledger_path is None:
        ledger_path = os.path.join(directory, LEDGER_NAME)
    lines = []
    for name, path in discover_records(directory):
        metrics = extract(name, path)
        if metrics:
            lines.append(_ledger_line(name, path, metrics, recorded_at))
    with open(ledger_path, "a", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return [json.loads(line) for line in lines]


def load_ledger(ledger_path: str) -> List[dict]:
    """Parse every ledger line; raises :class:`LedgerError` on damage."""
    if not os.path.isfile(ledger_path):
        return []
    entries = []
    with open(ledger_path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError as error:
                raise LedgerError(
                    "%s:%d: not JSON: %s" % (ledger_path, lineno, error)
                )
            if not isinstance(entry, dict) or "bench" not in entry:
                raise LedgerError(
                    "%s:%d: not a ledger entry" % (ledger_path, lineno)
                )
            schema = entry.get("schema")
            if schema != SCHEMA_VERSION:
                raise LedgerError(
                    "%s:%d: schema %r (this build reads %d)"
                    % (ledger_path, lineno, schema, SCHEMA_VERSION)
                )
            entries.append(entry)
    return entries


def latest_baselines(entries: List[dict]) -> Dict[str, dict]:
    """The most recent ledger entry per benchmark (file order)."""
    latest: Dict[str, dict] = {}
    for entry in entries:
        latest[entry["bench"]] = entry
    return latest


def compare(
    directory: str,
    ledger_path: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict:
    """Check current ``BENCH_*.json`` records against the ledger.

    Returns ``{"ok": bool, "checked": n, "regressions": [...],
    "skipped": [...]}``.  A benchmark with no ledger baseline is
    skipped (recording it is the fix, not a failure); a directed
    metric regresses when it moves more than ``tolerance``
    (relative) in its bad direction.
    """
    if ledger_path is None:
        ledger_path = os.path.join(directory, LEDGER_NAME)
    baselines = latest_baselines(load_ledger(ledger_path))
    regressions = []
    skipped = []
    checked = 0
    for name, path in discover_records(directory):
        baseline = baselines.get(name)
        if baseline is None:
            skipped.append({"bench": name, "reason": "no baseline"})
            continue
        current = extract(name, path)
        for metric, (value, direction) in sorted(current.items()):
            base_entry = baseline["metrics"].get(metric)
            if base_entry is None or direction is None:
                continue
            checked += 1
            base_value = float(base_entry["value"])
            scale = max(abs(base_value), 1e-12)
            delta = (value - base_value) / scale
            bad = (
                -delta if direction == HIGHER else delta
            ) > tolerance
            if bad:
                regressions.append(
                    {
                        "bench": name,
                        "metric": metric,
                        "baseline": base_value,
                        "current": value,
                        "direction": direction,
                        "relative_change": round(delta, 4),
                        "tolerance": tolerance,
                    }
                )
    return {
        "ok": not regressions,
        "checked": checked,
        "regressions": regressions,
        "skipped": skipped,
    }
