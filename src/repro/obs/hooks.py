"""Composing step-hook dispatch for :class:`~repro.bdd.manager.Manager`.

The manager's step-hook slot is single-valued: ``install_step_hook``
replaces whatever was there.  That was fine when the only client was
the :mod:`robust` governor, but with tracing and ``CheckedManager``
node auditing also wanting per-step callbacks, a silent replacement
becomes a footgun — installing an auditor would quietly disarm the
governor that enforces resource budgets.

:func:`attach_hook` / :func:`detach_hook` fix this by upgrading the
slot to a :class:`StepHookDispatcher` the moment a second hook
arrives.  The dispatcher preserves attachment order (governors abort
via exceptions, so hooks attached first veto first) and refuses to
attach the same hook twice — double-attachment means double-counting,
which for a budget governor silently halves every limit.

The single-hook fast path keeps the raw callable in the slot: with one
hook attached there is no dispatcher in the loop at all, so governed
minimization without tracing pays nothing for this machinery.
"""

from __future__ import annotations

from typing import Callable, List, Optional

StepHook = Callable[[str], None]


class StepHookDispatcher:
    """Fans one manager step event out to several hooks, in order.

    Exceptions propagate immediately: a budget governor raising
    ``BudgetExceeded`` aborts the step exactly as it would when
    installed alone, and hooks attached after it do not observe the
    aborted event.
    """

    __slots__ = ("hooks",)

    def __init__(self, hooks: Optional[List[StepHook]] = None) -> None:
        self.hooks: List[StepHook] = list(hooks) if hooks else []

    def __call__(self, event: str) -> None:
        for hook in self.hooks:
            hook(event)

    def add(self, hook: StepHook) -> None:
        """Append ``hook``; raises ``ValueError`` if already attached."""
        if any(existing is hook for existing in self.hooks):
            raise ValueError(
                "hook %r is already attached; detach it first "
                "(re-attachment would double-count every event)" % (hook,)
            )
        self.hooks.append(hook)

    def remove(self, hook: StepHook) -> bool:
        """Remove ``hook`` if present; returns whether it was found."""
        for index, existing in enumerate(self.hooks):
            if existing is hook:
                del self.hooks[index]
                return True
        return False

    def __len__(self) -> int:
        return len(self.hooks)

    def __repr__(self) -> str:
        return "StepHookDispatcher(%d hooks)" % len(self.hooks)


def attach_hook(manager, hook: StepHook) -> StepHook:
    """Attach ``hook`` to ``manager`` alongside any existing hooks.

    * Empty slot: the hook is installed directly (no dispatcher).
    * One plain hook installed: the slot is upgraded to a dispatcher
      holding the existing hook first, then ``hook``.
    * Dispatcher installed: ``hook`` is appended.

    Raises ``ValueError`` if ``hook`` is already attached (directly or
    inside a dispatcher).  Returns ``hook`` so call sites can keep the
    handle they need for :func:`detach_hook`.
    """
    current = manager.step_hook
    if current is None:
        manager.install_step_hook(hook)
    elif isinstance(current, StepHookDispatcher):
        current.add(hook)
    elif current is hook:
        raise ValueError(
            "hook %r is already installed; detach it first "
            "(re-attachment would double-count every event)" % (hook,)
        )
    else:
        manager.install_step_hook(StepHookDispatcher([current, hook]))
    return hook


def detach_hook(manager, hook: StepHook) -> bool:
    """Detach ``hook`` from ``manager``; returns whether it was attached.

    Collapses the slot back down: a dispatcher left holding one hook is
    replaced by that hook directly, and an empty dispatcher clears the
    slot — so attach/detach pairs leave the manager exactly as found.
    """
    current = manager.step_hook
    if current is hook:
        manager.install_step_hook(None)
        return True
    if isinstance(current, StepHookDispatcher):
        found = current.remove(hook)
        if len(current.hooks) == 1:
            manager.install_step_hook(current.hooks[0])
        elif not current.hooks:
            manager.install_step_hook(None)
        return found
    return False


def attached_hooks(manager) -> List[StepHook]:
    """The hooks currently attached to ``manager``, in dispatch order."""
    current = manager.step_hook
    if current is None:
        return []
    if isinstance(current, StepHookDispatcher):
        return list(current.hooks)
    return [current]
