"""repro.obs — metrics, structured tracing, and composing step hooks.

The observability layer for the reproduction: a process-local
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
histogram summaries) that the BDD core, the minimization heuristics
and the serving layer report into; a :class:`~repro.obs.trace.Tracer`
emitting Perfetto-loadable Chrome trace events for schedule windows,
sibling matching, DMG sink computation and clique-cover rounds; and
:func:`~repro.obs.hooks.attach_hook` / ``detach_hook`` so the robust
governor, the CheckedManager auditor and the tracer can share one
manager's step-hook slot.

Everything is opt-in: with no registry enabled and no tracer active,
the instrumented paths cost a single ``is None`` test (bounded by the
``bench_obs_overhead`` benchmark at <5% on ``bench_bdd_ops``
workloads).  See ``docs/observability.md``.
"""

from repro.obs import dist, hist, metrics, trace
from repro.obs.dist import (
    PhaseAccumulator,
    TraceContext,
    TraceMerger,
    phase_breakdown,
)
from repro.obs.hooks import (
    StepHookDispatcher,
    attach_hook,
    attached_hooks,
    detach_hook,
)
from repro.obs.metrics import (
    MetricsRegistry,
    collecting,
    diff_statistics,
    merge_counts,
)
from repro.obs.trace import Tracer, tracing, validate_events

__all__ = [
    "MetricsRegistry",
    "PhaseAccumulator",
    "StepHookDispatcher",
    "TraceContext",
    "TraceMerger",
    "Tracer",
    "attach_hook",
    "attached_hooks",
    "collecting",
    "detach_hook",
    "diff_statistics",
    "dist",
    "hist",
    "merge_counts",
    "metrics",
    "phase_breakdown",
    "trace",
    "tracing",
    "validate_events",
]
