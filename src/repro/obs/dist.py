"""Distributed tracing and phase-level latency accounting.

:mod:`repro.obs.trace` (PR 4) sees one process.  The serving stack is
three: the caller (gateway / sweep harness), the pool's dispatcher
threads, and the worker children.  This module stitches them into a
single timeline:

* a :class:`TraceContext` — trace id, parent span, admission sequence
  number and a **logical-clock offset** (the parent-timeline µs at
  which the request was sent) — rides the request envelope next to the
  wire payload;
* the worker runs a private span buffer per traced request (a fresh
  :class:`~repro.obs.trace.Tracer`), so the decode / manager-build /
  compute / gc / encode phases *and* every library span they contain
  (schedule windows, sibling passes, gc) are captured and shipped back
  with the reply;
* the pool's :class:`TraceMerger` rebases each bundle onto the parent
  timeline at the recorded send offset and emits one Chrome-trace
  stream with a per-process track for the parent and every worker —
  ordered by **admission sequence**, never by completion order, so the
  merged trace is deterministic even when workers finish out of order.

On top of the raw spans, :class:`PhaseAccumulator` keeps exact
observation lists per phase (p50/p95/p99 by nearest rank, not
summaries), and the ``phase_breakdown`` / ``collapsed_stacks`` helpers
aggregate a merged trace into the queue/IPC/decode/compute/encode
shares that ``repro-bdd perf-report`` prints.

Per-request accounting is exact by construction: the parent measures
``pool.request`` wall time and its ``pool.queue``/``pool.dispatch``
children directly, the worker reports its own phase durations, and the
two residuals — IPC (dispatch minus worker wall) and uninstrumented
tails — are emitted as explicit pseudo-phases, so each request's
phases sum to its wall time instead of silently under-counting.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Worker bundle depths are shifted by this much when rebased under
#: the parent: ``pool.request`` (0) > ``pool.dispatch`` (1) >
#: ``worker.request`` (2) > worker phases (3) > library spans (4+).
WORKER_DEPTH_SHIFT = 2

#: The worker-side phase names, in pipeline order.
WORKER_PHASES = (
    "worker.decode",
    "worker.manager",
    "worker.compute",
    "worker.gc",
    "worker.encode",
)

#: Every serve-path counter the merged ``repro-bdd metrics --parallel``
#: view must surface, even at zero: a counter that only appears once
#: something goes wrong is invisible exactly when dashboards are being
#: built.  Grouped by the module that increments them.
SERVE_COUNTER_KEYS = (
    # repro.serve.pool / repro.serve.service
    "serve.batch_cells",
    "serve.batch_partial_failures",
    "serve.batches",
    "serve.probe_failures",
    "serve.retries",
    "serve.short_circuits",
    "serve.watchdog_kills",
    "serve.worker_crashes",
    "serve.worker_recycles",
    "serve.worker_replacements",
    # repro.serve.gateway
    "gateway.degraded",
    "gateway.drains",
    "gateway.hedge_wins",
    "gateway.hedges",
    "gateway.probe_rounds",
    "gateway.retries",
    "gateway.shed_closed",
    "gateway.shed_expired",
    "gateway.shed_overload",
    "gateway.short_circuits",
    "gateway.supervisor_restarts",
    # repro.verify lanes
    "verify.instances",
    "verify.lane_requests",
    "verify.lane_violations",
    "verify.oracle_checks",
    "verify.oracle_findings",
    "verify.shrink_accepted_steps",
    "verify.shrinks",
)


def ensure_serve_counters(registry: obs_metrics.MetricsRegistry) -> None:
    """Zero-fill every :data:`SERVE_COUNTER_KEYS` counter in place.

    ``inc(name, 0)`` materializes the key without changing any count
    that instrumentation already recorded, so the merged parallel view
    always exports the full serve-path key set.
    """
    for name in SERVE_COUNTER_KEYS:
        registry.inc(name, 0)


class TraceContext:
    """The cross-process trace context carried in a request envelope.

    ``seq`` is the pool's admission sequence number — the tie-breaker
    every deterministic ordering in this module uses.  ``sent_at_us``
    is the parent tracer's timeline reading (µs since its origin) at
    the moment the request was written to the worker pipe; the
    worker's span bundle is recorded relative to its own receipt and
    rebased onto the parent timeline at this offset, which keeps the
    merge correct without assuming the two processes share a clock.

    ``detail`` selects the tracing level for this request: phase spans
    (decode / manager / compute / gc / encode) are recorded on every
    traced request, but the much denser library spans — clique-cover
    rounds, per-level minimization — only when ``detail`` is set.  The
    pool samples detail every :data:`TRACE_DETAIL_EVERY` admissions,
    which keeps tracing overhead on sub-millisecond requests inside
    the budget ``bench_parallel_sweep.py --trace`` gates.
    """

    __slots__ = ("trace_id", "seq", "parent_span", "sent_at_us", "detail")

    def __init__(
        self,
        trace_id: str,
        seq: int,
        parent_span: str,
        sent_at_us: float = 0.0,
        detail: bool = True,
    ) -> None:
        self.trace_id = trace_id
        self.seq = seq
        self.parent_span = parent_span
        self.sent_at_us = sent_at_us
        self.detail = detail

    def to_wire(self) -> Dict[str, object]:
        """A picklable dict for the request envelope."""
        return {
            "trace_id": self.trace_id,
            "seq": self.seq,
            "parent_span": self.parent_span,
            "sent_at_us": self.sent_at_us,
            "detail": self.detail,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            seq=int(payload["seq"]),
            parent_span=str(payload["parent_span"]),
            sent_at_us=float(payload.get("sent_at_us", 0.0)),
            detail=bool(payload.get("detail", True)),
        )

    def __repr__(self) -> str:
        return "TraceContext(%s seq=%d parent=%s)" % (
            self.trace_id,
            self.seq,
            self.parent_span,
        )


def request_trace_id(seq: int) -> str:
    """The deterministic trace id for admission sequence ``seq``."""
    return "req-%06d" % seq


#: Library-span detail is sampled: every Nth admitted request carries
#: ``detail=True`` and ships the worker's real span buffer (library
#: spans included); the rest get their worker track synthesized from
#: phase durations.  Sequence 0 is always detailed, so even a
#: single-request trace shows the full hierarchy.  Prime so the
#: sample decorrelates from sweep grids (benchmarks × calls ×
#: heuristics), which stride admission order with small composite
#: periods.
TRACE_DETAIL_EVERY = 13


class PhaseClock:
    """Accumulates named phase durations, with spans when tracing.

    One clock per request.  Each :meth:`phase` block adds its wall
    time to ``durations[name]`` unconditionally (phase accounting is
    always on — a handful of ``perf_counter`` pairs per request) and
    additionally records a span on ``tracer`` when one was supplied.
    The tracer is explicit rather than the module-global active one so
    workers can record phase spans on the request-private bundle
    tracer even for requests whose ``detail`` flag left the global
    tracer deactivated (library spans sampled out).
    """

    __slots__ = ("durations", "_tracer")

    def __init__(self, tracer: Optional[obs_trace.Tracer] = None) -> None:
        self.durations: Dict[str, float] = {}
        self._tracer = tracer

    @contextmanager
    def phase(self, name: str, **args: object) -> Iterator[None]:
        tracer = self._tracer
        span = (
            tracer.span(name, **args)
            if tracer is not None
            else obs_trace._NULL_SPAN
        )
        start = time.perf_counter()
        try:
            with span:
                yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed


class PhaseAccumulator:
    """Exact per-phase latency distributions (p50/p95/p99 by rank).

    :class:`~repro.obs.metrics.MetricsRegistry` histograms keep O(1)
    count/total/min/max summaries; tail percentiles need the samples.
    Request volumes here are sweep-sized (hundreds, not millions), so
    the accumulator simply keeps every observation, guarded by a lock
    because the pool observes from its dispatcher threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: Dict[str, List[float]] = {}

    def observe(self, phase: str, seconds: float) -> None:
        with self._lock:
            self._samples.setdefault(phase, []).append(seconds)

    def merge(self, durations: Dict[str, float]) -> None:
        """Observe one request's ``{phase: seconds}`` dict."""
        for phase, seconds in durations.items():
            self.observe(phase, float(seconds))

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()

    @staticmethod
    def _rank(ordered: Sequence[float], q: float) -> float:
        """Nearest-rank percentile of an ascending sample list."""
        index = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[index]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {count,total,p50,p95,p99,max}}`` over all samples."""
        with self._lock:
            samples = {
                phase: sorted(values)
                for phase, values in self._samples.items()
            }
        return {
            phase: {
                "count": len(ordered),
                "total": sum(ordered),
                "p50": self._rank(ordered, 0.50),
                "p95": self._rank(ordered, 0.95),
                "p99": self._rank(ordered, 0.99),
                "max": ordered[-1],
            }
            for phase, ordered in sorted(samples.items())
            if ordered
        }


#: Process-global phase accumulator: the pool mirrors every request's
#: phases here so ``repro-bdd metrics`` can export exact percentiles
#: without holding a reference to any particular pool.
GLOBAL_PHASES = PhaseAccumulator()


class TraceMerger:
    """Merges per-request span groups into one deterministic stream.

    The pool allocates an admission sequence number per traced request
    (:meth:`next_seq`), buffers the parent-side events and the
    worker's rebased bundle under that number (:meth:`add_group`), and
    flushes everything **sorted by sequence** — never by arrival — so
    two workers completing out of order still produce byte-identical
    merged output.  Per-process ``process_name`` metadata events give
    Perfetto one track per pid.
    """

    def __init__(self, parent_label: str = "pool") -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._groups: Dict[int, List[Dict[str, object]]] = {}
        self._process_labels: Dict[int, str] = {}
        self._parent_label = parent_label

    def next_seq(self) -> int:
        """Allocate the next admission sequence number."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            return seq

    def register_process(self, pid: Optional[int], label: str) -> None:
        """Name the Perfetto track for ``pid`` (first label wins)."""
        if pid is None:
            return
        with self._lock:
            self._process_labels.setdefault(int(pid), label)

    def add_group(
        self,
        seq: int,
        parent_events: List[Dict[str, object]],
        context: Optional[TraceContext] = None,
        bundle: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        """Buffer one request's events under its admission sequence.

        ``parent_events`` are already on the parent timeline.  The
        worker ``bundle`` (if the request got that far) is rebased
        here: each event's ``ts`` is shifted by the context's
        ``sent_at_us`` logical-clock offset and its ``args.depth`` by
        :data:`WORKER_DEPTH_SHIFT`, re-parenting the worker's spans
        under this request's ``pool.dispatch``.
        """
        events = list(parent_events)
        if bundle and context is not None:
            for event in bundle:
                rebased = dict(event)
                rebased["ts"] = round(
                    float(event["ts"]) + context.sent_at_us, 3
                )
                args = dict(event.get("args", {}))
                args["depth"] = (
                    int(args.get("depth", 0)) + WORKER_DEPTH_SHIFT
                )
                args.setdefault("trace_id", context.trace_id)
                args.setdefault("seq", context.seq)
                rebased["args"] = args
                events.append(rebased)
                self.register_process(
                    event.get("pid"),  # type: ignore[arg-type]
                    "worker-%s" % event.get("pid"),
                )
        with self._lock:
            self._groups[seq] = events

    def merged_events(self) -> List[Dict[str, object]]:
        """The deterministic merged stream: metadata, then groups.

        Groups are emitted in ascending admission sequence, each
        group's events in insertion order — arrival order never
        matters.
        """
        with self._lock:
            labels = dict(self._process_labels)
            groups = {seq: list(ev) for seq, ev in self._groups.items()}
        merged: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
            for pid, label in sorted(labels.items())
        ]
        for seq in sorted(groups):
            merged.extend(groups[seq])
        return merged

    def flush(self, tracer: Optional[obs_trace.Tracer]) -> int:
        """Emit the merged stream into ``tracer`` and clear buffers.

        Returns the number of events emitted (0 when no tracer is
        active or nothing was buffered).
        """
        events = self.merged_events()
        with self._lock:
            self._groups.clear()
            self._process_labels.clear()
        if tracer is None or not events:
            return 0
        for event in events:
            tracer.emit(event)
        return len(events)

    def pending(self) -> int:
        with self._lock:
            return len(self._groups)


def synthesize_worker_spans(
    phases: Dict[str, float],
    pid: Optional[int],
    context: TraceContext,
) -> List[Dict[str, object]]:
    """Worker-track span events rebuilt from a phase-duration dict.

    Non-detail traced requests ship no span bundle — only the
    always-on ``phases`` accounting every reply carries.  The pool
    reconstructs the worker track here, already on the parent
    timeline (base ``ts`` = the context's logical-clock offset, depth
    already shifted): ``worker.request`` with the named
    :data:`WORKER_PHASES` laid out consecutively inside it.
    Durations are exact (they are the measured ones); only the
    in-request *positions* are approximate, since the gaps between
    phases are lumped after the last one.  Every event carries
    ``args.synthesized`` so trace readers can tell the reconstruction
    from a sampled real buffer.  Emitting directly in merged
    coordinates keeps :meth:`TraceMerger.add_group` from copying and
    rebasing these events per request on the dispatch path.
    """
    base = context.sent_at_us
    total = round(float(phases.get("worker.request", 0.0)) * 1e6, 3)
    events: List[Dict[str, object]] = [
        {
            "name": "worker.request",
            "ph": "X",
            "ts": base,
            "dur": total,
            "pid": pid,
            "tid": obs_trace.TRACE_TID,
            "cat": "repro",
            "args": {
                "depth": WORKER_DEPTH_SHIFT,
                "seq": context.seq,
                "trace_id": context.trace_id,
                "parent": context.parent_span,
                "synthesized": True,
            },
        }
    ]
    cursor = 0.0
    for name in WORKER_PHASES:
        if name not in phases:
            continue
        # Clamp so per-phase rounding can never push a child past the
        # end of its synthesized parent.
        dur = min(
            round(float(phases[name]) * 1e6, 3),
            round(total - cursor, 3),
        )
        if dur < 0:
            break
        events.append(
            {
                "name": name,
                "ph": "X",
                "ts": round(base + cursor, 3),
                "dur": dur,
                "pid": pid,
                "tid": obs_trace.TRACE_TID,
                "cat": "repro",
                "args": {
                    "depth": WORKER_DEPTH_SHIFT + 1,
                    "seq": context.seq,
                    "trace_id": context.trace_id,
                    "synthesized": True,
                },
            }
        )
        cursor = round(cursor + dur, 3)
    return events


def events_json(events: List[Dict[str, object]]) -> bytes:
    """Canonical JSON bytes for an event list (byte-identity tests)."""
    return json.dumps(
        events, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


class RequestSpanTracker:
    """Root spans for gateway requests, closed on *every* exit path.

    The gateway opens a handle at admission and must close it exactly
    once — on completion, degradation, or any shed (overload, deadline
    expiry, close-time drain), where the closing event carries a
    ``shed_reason`` attribute.  ``open_count`` exposes leaked handles
    to the test suite; closing is idempotent so racing completion
    against drain cannot double-emit.
    """

    def __init__(self, name: str = "gateway.request") -> None:
        self._lock = threading.Lock()
        self._name = name
        self._next = 0
        self._open: Dict[int, Dict[str, object]] = {}
        self.closed = 0

    def open(self, **args: object) -> int:
        """Open a root span; returns a handle for :meth:`close`."""
        tracer = obs_trace.active()
        with self._lock:
            handle = self._next
            self._next += 1
            self._open[handle] = {
                "start": time.perf_counter(),
                "args": dict(args),
                "tracer": tracer,
            }
        return handle

    def close(self, handle: int, **args: object) -> bool:
        """Close a handle; no-op (False) if already closed."""
        with self._lock:
            record = self._open.pop(handle, None)
            if record is None:
                return False
            self.closed += 1
        tracer: Optional[obs_trace.Tracer] = record["tracer"]  # type: ignore[assignment]
        if tracer is not None:
            end = time.perf_counter()
            start: float = record["start"]  # type: ignore[assignment]
            event_args: Dict[str, object] = {"depth": 0}
            event_args.update(record["args"])  # type: ignore[arg-type]
            event_args.update(args)
            tracer.emit(
                {
                    "name": self._name,
                    "ph": "X",
                    "ts": tracer.offset_us(start),
                    "dur": round((end - start) * 1e6, 3),
                    "pid": tracer._pid,
                    "tid": obs_trace.TRACE_TID + 1,
                    "cat": "repro",
                    "args": event_args,
                }
            )
        return True

    @property
    def open_count(self) -> int:
        with self._lock:
            return len(self._open)


# ----------------------------------------------------------------------
# perf-report: aggregate a merged trace into a phase breakdown
# ----------------------------------------------------------------------

#: The per-request phase rows ``phase_breakdown`` reports, in timeline
#: order.  ``ipc`` and the two ``*.other`` rows are residuals, so each
#: request's rows sum to its ``pool.request`` wall time exactly.
BREAKDOWN_PHASES = (
    "pool.queue",
    "ipc",
    "worker.decode",
    "worker.manager",
    "worker.compute",
    "worker.gc",
    "worker.encode",
    "worker.other",
    "pool.other",
)


def load_trace(path: str) -> List[Dict[str, object]]:
    """Load a Chrome-trace JSON file written by the tracer."""
    with open(path, "r", encoding="utf-8") as handle:
        events = json.load(handle)
    if not isinstance(events, list):
        raise ValueError("trace file must contain a JSON array of events")
    return events


def _spans_by_request(
    events: List[Dict[str, object]],
) -> Dict[int, Dict[str, float]]:
    """Index span durations (µs) by admission sequence and name."""
    requests: Dict[int, Dict[str, float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        seq = args.get("seq")
        if seq is None:
            continue
        per_request = requests.setdefault(int(seq), {})
        name = str(event["name"])
        per_request[name] = per_request.get(name, 0.0) + float(
            event["dur"]
        )
    return requests


def phase_breakdown(
    events: List[Dict[str, object]],
) -> Dict[str, object]:
    """Aggregate a merged trace into per-phase time shares.

    Returns ``{"requests": n, "wall_us": total, "phases": {name:
    {"us": t, "share": t/total}}, "per_request": [...]}``.  Residual
    rows make the accounting exact: ``ipc`` is the dispatch time the
    worker cannot see (pipe transfer + scheduling), ``worker.other``
    is worker wall not covered by a named phase, and ``pool.other`` is
    parent-side time outside queue + dispatch.
    """
    requests = _spans_by_request(events)
    per_request: List[Dict[str, object]] = []
    totals: Dict[str, float] = {name: 0.0 for name in BREAKDOWN_PHASES}
    wall_total = 0.0
    for seq in sorted(requests):
        spans = requests[seq]
        wall = spans.get("pool.request")
        if wall is None:
            continue
        queue = spans.get("pool.queue", 0.0)
        dispatch = spans.get("pool.dispatch", 0.0)
        worker_wall = spans.get("worker.request", 0.0)
        named = {
            phase: spans.get(phase, 0.0) for phase in WORKER_PHASES
        }
        row: Dict[str, float] = {"pool.queue": queue}
        row["ipc"] = max(0.0, dispatch - worker_wall)
        row.update(named)
        row["worker.other"] = max(
            0.0, worker_wall - sum(named.values())
        )
        row["pool.other"] = max(0.0, wall - queue - dispatch)
        per_request.append(
            {"seq": seq, "wall_us": wall, "phases": row}
        )
        wall_total += wall
        for phase, value in row.items():
            totals[phase] += value
    phases = {
        phase: {
            "us": round(totals[phase], 3),
            "share": (
                totals[phase] / wall_total if wall_total > 0 else 0.0
            ),
        }
        for phase in BREAKDOWN_PHASES
    }
    return {
        "requests": len(per_request),
        "wall_us": round(wall_total, 3),
        "phases": phases,
        "per_request": per_request,
    }


def render_phase_table(breakdown: Dict[str, object]) -> str:
    """The human-readable phase table ``perf-report`` prints."""
    lines = [
        "phase            total_ms    share",
        "-----            --------    -----",
    ]
    phases: Dict[str, Dict[str, float]] = breakdown["phases"]  # type: ignore[assignment]
    for phase in BREAKDOWN_PHASES:
        entry = phases.get(phase)
        if entry is None:
            continue
        lines.append(
            "%-16s %9.3f   %5.1f%%"
            % (phase, entry["us"] / 1e3, entry["share"] * 100.0)
        )
    lines.append(
        "%-16s %9.3f   100.0%%"
        % ("wall", float(breakdown["wall_us"]) / 1e3)
    )
    return "\n".join(lines)


def collapsed_stacks(events: List[Dict[str, object]]) -> List[str]:
    """Collapsed-stack lines (``a;b;c weight_us``) for flamegraphs.

    One stack per phase row, aggregated across requests, weights in
    integer microseconds — the semicolon format ``flamegraph.pl`` and
    speedscope consume directly.
    """
    breakdown = phase_breakdown(events)
    stacks = {
        "pool.queue": "pool.request;pool.queue",
        "ipc": "pool.request;pool.dispatch;ipc",
        "worker.decode": (
            "pool.request;pool.dispatch;worker.request;worker.decode"
        ),
        "worker.manager": (
            "pool.request;pool.dispatch;worker.request;worker.manager"
        ),
        "worker.compute": (
            "pool.request;pool.dispatch;worker.request;worker.compute"
        ),
        "worker.gc": (
            "pool.request;pool.dispatch;worker.request;worker.gc"
        ),
        "worker.encode": (
            "pool.request;pool.dispatch;worker.request;worker.encode"
        ),
        "worker.other": (
            "pool.request;pool.dispatch;worker.request;worker.other"
        ),
        "pool.other": "pool.request;pool.other",
    }
    phases: Dict[str, Dict[str, float]] = breakdown["phases"]  # type: ignore[assignment]
    lines = []
    for phase in BREAKDOWN_PHASES:
        weight = int(round(phases[phase]["us"]))
        if weight > 0:
            lines.append("%s %d" % (stacks[phase], weight))
    return lines


def build_parent_group(
    tracer: obs_trace.Tracer,
    context: TraceContext,
    method: str,
    status: str,
    t_entry: float,
    t_checkout: float,
    t_send: float,
    t_done: float,
    **extra: object,
) -> List[Dict[str, object]]:
    """The parent-side span triple for one pool request.

    ``pool.request`` (depth 0) covers entry to completion;
    ``pool.queue`` (depth 1) the checkout wait; ``pool.dispatch``
    (depth 1) send to reply.  All carry ``seq``/``trace_id`` so the
    breakdown and the worker bundle can be joined per request.
    """

    def span_event(
        name: str,
        depth: int,
        start: float,
        end: float,
        **args: object,
    ) -> Dict[str, object]:
        event_args: Dict[str, object] = {
            "depth": depth,
            "seq": context.seq,
            "trace_id": context.trace_id,
        }
        event_args.update(args)
        return {
            "name": name,
            "ph": "X",
            "ts": tracer.offset_us(start),
            "dur": round((end - start) * 1e6, 3),
            "pid": tracer._pid,
            "tid": obs_trace.TRACE_TID,
            "cat": "repro",
            "args": event_args,
        }

    events = [
        span_event(
            "pool.request",
            0,
            t_entry,
            t_done,
            method=method,
            status=status,
            **extra,
        ),
        span_event("pool.queue", 1, t_entry, t_checkout),
    ]
    if t_done > t_send:
        events.append(span_event("pool.dispatch", 1, t_send, t_done))
    return events
