"""Process-local metrics: counters, gauges and histogram summaries.

The paper's whole experimental argument rests on *measuring* the
heuristics — Tables 2–4 are sizes and runtimes, and the related work
(Mishchenko & Brayton's windowed don't-care computation, Bryant's
chain-reduction statistics) attributes its conclusions to per-node and
per-operation cost accounting.  This module is the substrate those
measurements flow through: a :class:`MetricsRegistry` of named
counters, gauges and histogram summaries that library code updates
while it runs.

Cost model
----------

Collection is **opt-in and process-global**: a registry is activated
with :func:`enable` (or the ``REPRO_METRICS=1`` environment switch) and
instrumented code asks :func:`active` for it.  When no registry is
active, :func:`active` returns ``None`` and every instrumentation site
reduces to one ``is None`` test — the library never pays for metrics it
is not collecting.  The :class:`~repro.bdd.manager.Manager`'s own
cumulative counters (ITE steps, cache hits/misses, nodes created) are
the one exception: they are plain integer increments, cheap enough to
stay always-on, and are read out via
:meth:`~repro.bdd.manager.Manager.statistics`.

Snapshots are plain ``dict``s (JSON-serializable), so worker processes
ship them across the serve layer's pipe and
:func:`merge_snapshot` / :func:`diff_statistics` aggregate them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.analysis.flow import deterministic

#: Environment variable enabling metrics collection at import time.
ENV_VAR = "REPRO_METRICS"

#: ``Manager.statistics()`` keys that are cumulative counters: a
#: per-cell delta is ``after - before``.  Everything else (table sizes,
#: peaks) is a point-in-time reading where the ``after`` value stands.
CUMULATIVE_STATISTICS = frozenset(
    {
        "ite_calls",
        "ite_cache_hits",
        "ite_cache_misses",
        "nodes_created",
        "gc_runs",
        "nodes_reclaimed",
    }
)

#: Suffixes marking per-named-cache counters as cumulative too.
_CUMULATIVE_SUFFIXES = ("_hits", "_misses")


class MetricsRegistry:
    """Named counters, gauges and histogram summaries.

    All three families share one flat namespace per family.  Histogram
    "summaries" keep ``count``/``total``/``min``/``max`` instead of
    buckets — enough for the mean and range reporting the experiment
    exhibits need, with O(1) update cost and a JSON-friendly shape.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}

    # -- counters ------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    # -- gauges --------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to a point-in-time reading."""
        self._gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        """Raise a high-watermark gauge to ``value`` if it is larger."""
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        """Current gauge reading, or ``None`` if never set."""
        return self._gauges.get(name)

    # -- histograms ----------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation into the summary ``name``."""
        summary = self._histograms.get(name)
        if summary is None:
            self._histograms[name] = {
                "count": 1,
                "total": value,
                "min": value,
                "max": value,
            }
            return
        summary["count"] += 1
        summary["total"] += value
        if value < summary["min"]:
            summary["min"] = value
        if value > summary["max"]:
            summary["max"] = value

    def histogram(self, name: str) -> Optional[Dict[str, float]]:
        """The summary dict for ``name`` (count/total/min/max) or None."""
        summary = self._histograms.get(name)
        return dict(summary) if summary is not None else None

    # -- lifecycle -----------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable copy of everything collected so far."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: dict(summary)
                for name, summary in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram counts/totals add; gauges and histogram
        min/max combine as watermarks.  Used to aggregate worker-side
        snapshots shipped back through :mod:`repro.serve`.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.max_gauge(name, float(value))
        for name, summary in snapshot.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = dict(summary)
                continue
            mine["count"] += summary["count"]
            mine["total"] += summary["total"]
            if summary["min"] < mine["min"]:
                mine["min"] = summary["min"]
            if summary["max"] > mine["max"]:
                mine["max"] = summary["max"]

    def reset(self) -> None:
        """Drop everything collected so far."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return "MetricsRegistry(%d counters, %d gauges, %d histograms)" % (
            len(self._counters),
            len(self._gauges),
            len(self._histograms),
        )


#: The process-global active registry (None = collection disabled).
_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when collection is disabled.

    Instrumentation sites call this once per operation and skip all
    metric work on ``None`` — the disabled path costs one comparison.
    """
    return _ACTIVE


def enabled() -> bool:
    """True iff a registry is currently collecting."""
    return _ACTIVE is not None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Activate collection into ``registry`` (a fresh one by default).

    Returns the now-active registry.  Enabling while another registry
    is active replaces it (the previous registry keeps its data).
    """
    global _ACTIVE
    if registry is None:
        registry = _ACTIVE if _ACTIVE is not None else MetricsRegistry()
    _ACTIVE = registry
    return registry


def disable() -> Optional[MetricsRegistry]:
    """Deactivate collection; returns the previously active registry."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Scope metrics collection to one ``with`` block.

    Activates ``registry`` (fresh by default), yields it, and restores
    whatever was active before on exit — so scoped collection nests and
    never leaks into later code.
    """
    global _ACTIVE
    previous = _ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


@deterministic
def diff_statistics(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    """Per-cell delta between two ``Manager.statistics()`` snapshots.

    Cumulative counters (see :data:`CUMULATIVE_STATISTICS` and the
    per-cache ``*_hits``/``*_misses`` keys) are differenced; everything
    else (table sizes, ``peak_nodes``) reports the ``after`` reading.
    A counter that went *backwards* (the cache-flush fairness protocol
    resets per-cache counters) reports its ``after`` value.
    """
    delta: Dict[str, int] = {}
    for name, value in after.items():
        if name in CUMULATIVE_STATISTICS or name.endswith(
            _CUMULATIVE_SUFFIXES
        ):
            previous = before.get(name, 0)
            delta[name] = value - previous if value >= previous else value
        else:
            delta[name] = value
    return delta


@deterministic
def merge_counts(
    accumulator: Dict[str, int], snapshot: Dict[str, int]
) -> Dict[str, int]:
    """Sum one flat ``{name: count}`` snapshot into ``accumulator``.

    The aggregation primitive for per-cell ``Manager.statistics()``
    deltas: cumulative counters add; point-in-time readings (sizes,
    peaks) combine as maxima, so the aggregate reports the worst cell.
    """
    for name, value in snapshot.items():
        if name in CUMULATIVE_STATISTICS or name.endswith(
            _CUMULATIVE_SUFFIXES
        ):
            accumulator[name] = accumulator.get(name, 0) + value
        elif value > accumulator.get(name, 0):
            accumulator[name] = value
    return accumulator


if os.environ.get(ENV_VAR) == "1":  # pragma: no cover - env bootstrap
    enable()
